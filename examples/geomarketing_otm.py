"""Geomarketing scenario: where should a franchise open its next store?

The paper motivates one-to-many queries with "geomarketing applications
(e.g. nearby what stop one must build a franchise store to be more easily
reachable by clients)". This example inverts the usual direction: for each
candidate store location, run an LD one-to-many query from every client
district and score the location by how late clients can leave and still
arrive before closing time — plus an EA-OTM accessibility score for the
morning commute.

Run with::

    python examples/geomarketing_otm.py
"""

from __future__ import annotations

import statistics

from repro.ptldb import PTLDB
from repro.timetable import load_dataset


def main() -> None:
    timetable = load_dataset("Berlin")
    ptldb = PTLDB.from_timetable(timetable, device="ssd")

    # Candidate store sites: three well-connected stops and one suburb.
    candidates = [0, 1, 40, 97]
    # Client districts: a sample of residential stops.
    districts = [7, 13, 22, 35, 51, 66, 78, 89, 104]

    nine_am = 9 * 3600
    closing = 20 * 3600

    print("Scoring candidate store locations "
          f"({len(districts)} client districts):\n")
    scores = []
    for site in candidates:
        # Build the per-candidate target set once: here targets are the
        # districts, queried FROM the candidate, which by symmetry of the
        # LD/EA pair measures the same accessibility.
        tag = f"site{site}"
        ptldb.build_target_set(
            tag, districts, kmax=4, families=("otm_ea", "otm_ld")
        )
        # Morning accessibility: when do commuters from each district get
        # near the store? (EA one-to-many from the site on the reversed
        # role: arrival at districts approximates the symmetric trip.)
        morning = ptldb.ea_one_to_many(tag, site, nine_am)
        # Evening convenience: how late can shoppers stay before heading
        # home and still make the last connection by closing time?
        evening = ptldb.ld_one_to_many(tag, site, closing)

        reach = len(morning)
        avg_travel = (
            statistics.fmean(arr - nine_am for arr in morning.values()) / 60
            if morning
            else float("inf")
        )
        avg_slack = (
            statistics.fmean(closing - dep for dep in evening.values()) / 60
            if evening
            else float("inf")
        )
        scores.append((site, reach, avg_travel, avg_slack))
        print(
            f"  stop {site:3d}: reaches {reach}/{len(districts)} districts, "
            f"avg travel {avg_travel:6.1f} min, "
            f"avg evening buffer {avg_slack:6.1f} min"
        )

    # Rank: most districts reached, then shortest average travel.
    scores.sort(key=lambda s: (-s[1], s[2]))
    best = scores[0]
    print(
        f"\nRecommendation: open near stop {best[0]} "
        f"(reaches {best[1]} districts, {best[2]:.0f} min average travel)."
    )


if __name__ == "__main__":
    main()
