"""GTFS pipeline: feed on disk -> labels on disk -> queries in the database.

Real deployments don't rebuild labels per process. This example shows the
paper's full production pipeline with persistent artifacts:

1. write a synthetic city out as a GTFS feed (stand-in for a downloaded
   feed from the public registry the paper uses);
2. load the feed, run TTL preprocessing, and save the labels in the binary
   format (the TTL authors distribute exactly such label files);
3. in a "different process", reload the labels (no preprocessing) and serve
   queries, comparing HDD vs SSD device models on the same data.

Run with::

    python examples/gtfs_pipeline.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.bench.workload import v2v_workload
from repro.labeling import load_labels, preprocess, save_labels
from repro.ptldb import PTLDB
from repro.timetable import generate_city, CityConfig
from repro.timetable.gtfs import load_feed, write_feed


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="ptldb_")
    feed_dir = os.path.join(workdir, "feed")
    label_path = os.path.join(workdir, "city.ttl")

    # --- 1. produce/download the GTFS feed -----------------------------
    city = generate_city(
        CityConfig(
            name="Riverton", num_stops=60, num_lines=9, line_length=8,
            headway_s=900, hub_count=4, seed=2024,
        )
    )
    write_feed(city, feed_dir, city="Riverton")
    print(f"GTFS feed written to {feed_dir}")

    # --- 2. preprocess once, persist labels ----------------------------
    timetable = load_feed(feed_dir)
    started = time.perf_counter()
    labels = preprocess(timetable)
    save_labels(labels, label_path)
    print(
        f"TTL preprocessing: {labels.stats()} in "
        f"{time.perf_counter() - started:.2f}s -> {label_path} "
        f"({os.path.getsize(label_path) / 1024:.0f} KiB)"
    )

    # --- 3. serve queries from the persisted labels --------------------
    reloaded = load_labels(label_path)
    workload = v2v_workload(timetable, n=200, seed=3)
    for device in ("hdd", "ssd"):
        ptldb = PTLDB.from_timetable(timetable, device=device, labels=reloaded)
        ptldb.restart()  # cold cache, as the paper benchmarks
        started = time.perf_counter()
        io_ms = 0.0
        answered = 0
        for q in workload:
            if ptldb.earliest_arrival(q.source, q.goal, q.depart_at) is not None:
                answered += 1
            io_ms += ptldb.db.last_cost.simulated_io_ms
        cpu_ms = (time.perf_counter() - started) * 1000
        total = cpu_ms + io_ms
        print(
            f"{device.upper()}: {len(workload)} EA queries, {answered} answered, "
            f"avg {(total / len(workload)):.2f} ms/query "
            f"(cpu {cpu_ms / len(workload):.2f} + simulated io "
            f"{io_ms / len(workload):.2f})"
        )

    print("\nSame answers on both devices, different latency — that is "
          "Figure 2 vs Figure 7 in one script.")


if __name__ == "__main__":
    main()
