"""Tourist scenario: nearest points of interest by public transport.

The paper motivates EA-kNN with "a tourist deciding to visit the nearest
Point of Interest using public transport" and LD-kNN with "a city visitor
determining his remaining time for finishing his breakfast before reaching
one of his preferred POI-destinations by 11:00".

This example builds a Madrid-shaped network, marks a handful of stops as
museums, and answers both questions, cross-checking the SQL answers against
the in-memory TTL reference and showing the reconstructed journey for the
winning museum.

Run with::

    python examples/tourist_knn.py
"""

from __future__ import annotations

from repro.labeling import TTLQueryEngine, journey_is_feasible, reconstruct_journey
from repro.ptldb import PTLDB
from repro.timetable import load_dataset


def hhmm(seconds: int | None) -> str:
    if seconds is None:
        return "--:--"
    return f"{seconds // 3600:02d}:{seconds % 3600 // 60:02d}"


def main() -> None:
    timetable = load_dataset("Madrid")
    ptldb = PTLDB.from_timetable(timetable, device="ssd")
    reference = TTLQueryEngine(ptldb.labels)

    hotel = 23  # the tourist's hotel stop
    museums = {4, 11, 19, 31, 42, 47}
    ptldb.build_target_set(
        "museums", museums, kmax=4, families=("knn_ea", "knn_ld")
    )

    # --- morning: which museums can I reach first, leaving at 09:30? -----
    depart = 9 * 3600 + 30 * 60
    print(f"Leaving hotel (stop {hotel}) at {hhmm(depart)}; nearest museums:")
    ranked = ptldb.ea_knn("museums", hotel, depart, 3)
    assert ranked == reference.ea_knn(hotel, museums, depart, 3)
    for stop, arrival in ranked:
        print(f"  museum at stop {stop:3d}: arrive {hhmm(arrival)}")

    if ranked:
        best_stop, best_arrival = ranked[0]
        journey = reconstruct_journey(timetable, hotel, best_stop, depart)
        assert journey is not None
        assert journey_is_feasible(journey, hotel, best_stop, depart)
        assert journey[-1].arr == best_arrival
        print(f"\nItinerary to stop {best_stop}:")
        for leg in journey:
            print(
                f"  trip {leg.trip:4d}: stop {leg.u:3d} {hhmm(leg.dep)} "
                f"-> stop {leg.v:3d} {hhmm(leg.arr)}"
            )

    # --- breakfast: how long can I linger and still reach a museum by 11? -
    arrive_by = 11 * 3600
    print(f"\nMust be at some museum by {hhmm(arrive_by)}; latest departures:")
    for stop, departure in ptldb.ld_knn("museums", hotel, arrive_by, 3):
        slack = departure - depart
        print(
            f"  stop {stop:3d}: leave by {hhmm(departure)} "
            f"({max(0, slack) // 60} min of breakfast left)"
        )


if __name__ == "__main__":
    main()
