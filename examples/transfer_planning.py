"""Transfer-aware trip planning — the paper's future-work feature, working.

"In terms of future work, currently the PTLDB framework aims at optimizing
travel times, without taking the number of transfers as an additional
optimization criterion." (paper §5)

This example shows the extension in action: for a commuter who hates
changing vehicles, it prints the (vehicles, arrival) Pareto front for a
trip, then answers the SQL-side bounded queries — all validated against the
round-limited connection-scan oracle as it goes.

Run with::

    python examples/transfer_planning.py
"""

from __future__ import annotations

from repro.timetable import load_dataset
from repro.transfers import (
    TransferPTLDB,
    TransferQueryEngine,
    build_transfer_labels,
    earliest_arrival_bounded,
    trips_needed,
)


def hhmm(seconds: int | None) -> str:
    if seconds is None:
        return "--:--"
    return f"{seconds // 3600:02d}:{seconds % 3600 // 60:02d}"


def main() -> None:
    timetable = load_dataset("Denver")
    labels, report = build_transfer_labels(
        timetable, max_trips=4, add_dummies=True
    )
    engine = TransferQueryEngine(labels)
    ptldb = TransferPTLDB.from_timetable(timetable, labels=labels, device="ssd")
    print(
        f"Transfer-aware labels: {labels.total_tuples} tuples "
        f"({labels.tuples_per_vertex:.0f}/stop) in {report.seconds:.2f}s"
    )

    source, goal = 12, 61
    depart = 8 * 3600

    print(f"\nTrip: stop {source} -> stop {goal}, leaving {hhmm(depart)}")
    front = engine.pareto_arrivals(source, goal, depart)
    if not front:
        print("  no journey today.")
        return
    print("Pareto front (vehicles boarded vs arrival):")
    for trips, arrival in front:
        label = "direct" if trips == 1 else f"{trips - 1} transfer(s)"
        print(f"  {trips} vehicle(s) ({label:>13}): arrive {hhmm(arrival)}")

    minimum = trips_needed(timetable, source, goal, depart)
    print(f"\nMinimum vehicles needed: {minimum}")

    print("\nSQL-side bounded queries (validated against the oracle):")
    for budget in (1, 2, 3, 4):
        via_sql = ptldb.earliest_arrival(source, goal, depart, budget)
        oracle = earliest_arrival_bounded(timetable, source, goal, depart, budget)
        status = "ok" if via_sql == oracle else f"(oracle: {hhmm(oracle)})"
        print(f"  <= {budget} vehicles: {hhmm(via_sql)}  {status}")

    # How much does the no-transfer constraint cost across the network?
    print("\nPrice of convenience (direct-only vs unconstrained), sampled:")
    sampled = 0
    for g in range(0, timetable.num_stops, max(1, timetable.num_stops // 8)):
        if g == source:
            continue
        direct = engine.earliest_arrival(source, g, depart, 1)
        relaxed = engine.earliest_arrival(source, g, depart, 4)
        if relaxed is None:
            continue
        penalty = "unreachable" if direct is None else f"+{(direct - relaxed) // 60} min"
        print(f"  to stop {g:3d}: best {hhmm(relaxed)}, direct-only {penalty}")
        sampled += 1
        if sampled >= 6:
            break


if __name__ == "__main__":
    main()
