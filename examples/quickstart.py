"""Quickstart: build PTLDB for a synthetic city and run every query type.

Run with::

    python examples/quickstart.py

This walks the full pipeline the paper describes: generate (or load) a
timetable, run TTL preprocessing, load the labels into the database, build
the auxiliary kNN / one-to-many tables with SQL, and answer all seven query
types.
"""

from __future__ import annotations

from repro.bench.workload import random_targets
from repro.ptldb import PTLDB
from repro.timetable import load_dataset


def hhmm(seconds: int | None) -> str:
    if seconds is None:
        return "--:--"
    return f"{seconds // 3600:02d}:{seconds % 3600 // 60:02d}"


def main() -> None:
    # 1. A scaled-down version of the paper's Austin dataset.
    timetable = load_dataset("Austin")
    print(f"Timetable: {timetable.stats()}")

    # 2. TTL preprocessing + database load (one call).
    ptldb = PTLDB.from_timetable(timetable, device="ssd")
    print(f"Labels: {ptldb.labels.stats()}")

    # 3. Vertex-to-vertex queries (paper Code 1).
    s, g = 5, 17
    nine_am = 9 * 3600
    six_pm = 18 * 3600
    ea = ptldb.earliest_arrival(s, g, nine_am)
    ld = ptldb.latest_departure(s, g, six_pm)
    sd = ptldb.shortest_duration(s, g, nine_am, six_pm)
    print(f"\nEA({s}, {g}, 09:00)      -> arrive {hhmm(ea)}")
    print(f"LD({s}, {g}, 18:00)      -> depart {hhmm(ld)}")
    print(f"SD({s}, {g}, 09:00-18:00) -> {sd // 60 if sd is not None else '--'} minutes")

    # 4. Register a target set (e.g. stops near POIs) and build the
    #    kNN / one-to-many tables in SQL (paper Tables 4-6).
    targets = random_targets(timetable, density=0.2, seed=1)
    ptldb.build_target_set(
        "pois", targets, kmax=4,
        families=("knn_ea", "knn_ld", "otm_ea", "otm_ld"),
    )
    print(f"\nTarget stops (D=0.2): {sorted(targets)}")

    # 5. The paper's four new query types.
    print(f"\nEA-kNN(q={s}, t=09:00, k=3):")
    for stop, arrival in ptldb.ea_knn("pois", s, nine_am, 3):
        print(f"  stop {stop:3d} reachable by {hhmm(arrival)}")

    print(f"LD-kNN(q={s}, t'=18:00, k=3):")
    for stop, departure in ptldb.ld_knn("pois", s, six_pm, 3):
        print(f"  stop {stop:3d} leave at {hhmm(departure)}")

    otm = ptldb.ea_one_to_many("pois", s, nine_am)
    print(f"EA-OTM: {len(otm)}/{len(targets)} targets reachable")

    otm_ld = ptldb.ld_one_to_many("pois", s, six_pm)
    print(f"LD-OTM: latest departures {{stop: time}} -> "
          f"{ {k: hhmm(v) for k, v in sorted(otm_ld.items())[:5]} } ...")

    # 6. What it costs: every query is plain SQL over paged storage.
    report = ptldb.storage_report()
    print(f"\nDatabase: {report['total_pages']} pages "
          f"({report['total_bytes'] / 1024:.0f} KiB), "
          f"{len(report['tables'])} tables")
    print(f"Last query cost: {ptldb.db.last_cost}")


if __name__ == "__main__":
    main()
