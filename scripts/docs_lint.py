#!/usr/bin/env python
"""Docs lint: every code symbol the docs mention must exist in the code.

Scans ``docs/*.md`` (plus README.md) for inline-code spans that look like
Python symbols — ``CamelCase`` names, ``snake_case`` names, ``ALL_CAPS``
constants and dotted paths like ``repro.bench.experiment_columnar`` — and
fails if any component never appears as an identifier anywhere under
``src/``. Spans that look like repo file paths are checked for existence
instead. Plain English words, CLI flags, SQL fragments and fenced code
blocks are ignored: the goal is catching docs that drift from the code
(a renamed class, a deleted knob, a module that moved), not spell-checking
prose.

Usage::

    python scripts/docs_lint.py            # lint the repo it lives in
    python scripts/docs_lint.py --verbose  # also count what was checked
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Inline code spans (single backticks; fenced blocks are stripped first).
_SPAN = re.compile(r"`([^`\n]+)`")
_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
#: A symbol-ish span: dotted identifier chain, optional trailing ``()``.
_SYMBOL = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z0-9_]+)*(\(\))?$")
_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
#: File extensions we resolve against the repo tree instead of src idents.
_PATH_EXT = (".md", ".py", ".json", ".yml", ".yaml", ".txt", ".toml", ".ttl")


def _looks_like_symbol(token: str) -> bool:
    """Only tokens that *look like code* are worth checking — a plain
    lowercase word (`hub`, `hypothesis`) is prose, not a reference."""
    if not _SYMBOL.match(token):
        return False
    bare = token[:-2] if token.endswith("()") else token
    if "." in bare:
        return True
    return (
        "_" in bare
        or bare.isupper()
        or (bare[0].isupper() and not bare.isupper() and bare.isalpha())
    )


def _is_pathlike(token: str) -> bool:
    if "/" in token:
        last = token.rstrip("/").rsplit("/", 1)[-1]
        return "." in last
    return token.endswith(_PATH_EXT)


#: Directories whose python files define the known-identifier universe.
_CODE_DIRS = ("src", "tests", "benchmarks", "scripts", "examples")


def collect_src_identifiers(root: Path) -> set[str]:
    """Every identifier token in the repo's python code (docstrings and
    comments included), plus module names derivable from the file tree.
    src/ is the primary universe; tests/benchmarks/scripts/examples are
    included so docs may cite harness-level names (fixtures, bench
    fields) without tripping the lint."""
    idents: set[str] = set()
    for sub in _CODE_DIRS:
        base = root / sub
        if not base.is_dir():
            continue
        for path in base.rglob("*.py"):
            idents.update(_IDENT.findall(path.read_text(encoding="utf-8")))
            idents.update(path.relative_to(base).parts)
            idents.add(path.stem)
    return idents


def _path_exists(root: Path, token: str, idents: set[str]) -> bool:
    """Resolve a path-looking span: exact path, glob, bare module basename
    anywhere in the tree, or a generated artifact named in the code."""
    target = token.rstrip("/").split(" ")[0].split("::")[0]
    if (root / target).exists():
        return True
    if any(ch in target for ch in "*?["):
        return any(root.glob(target))
    if "/" not in target:
        # Bare basename (`plan.py`, `aux.py`): the docs' shorthand for a
        # module whose package is clear from context.
        for sub in _CODE_DIRS:
            if (root / sub).is_dir() and any((root / sub).rglob(target)):
                return True
        # Generated artifacts (`BENCH_columnar.json`): accept when the
        # stem is spelled out somewhere in the code that writes it.
        stem = target.rsplit(".", 1)[0]
        return stem in idents
    return False


def doc_files(root: Path) -> list[Path]:
    files = sorted((root / "docs").glob("*.md"))
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def lint(root: Path = REPO) -> tuple[list[str], int]:
    """Return (error lines, number of symbol spans checked)."""
    idents = collect_src_identifiers(root)
    errors: list[str] = []
    checked = 0
    for doc in doc_files(root):
        text = _FENCE.sub("", doc.read_text(encoding="utf-8"))
        rel = doc.relative_to(root)
        for match in _SPAN.finditer(text):
            token = match.group(1).strip()
            line = text[: match.start()].count("\n") + 1
            if _is_pathlike(token):
                if not _path_exists(root, token, idents):
                    errors.append(
                        f"{rel}:{line}: file `{token}` does not exist"
                    )
                checked += 1
                continue
            if not _looks_like_symbol(token):
                continue
            checked += 1
            bare = token[:-2] if token.endswith("()") else token
            missing = [
                part
                for part in bare.split(".")
                # SQL names are case-insensitive: `SQRT` in prose is fine
                # when the code spells it `sqrt`.
                if part not in idents and part.lower() not in idents
            ]
            if missing:
                errors.append(
                    f"{rel}:{line}: `{token}` — no identifier "
                    f"{'/'.join(missing)!r} anywhere under src/"
                )
    return errors, checked


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=str(REPO), help="repo root")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    errors, checked = lint(Path(args.root))
    if args.verbose or errors:
        print(f"docs-lint: checked {checked} code references")
    for line in errors:
        print(line, file=sys.stderr)
    if errors:
        print(f"docs-lint: {len(errors)} stale reference(s)", file=sys.stderr)
        return 1
    print("docs-lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
