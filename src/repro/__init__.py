"""repro — reproduction of "Scalable Public Transportation Queries on the
Database" (PTLDB, EDBT 2016).

Top-level convenience re-exports; see README.md for the package map.
"""

__version__ = "1.0.0"
