"""Sessions: per-connection execution state over a shared Database.

The paper's serving experiment (Figure 6) runs many clients against one
PostgreSQL server. The minidb equivalent is one :class:`Session` per client
thread: sessions share the catalog, buffer pool and plan cache (that is what
makes the throughput curve interesting), while each keeps its *own*
``last_cost`` / ``last_trace`` / ``last_analysis`` and prepared-statement
handles, so one connection's observability never clobbers another's.

Isolation model (docs/ARCHITECTURE.md, "Concurrency model"):

* Statement-level reader–writer latch on the database. Read statements
  (``SELECT``, ``EXPLAIN``) hold it shared; everything else — DML, DDL,
  ``VACUUM`` — holds it exclusively. Readers therefore always observe a
  consistent catalog + page image, and writers never interleave (the
  single-writer rule).
* Plan-cache entries carry the catalog version they were built against.
  The version is re-checked *after* the statement latch is acquired: DDL
  cannot run while we hold the latch, so a version that matches under the
  latch stays valid for the whole statement.
* Cost/trace deltas are measured against the calling thread's private
  counters (``DiskManager.thread_stats`` / ``BufferPool.thread_stats``),
  which the storage layer charges in lockstep with the global ones —
  attribution stays exact no matter how many sessions run concurrently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.minidb.metrics import QueryTrace, TraceCollector
from repro.minidb.sanitize import dynamic as _san
from repro.minidb.sql import ast
from repro.minidb.sql.analyzer import Analysis
from repro.minidb.sql.executor import Executor, Result
from repro.minidb.sql.planner import plan_statement
from repro.minidb.sql.vectorized import BatchExecutor

def _is_read_stmt(stmt) -> bool:
    """Whether *stmt* only reads (shares the database latch).

    ``EXPLAIN ANALYZE`` executes its inner statement, so an explained write
    is still a write.
    """
    if isinstance(stmt, ast.Explain):
        return _is_read_stmt(stmt.statement)
    return isinstance(stmt, ast.Query)


@dataclass
class QueryCost:
    """I/O accounting for a single statement."""

    page_reads: int
    pool_hits: int
    simulated_io_ms: float
    pool_misses: int = 0


class PreparedStatement:
    """A reusable handle for one SQL statement, bound to a session.

    Thin by design: execution routes through :meth:`Session.execute`, so a
    prepared statement's speed comes entirely from the shared plan cache —
    repeat executions skip parse, analysis and planning (the cache hit
    counter proves it) and stale entries re-plan automatically after DDL.
    """

    def __init__(self, session: "Session", sql: str, analyze: bool | None = None):
        self.session = session
        self.sql = sql
        self.analyze = analyze

    @property
    def db(self):
        return self.session.db

    def execute(self, params: tuple | list = ()) -> Result:
        return self.session.execute(self.sql, params, analyze=self.analyze)

    def execute_many(self, param_rows) -> list[Result]:
        """Run this statement once per parameter tuple with batched binding
        (one plan-cache probe, one latch acquisition for the whole batch —
        see :meth:`Session.execute_many`)."""
        return self.session.execute_many(self.sql, param_rows, analyze=self.analyze)

    def explain(self) -> list[str]:
        """Static plan lines for this statement (no execution)."""
        from repro.minidb.sql.plan import explain_lines

        db = self.session.db
        do_analyze = db.analyze if self.analyze is None else self.analyze
        entry = db._ensure_cached(self.sql, do_analyze)
        plan = entry.plan or plan_statement(entry.stmt, db.catalog)
        return explain_lines(plan)

    def __repr__(self) -> str:
        return f"PreparedStatement({self.sql!r})"


class Session:
    """One connection's view of a :class:`~repro.minidb.engine.Database`.

    Cheap to create (no pages are touched); hand one to each serving thread.
    ``tracing``/``analyze`` default to ``None`` — inherit the database-wide
    setting at call time — and can be pinned per session.
    """

    def __init__(self, db, tracing: bool | None = None, analyze: bool | None = None):
        self.db = db
        self.tracing = tracing
        self.analyze = analyze
        self.last_cost: QueryCost | None = None
        self.last_trace: QueryTrace | None = None
        self.last_analysis: Analysis | None = None
        #: Worker accounting for the last statement — ``None`` when it ran
        #: fully serial, else the executor's ``parallel_stats`` plus the
        #: coordinator's CPU/I/O split and the simulated-clock
        #: ``makespan_ms`` (docs/PERFORMANCE.md, "Parallel scaling").
        self.last_parallel: dict | None = None
        #: Coordinator-thread CPU time of the last statement
        #: (``time.thread_time`` delta, milliseconds) — the serial busy
        #: time that ``experiment_parallel`` compares makespans against.
        self.last_cpu_ms: float = 0.0

    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        params: tuple | list = (),
        analyze: bool | None = None,
    ) -> Result:
        """Parse, statically analyze (both cached) and run one statement.

        Analysis is strict by default: semantic errors (unknown names, type
        violations, misplaced aggregates, ...) raise *before* any page is
        read. Pass ``analyze=False`` to skip it; access-path warnings
        (``APL*``) never block execution."""
        db = self.db
        if analyze is None:
            analyze = self.analyze
        do_analyze = db.analyze if analyze is None else analyze
        entry = db._ensure_cached(sql, do_analyze)
        write = not _is_read_stmt(entry.stmt)
        # Reads share the statement latch, DML/DDL hold it exclusively; the
        # guard keeps the acquire/release paired even when execution raises
        # (and satisfies the no-bare-acquire rule, SAN201).
        with db._stmt_latch.guard(write):
            try:
                if entry.version != db.catalog.version:
                    # DDL slipped in between the cache probe and the latch.
                    # It cannot happen again while we hold the latch, so one
                    # re-probe suffices.
                    entry = db._ensure_cached(sql, do_analyze)
                self.last_analysis = entry.analysis
                if do_analyze and entry.analysis is not None:
                    entry.analysis.raise_if_errors()
                plan = entry.plan
                if plan is None:
                    # Planning failed (or was skipped) when the entry was
                    # built; re-plan per execution so the original error
                    # surfaces here.
                    plan = plan_statement(entry.stmt, db.catalog)
                disk_stats = db.disk.thread_stats()
                pool_stats = db.pool.thread_stats()
                disk_before = disk_stats.snapshot()
                pool_before = pool_stats.snapshot()
                tracing = db.tracing if self.tracing is None else self.tracing
                collector = TraceCollector(db.pool) if tracing else None
                executor = self._executor(plan, tuple(params), collector)
                started = time.perf_counter()
                cpu_started = time.thread_time()
                result = executor.run(plan)
                cpu_ms = (time.thread_time() - cpu_started) * 1000.0
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                disk_delta = disk_stats.delta(disk_before)
                pool_delta = pool_stats.delta(pool_before)
                # The thread-local deltas above cover only the coordinator;
                # worker-thread I/O arrives via the executor's parallel
                # report and is folded into the statement totals here, so
                # cost/trace figures cover the whole statement regardless
                # of how many threads ran it.
                self.last_cpu_ms = cpu_ms
                par = getattr(executor, "parallel_stats", None)
                if par is None:
                    self.last_parallel = None
                    page_reads = disk_delta.reads
                    io_ms = disk_delta.simulated_read_ms
                    pool_hits = pool_delta.hits
                    pool_misses = pool_delta.misses
                else:
                    self.last_parallel = {
                        **par,
                        "coordinator_cpu_ms": cpu_ms,
                        "coordinator_io_ms": disk_delta.simulated_read_ms,
                        # Simulated-clock completion time: the coordinator's
                        # own busy time plus, per gather, its slowest
                        # worker's busy time (docs/PERFORMANCE.md).
                        "makespan_ms": cpu_ms
                        + disk_delta.simulated_read_ms
                        + par["critical_ms"],
                    }
                    page_reads = disk_delta.reads + par["reads"]
                    io_ms = disk_delta.simulated_read_ms + par["io_ms"]
                    pool_hits = pool_delta.hits + par["hits"]
                    pool_misses = pool_delta.misses + par["misses"]
                self.last_cost = QueryCost(
                    page_reads=page_reads,
                    pool_hits=pool_hits,
                    simulated_io_ms=io_ms,
                    pool_misses=pool_misses,
                )
                if collector is not None:
                    trace = QueryTrace(
                        sql=sql,
                        roots=collector.roots,
                        total_ms=elapsed_ms,
                        pool_hits=pool_hits,
                        pool_misses=pool_misses,
                        page_reads=page_reads,
                        io_ms=io_ms,
                    )
                    self.last_trace = trace
                    result.trace = trace
                else:
                    # Never leave a previous statement's trace lying around —
                    # a stale tree would silently misattribute this
                    # statement's I/O.
                    self.last_trace = None
                if write:
                    # Seal the statement in the WAL while the exclusive
                    # latch is still held (no reader can see a half-durable
                    # state). No-op for in-memory databases.
                    db._wal_commit()
            except BaseException as exc:
                if write:
                    # Restore every frame the failed statement dirtied from
                    # its before-image, so the pool re-enters the last
                    # committed state before the latch is released.
                    db._wal_rollback(exc)
                tracker = _san.TRACKER
                if tracker is not None:
                    # The primary error wins; drop any pins the interrupted
                    # statement recorded so they cannot poison the next
                    # statement's leak check on this thread.
                    tracker.drop_thread_pins()
                raise
            tracker = _san.TRACKER
            if tracker is not None:
                # SAND02: every pin this statement took must be back.
                tracker.check_statement_end()
            return result

    def _executor(self, plan, params: tuple, collector):
        """Pick the execution engine for *plan*.

        Batch mode needs both the database knob and a batch-capable plan;
        everything else (row-only constructs, DML, ``vectorize=False``)
        takes the row-at-a-time executor. Results are identical either way.
        """
        db = self.db
        if db.vectorize and getattr(plan, "batchable", False):
            return BatchExecutor(
                db.catalog,
                params,
                collector=collector,
                batch_size=db.batch_size,
                readahead=db.readahead,
                numpy_batches=db.numpy_batches,
                parallel_workers=db.parallel_workers,
                worker_pool=db._ensure_worker_pool(),
            )
        return Executor(db.catalog, params, collector=collector)

    def executemany(self, sql: str, param_rows) -> int:
        """Run one DML statement for each parameter tuple."""
        count = 0
        for params in param_rows:
            self.execute(sql, params)
            count += 1
        return count

    def execute_many(self, sql: str, param_rows, analyze: bool | None = None) -> list[Result]:
        """Run one statement once per parameter tuple with batched binding.

        Amortizes the per-statement fixed costs across the whole batch: the
        plan cache is probed once, the statement latch is acquired once and
        trace collection is skipped, so only binding + execution remain in
        the loop. Returns one :class:`Result` per parameter tuple, in order.
        ``last_cost`` aggregates the batch's I/O; ``last_trace`` is cleared
        (per-execution traces are a per-``execute`` feature).
        """
        db = self.db
        if analyze is None:
            analyze = self.analyze
        do_analyze = db.analyze if analyze is None else analyze
        entry = db._ensure_cached(sql, do_analyze)
        write = not _is_read_stmt(entry.stmt)
        with db._stmt_latch.guard(write):
            try:
                if entry.version != db.catalog.version:
                    entry = db._ensure_cached(sql, do_analyze)
                self.last_analysis = entry.analysis
                if do_analyze and entry.analysis is not None:
                    entry.analysis.raise_if_errors()
                plan = entry.plan
                if plan is None:
                    plan = plan_statement(entry.stmt, db.catalog)
                disk_stats = db.disk.thread_stats()
                pool_stats = db.pool.thread_stats()
                disk_before = disk_stats.snapshot()
                pool_before = pool_stats.snapshot()
                results = []
                worker_reads = 0
                worker_hits = 0
                worker_misses = 0
                worker_io_ms = 0.0
                for params in param_rows:
                    executor = self._executor(plan, tuple(params), None)
                    results.append(executor.run(plan))
                    par = getattr(executor, "parallel_stats", None)
                    if par is not None:
                        worker_reads += par["reads"]
                        worker_hits += par["hits"]
                        worker_misses += par["misses"]
                        worker_io_ms += par["io_ms"]
                disk_delta = disk_stats.delta(disk_before)
                pool_delta = pool_stats.delta(pool_before)
                self.last_cost = QueryCost(
                    page_reads=disk_delta.reads + worker_reads,
                    pool_hits=pool_delta.hits + worker_hits,
                    simulated_io_ms=disk_delta.simulated_read_ms
                    + worker_io_ms,
                    pool_misses=pool_delta.misses + worker_misses,
                )
                self.last_trace = None
                if write:
                    # Group commit: the whole batch seals as one WAL commit,
                    # amortizing the append the same way the latch and plan
                    # probe are amortized.
                    db._wal_commit()
            except BaseException as exc:
                if write:
                    db._wal_rollback(exc)
                tracker = _san.TRACKER
                if tracker is not None:
                    tracker.drop_thread_pins()
                raise
            tracker = _san.TRACKER
            if tracker is not None:
                tracker.check_statement_end()
            return results

    def prepare(self, sql: str, analyze: bool | None = None) -> PreparedStatement:
        """Parse, analyze and plan *sql* once, returning a reusable handle.

        Semantic errors raise here (when analysis is on), not at the first
        ``execute``. The handle stays valid across DDL: a catalog-version
        bump invalidates the cached plan and the next execution re-plans."""
        db = self.db
        if analyze is None:
            analyze = self.analyze
        do_analyze = db.analyze if analyze is None else analyze
        entry = db._ensure_cached(sql, do_analyze)
        if do_analyze and entry.analysis is not None:
            entry.analysis.raise_if_errors()
        return PreparedStatement(self, sql, analyze)

    def __repr__(self) -> str:
        return f"Session(db={self.db!r})"
