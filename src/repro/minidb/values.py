"""Type system and binary codecs for minidb values.

minidb supports a deliberately small set of column types — exactly what the
PTLDB schema needs (PostgreSQL's ``bigint``, ``double precision``, ``text``
and ``bigint[]``) — but implements them with real, length-prefixed binary
serialization so that records occupy realistic page space and array columns
(the hub-label vectors) have a faithful storage footprint.

SQL ``NULL`` is represented as Python ``None`` throughout the engine.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import SQLTypeError, StorageError

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

# Type tags used both in the catalog and as per-value wire tags.
T_BIGINT = 1
T_DOUBLE = 2
T_TEXT = 3
T_BIGINT_ARRAY = 4
T_DOUBLE_ARRAY = 5
T_BOOL = 6
# Delta + zig-zag varint encoded integer array: identical semantics to
# BIGINT[], far smaller on disk for the sorted hub/timestamp vectors of the
# label tables (the compression idea of Delling et al.'s Hub Label
# Compression / the COLD framework the paper builds on).
T_BIGINT_ARRAY_PACKED = 7

_NAMES = {
    T_BIGINT: "BIGINT",
    T_DOUBLE: "DOUBLE",
    T_TEXT: "TEXT",
    T_BIGINT_ARRAY: "BIGINT[]",
    T_DOUBLE_ARRAY: "DOUBLE[]",
    T_BOOL: "BOOL",
    T_BIGINT_ARRAY_PACKED: "BIGINT_PACKED[]",
}

_BY_NAME = {name: tag for tag, name in _NAMES.items()}
# Accept the PostgreSQL spellings used in the paper's DDL.
_BY_NAME.update(
    {
        "INT": T_BIGINT,
        "INT8": T_BIGINT,
        "INTEGER": T_BIGINT,
        "SMALLINT": T_BIGINT,
        "FLOAT": T_DOUBLE,
        "FLOAT8": T_DOUBLE,
        "DOUBLE PRECISION": T_DOUBLE,
        "REAL": T_DOUBLE,
        "VARCHAR": T_TEXT,
        "CHAR": T_TEXT,
        "STRING": T_TEXT,
        "BOOLEAN": T_BOOL,
        "INT[]": T_BIGINT_ARRAY,
        "INT8[]": T_BIGINT_ARRAY,
        "INTEGER[]": T_BIGINT_ARRAY,
        "FLOAT8[]": T_DOUBLE_ARRAY,
        "FLOAT[]": T_DOUBLE_ARRAY,
    }
)


def type_name(tag: int) -> str:
    """Human-readable name of a type tag."""
    try:
        return _NAMES[tag]
    except KeyError:
        raise SQLTypeError(f"unknown type tag {tag!r}") from None


def type_from_name(name: str) -> int:
    """Resolve a SQL type spelling (``BIGINT``, ``INT[]``, ...) to a tag."""
    try:
        return _BY_NAME[name.upper().strip()]
    except KeyError:
        raise SQLTypeError(f"unknown SQL type {name!r}") from None


def is_array_type(tag: int) -> bool:
    return tag in (T_BIGINT_ARRAY, T_DOUBLE_ARRAY, T_BIGINT_ARRAY_PACKED)


def check_value(tag: int, value: object) -> object:
    """Validate (and lightly coerce) *value* against column type *tag*.

    Returns the canonical in-memory representation. Raises
    :class:`SQLTypeError` on mismatch.
    """
    if value is None:
        return None
    if tag == T_BIGINT:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SQLTypeError(f"expected BIGINT, got {value!r}")
        return value
    if tag == T_DOUBLE:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SQLTypeError(f"expected DOUBLE, got {value!r}")
        return float(value)
    if tag == T_TEXT:
        if not isinstance(value, str):
            raise SQLTypeError(f"expected TEXT, got {value!r}")
        return value
    if tag == T_BOOL:
        if not isinstance(value, bool):
            raise SQLTypeError(f"expected BOOL, got {value!r}")
        return value
    if tag in (T_BIGINT_ARRAY, T_BIGINT_ARRAY_PACKED):
        if not isinstance(value, (list, tuple)):
            raise SQLTypeError(f"expected BIGINT[], got {value!r}")
        out = []
        for item in value:
            if item is None:
                out.append(None)
            elif isinstance(item, bool) or not isinstance(item, int):
                raise SQLTypeError(f"expected BIGINT element, got {item!r}")
            else:
                out.append(item)
        return out
    if tag == T_DOUBLE_ARRAY:
        if not isinstance(value, (list, tuple)):
            raise SQLTypeError(f"expected DOUBLE[], got {value!r}")
        out = []
        for item in value:
            if item is None:
                out.append(None)
            elif isinstance(item, bool) or not isinstance(item, (int, float)):
                raise SQLTypeError(f"expected DOUBLE element, got {item!r}")
            else:
                out.append(float(item))
        return out
    raise SQLTypeError(f"unknown type tag {tag!r}")


# ---------------------------------------------------------------------------
# Binary record codec
# ---------------------------------------------------------------------------
#
# A record is encoded as a null bitmap (one byte per 8 columns) followed by
# the encoded non-null values in column order. Arrays are length-prefixed;
# array elements carry their own null bitmap so labels with NULL pivots can
# round-trip.

def _encode_bigint_array(values: list) -> bytes:
    parts = [_U32.pack(len(values))]
    bitmap = bytearray((len(values) + 7) // 8)
    payload = []
    for i, item in enumerate(values):
        if item is None:
            bitmap[i // 8] |= 1 << (i % 8)
        else:
            payload.append(_I64.pack(item))
    parts.append(bytes(bitmap))
    parts.extend(payload)
    return b"".join(parts)


def _decode_bigint_array(buf: memoryview, pos: int) -> tuple[list, int]:
    (count,) = _U32.unpack_from(buf, pos)
    pos += 4
    nbytes = (count + 7) // 8
    bitmap = bytes(buf[pos : pos + nbytes])
    pos += nbytes
    out: list = []
    for i in range(count):
        if bitmap[i // 8] & (1 << (i % 8)):
            out.append(None)
        else:
            (item,) = _I64.unpack_from(buf, pos)
            pos += 8
            out.append(item)
    return out, pos


def _encode_double_array(values: list) -> bytes:
    parts = [_U32.pack(len(values))]
    bitmap = bytearray((len(values) + 7) // 8)
    payload = []
    for i, item in enumerate(values):
        if item is None:
            bitmap[i // 8] |= 1 << (i % 8)
        else:
            payload.append(_F64.pack(item))
    parts.append(bytes(bitmap))
    parts.extend(payload)
    return b"".join(parts)


def _decode_double_array(buf: memoryview, pos: int) -> tuple[list, int]:
    (count,) = _U32.unpack_from(buf, pos)
    pos += 4
    nbytes = (count + 7) // 8
    bitmap = bytes(buf[pos : pos + nbytes])
    pos += nbytes
    out: list = []
    for i in range(count):
        if bitmap[i // 8] & (1 << (i % 8)):
            out.append(None)
        else:
            (item,) = _F64.unpack_from(buf, pos)
            pos += 8
            out.append(item)
    return out, pos


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _encode_varint(value: int, out: bytearray) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_varint(buf: memoryview, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _encode_packed_array(values: list) -> bytes:
    """Delta + zig-zag varint encoding; NULL elements get a presence map."""
    out = bytearray(_U32.pack(len(values)))
    bitmap = bytearray((len(values) + 7) // 8)
    for i, item in enumerate(values):
        if item is None:
            bitmap[i // 8] |= 1 << (i % 8)
    out += bitmap
    previous = 0
    for item in values:
        if item is None:
            continue
        _encode_varint(_zigzag(item - previous), out)
        previous = item
    return bytes(out)


def _decode_packed_array(buf: memoryview, pos: int) -> tuple[list, int]:
    (count,) = _U32.unpack_from(buf, pos)
    pos += 4
    nbytes = (count + 7) // 8
    bitmap = bytes(buf[pos : pos + nbytes])
    pos += nbytes
    out: list = []
    previous = 0
    for i in range(count):
        if bitmap[i // 8] & (1 << (i % 8)):
            out.append(None)
            continue
        raw, pos = _decode_varint(buf, pos)
        previous += _unzigzag(raw)
        out.append(previous)
    return out, pos


def encode_record(types: tuple[int, ...], values: tuple) -> bytes:
    """Serialize one row (matching *types*) to bytes."""
    if len(types) != len(values):
        raise StorageError(
            f"record arity mismatch: {len(values)} values for {len(types)} columns"
        )
    bitmap = bytearray((len(types) + 7) // 8)
    parts: list[bytes] = []
    for i, (tag, value) in enumerate(zip(types, values)):
        if value is None:
            bitmap[i // 8] |= 1 << (i % 8)
            continue
        if tag == T_BIGINT:
            parts.append(_I64.pack(value))
        elif tag == T_DOUBLE:
            parts.append(_F64.pack(value))
        elif tag == T_BOOL:
            parts.append(b"\x01" if value else b"\x00")
        elif tag == T_TEXT:
            raw = value.encode("utf-8")
            parts.append(_U32.pack(len(raw)))
            parts.append(raw)
        elif tag == T_BIGINT_ARRAY:
            parts.append(_encode_bigint_array(value))
        elif tag == T_BIGINT_ARRAY_PACKED:
            parts.append(_encode_packed_array(value))
        elif tag == T_DOUBLE_ARRAY:
            parts.append(_encode_double_array(value))
        else:
            raise SQLTypeError(f"unknown type tag {tag!r}")
    return bytes(bitmap) + b"".join(parts)


def decode_record(types: tuple[int, ...], data: bytes | memoryview) -> tuple:
    """Inverse of :func:`encode_record`."""
    buf = memoryview(data)
    nbytes = (len(types) + 7) // 8
    bitmap = bytes(buf[:nbytes])
    pos = nbytes
    values: list = []
    for i, tag in enumerate(types):
        if bitmap[i // 8] & (1 << (i % 8)):
            values.append(None)
            continue
        if tag == T_BIGINT:
            (value,) = _I64.unpack_from(buf, pos)
            pos += 8
        elif tag == T_DOUBLE:
            (value,) = _F64.unpack_from(buf, pos)
            pos += 8
        elif tag == T_BOOL:
            value = buf[pos] != 0
            pos += 1
        elif tag == T_TEXT:
            (length,) = _U32.unpack_from(buf, pos)
            pos += 4
            value = bytes(buf[pos : pos + length]).decode("utf-8")
            pos += length
        elif tag == T_BIGINT_ARRAY:
            value, pos = _decode_bigint_array(buf, pos)
        elif tag == T_BIGINT_ARRAY_PACKED:
            value, pos = _decode_packed_array(buf, pos)
        elif tag == T_DOUBLE_ARRAY:
            value, pos = _decode_double_array(buf, pos)
        else:
            raise SQLTypeError(f"unknown type tag {tag!r}")
        values.append(value)
    return tuple(values)


@dataclass(frozen=True)
class Column:
    """A column definition: name plus minidb type tag."""

    name: str
    type_tag: int

    def __post_init__(self) -> None:
        type_name(self.type_tag)  # validate eagerly

    @property
    def type_str(self) -> str:
        return type_name(self.type_tag)
