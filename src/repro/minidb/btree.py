"""A paged B+Tree index over fixed-width integer keys.

PTLDB's tables are keyed by small integer tuples — ``(v)`` for *lout*/*lin*,
``(hub, td)`` for the naive kNN table, ``(hub, dephour)`` for the optimized
tables — so the index stores composite keys of ``key_len`` int64 components.
Leaf entries map a key to a heap rid ``(page_id, slot)``; leaves are chained
left-to-right for range scans. All node accesses go through the buffer pool,
so index descent costs real (simulated) page reads exactly like PostgreSQL's
primary-key lookups do in the paper.

Node layout (within the generic 16-byte page header):
    * leaf: packed cells ``key || rid``; ``next_page`` chains to the right
      sibling.
    * internal: packed cells ``key || child`` where *child* covers keys
      ``>= key``; ``next_page`` holds the leftmost child (keys below the
      first separator).

Concurrency: descents pin each node while its cells are examined (so a
lookup's node can't be evicted mid-binary-search even on a tiny pool), and
insertion pins the whole root-to-leaf path while splits propagate — the
structural reason a capacity-1 pool survives arbitrary split cascades.
Content access goes through the frame latch, one page at a time. The pin
and latch disciplines are enforced by the concurrency sanitizer
(``SANITIZE=1`` dynamically, ``repro sanitize`` statically — see
docs/SANITIZER.md).
"""

from __future__ import annotations

import struct

from repro.errors import StorageError
from repro.minidb.buffer import BufferPool
from repro.minidb.page import (
    HEADER_SIZE,
    KIND_BTREE_INTERNAL,
    KIND_BTREE_LEAF,
    PAGE_SIZE,
    Page,
)

_RID = struct.Struct("<qi")
_CHILD = struct.Struct("<q")
_COUNT_OFFSET = 2  # reuse the generic header's u16 slot-count field


def _set_count(page: Page, count: int) -> None:
    struct.pack_into("<H", page.buf, _COUNT_OFFSET, count)


def _get_count(page: Page) -> int:
    return struct.unpack_from("<H", page.buf, _COUNT_OFFSET)[0]


class BTree:
    """A unique-key B+Tree. Keys are tuples of ``key_len`` ints."""

    def __init__(self, pool: BufferPool, key_len: int, root_page: int | None = None):
        if not 1 <= key_len <= 4:
            raise StorageError("B+Tree supports 1..4 key components")
        self.pool = pool
        self.key_len = key_len
        self._key = struct.Struct("<" + "q" * key_len)
        self._leaf_cell = self._key.size + _RID.size
        self._int_cell = self._key.size + _CHILD.size
        body = PAGE_SIZE - HEADER_SIZE
        self._leaf_cap = body // self._leaf_cell
        self._int_cap = body // self._int_cell
        if root_page is None:
            # The fresh root is admitted dirty and is unreachable by other
            # threads until self.root_page is published, so the count write
            # needs no latch (and mark_dirty would be redundant).
            root_page, page = pool.new_page(KIND_BTREE_LEAF)
            _set_count(page, 0)
            pool.unpin(root_page)
        self.root_page = root_page

    # -- public API ----------------------------------------------------
    def insert(self, key: tuple, rid: tuple[int, int]) -> None:
        """Insert *key* -> *rid*; replaces the rid if the key exists."""
        key = self._check_key(key)
        split = self._insert(self.root_page, key, rid)
        if split is not None:
            sep_key, right_page = split
            new_root_id, new_root = self.pool.new_page(KIND_BTREE_INTERNAL)
            with self.pool.latch(new_root_id).write():
                new_root.next_page = self.root_page
                self._write_internal_cells(new_root, [(sep_key, right_page)])
                self.pool.mark_dirty(new_root_id)
            self.pool.unpin(new_root_id)
            self.root_page = new_root_id

    def search(self, key: tuple) -> tuple[int, int] | None:
        """Exact lookup; returns the rid or ``None``.

        Binary-searches directly in the packed page buffer — node pages are
        never fully decoded on the hot path.
        """
        key = self._check_key(key)
        key_struct = self._key
        page_id = self.root_page
        while True:
            pinned_id = page_id
            page = self.pool.pin(pinned_id)
            try:
                with self.pool.latch(pinned_id).read():
                    buf = page.buf
                    count = _get_count(page)
                    if page.kind == KIND_BTREE_LEAF:
                        cell = self._leaf_cell
                        lo, hi = 0, count
                        while lo < hi:
                            mid = (lo + hi) // 2
                            if (
                                key_struct.unpack_from(
                                    buf, HEADER_SIZE + mid * cell
                                )
                                < key
                            ):
                                lo = mid + 1
                            else:
                                hi = mid
                        if lo < count:
                            offset = HEADER_SIZE + lo * cell
                            if key_struct.unpack_from(buf, offset) == key:
                                return _RID.unpack_from(
                                    buf, offset + key_struct.size
                                )
                        return None
                    # internal node: rightmost separator <= key
                    cell = self._int_cell
                    lo, hi = 0, count
                    while lo < hi:
                        mid = (lo + hi) // 2
                        if (
                            key_struct.unpack_from(buf, HEADER_SIZE + mid * cell)
                            <= key
                        ):
                            lo = mid + 1
                        else:
                            hi = mid
                    if lo == 0:
                        page_id = page.next_page
                    else:
                        offset = HEADER_SIZE + (lo - 1) * cell + key_struct.size
                        (page_id,) = _CHILD.unpack_from(buf, offset)
            finally:
                self.pool.unpin(pinned_id)

    def remove(self, key: tuple) -> bool:
        """Delete *key* from its leaf (no rebalancing — underfull leaves are
        tolerated, like PostgreSQL's lazily-cleaned B-Trees). Returns whether
        the key was present."""
        key = self._check_key(key)
        page_id = self.root_page
        while True:
            with self.pool.pinned(page_id) as page:
                if page.kind == KIND_BTREE_LEAF:
                    with self.pool.latch(page_id).write():
                        cells = self._read_leaf_cells(page)
                        lo, hi = 0, len(cells)
                        while lo < hi:
                            mid = (lo + hi) // 2
                            if cells[mid][0] < key:
                                lo = mid + 1
                            else:
                                hi = mid
                        if lo < len(cells) and cells[lo][0] == key:
                            del cells[lo]
                            self._write_leaf_cells(page, cells)
                            self.pool.mark_dirty(page_id)
                            return True
                        return False
                next_id = self._descend(page, key)
            page_id = next_id

    def scan(self, low: tuple | None = None, high: tuple | None = None):
        """Yield ``(key, rid)`` for keys in ``[low, high]``, in key order."""
        if low is not None:
            low = self._check_key(low)
        if high is not None:
            high = self._check_key(high)
        page_id = self._leftmost_leaf(low)
        while page_id != -1:
            # Copy the leaf's cells under pin+latch, then yield latch-free so
            # consumers may issue their own page operations.
            with self.pool.pinned(page_id) as page:
                with self.pool.latch(page_id).read():
                    next_page = page.next_page
                    cells = self._read_leaf_cells(page)
            for key, rid in cells:
                if low is not None and key < low:
                    continue
                if high is not None and key > high:
                    return
                yield key, rid
            page_id = next_page

    def height(self) -> int:
        """Tree height (1 = a single leaf)."""
        depth = 1
        page_id = self.root_page
        while self.pool.get(page_id).kind == KIND_BTREE_INTERNAL:
            page = self.pool.get(page_id)
            page_id = page.next_page  # leftmost child
            depth += 1
        return depth

    def __len__(self) -> int:
        return sum(1 for _ in self.scan())

    def __bool__(self) -> bool:
        # An empty index is still an index; never let ``if table.index``
        # silently treat it as absent.
        return True

    # -- node encoding ---------------------------------------------------
    def _check_key(self, key: tuple) -> tuple:
        if len(key) != self.key_len:
            raise StorageError(
                f"key arity {len(key)} does not match index arity {self.key_len}"
            )
        return tuple(int(part) for part in key)

    def _read_leaf_cells(self, page: Page) -> list[tuple[tuple, tuple[int, int]]]:
        count = _get_count(page)
        cells = []
        pos = HEADER_SIZE
        for _ in range(count):
            key = self._key.unpack_from(page.buf, pos)
            rid = _RID.unpack_from(page.buf, pos + self._key.size)
            cells.append((key, rid))
            pos += self._leaf_cell
        return cells

    def _write_leaf_cells(self, page: Page, cells) -> None:
        pos = HEADER_SIZE
        for key, rid in cells:
            self._key.pack_into(page.buf, pos, *key)
            _RID.pack_into(page.buf, pos + self._key.size, *rid)
            pos += self._leaf_cell
        _set_count(page, len(cells))

    def _read_internal_cells(self, page: Page) -> list[tuple[tuple, int]]:
        count = _get_count(page)
        cells = []
        pos = HEADER_SIZE
        for _ in range(count):
            key = self._key.unpack_from(page.buf, pos)
            (child,) = _CHILD.unpack_from(page.buf, pos + self._key.size)
            cells.append((key, child))
            pos += self._int_cell
        return cells

    def _write_internal_cells(self, page: Page, cells) -> None:
        pos = HEADER_SIZE
        for key, child in cells:
            self._key.pack_into(page.buf, pos, *key)
            _CHILD.pack_into(page.buf, pos + self._key.size, child)
            pos += self._int_cell
        _set_count(page, len(cells))

    # -- traversal -------------------------------------------------------
    def _descend(self, page: Page, key: tuple) -> int:
        cells = self._read_internal_cells(page)
        child = page.next_page  # leftmost
        lo, hi = 0, len(cells)
        while lo < hi:
            mid = (lo + hi) // 2
            if cells[mid][0] <= key:
                lo = mid + 1
            else:
                hi = mid
        if lo > 0:
            child = cells[lo - 1][1]
        return child

    def _leftmost_leaf(self, low: tuple | None) -> int:
        page_id = self.root_page
        while True:
            page = self.pool.get(page_id)
            if page.kind == KIND_BTREE_LEAF:
                return page_id
            if low is None:
                page_id = page.next_page
            else:
                page_id = self._descend(page, low)

    # -- insertion -------------------------------------------------------
    def _insert(self, page_id: int, key: tuple, rid) -> tuple[tuple, int] | None:
        """Insert into the subtree at *page_id*.

        Returns ``(separator_key, new_right_page)`` if the node split,
        else ``None``.
        """
        # The node stays pinned for the whole call — including the recursive
        # descent — so a split propagating back up always finds its parent
        # resident, no matter how small the pool is.
        page = self.pool.pin(page_id)
        try:
            if page.kind == KIND_BTREE_LEAF:
                cells = self._read_leaf_cells(page)
                lo, hi = 0, len(cells)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if cells[mid][0] < key:
                        lo = mid + 1
                    else:
                        hi = mid
                if lo < len(cells) and cells[lo][0] == key:
                    cells[lo] = (key, rid)
                else:
                    cells.insert(lo, (key, rid))
                if len(cells) <= self._leaf_cap:
                    with self.pool.latch(page_id).write():
                        self._write_leaf_cells(page, cells)
                        self.pool.mark_dirty(page_id)
                    return None
                # Split the leaf.
                mid = len(cells) // 2
                right_id, right = self.pool.new_page(KIND_BTREE_LEAF)
                with self.pool.latch(right_id).write():
                    right.next_page = page.next_page
                    self._write_leaf_cells(right, cells[mid:])
                    self.pool.mark_dirty(right_id)
                with self.pool.latch(page_id).write():
                    page.next_page = right_id
                    self._write_leaf_cells(page, cells[:mid])
                    self.pool.mark_dirty(page_id)
                self.pool.unpin(right_id)
                return cells[mid][0], right_id

            child_id = self._descend(page, key)
            split = self._insert(child_id, key, rid)
            if split is None:
                return None
            sep_key, right_child = split
            cells = self._read_internal_cells(page)
            lo, hi = 0, len(cells)
            while lo < hi:
                mid = (lo + hi) // 2
                if cells[mid][0] < sep_key:
                    lo = mid + 1
                else:
                    hi = mid
            cells.insert(lo, (sep_key, right_child))
            if len(cells) <= self._int_cap:
                with self.pool.latch(page_id).write():
                    self._write_internal_cells(page, cells)
                    self.pool.mark_dirty(page_id)
                return None
            # Split the internal node; the middle separator moves up.
            mid = len(cells) // 2
            up_key, up_child = cells[mid]
            right_id, right = self.pool.new_page(KIND_BTREE_INTERNAL)
            with self.pool.latch(right_id).write():
                right.next_page = up_child
                self._write_internal_cells(right, cells[mid + 1 :])
                self.pool.mark_dirty(right_id)
            with self.pool.latch(page_id).write():
                self._write_internal_cells(page, cells[:mid])
                self.pool.mark_dirty(page_id)
            self.pool.unpin(right_id)
            return up_key, right_id
        finally:
            self.pool.unpin(page_id)
