"""Columnar record codec and zone-mapped heap for label tables.

The paper's hub-label tables are array-heavy and sorted: every row carries
``hubs``/``tds``/``tas`` parallel arrays ordered by ``(hub, td)``. The row
codec (``values.encode_record``) stores those as 8 bytes per element. Here
each row is instead stored as a *column group*: one self-describing segment
per column, with sorted integer arrays delta-encoded against their
predecessor and the zig-zagged deltas packed at the smallest fixed width
that fits (1/2/4/8 bytes). Fixed-width deltas — rather than varints — are
what makes the segments numpy-decodable: decode is ``frombuffer`` →
unzigzag → ``cumsum``, no per-element Python loop. Arrays with NULLs or
pathological deltas fall back to the existing varint packing.

Cell layout::

    u8 version
    per column:  u8 encoding tag | u32 element count | payload

Delta payloads are ``i64 first`` followed by ``count-1`` unsigned
little-endian deltas of the tag's width. Deltas are computed mod 2^64 (the
same wraparound numpy's int64 arithmetic performs), so any int64 sequence
round-trips exactly.

``ColumnarHeapFile`` extends the ordinary heap with per-page zone maps
(min/max hub) maintained on insert and consulted by ``scan(zone_eq=...)``
to skip pages — skipped pages are never touched in the buffer pool, which
is what the paper-bound page counts measure.

Pin and latch handling follows the heap's discipline (``with
pool.pinned(...)`` for access, the frame write latch around zone-map
updates) and is checked by the concurrency sanitizer — ``SANITIZE=1``
dynamically, ``repro sanitize`` statically (docs/SANITIZER.md).
"""

from __future__ import annotations

import struct

from repro.errors import StorageError
from repro.minidb.buffer import BufferPool
from repro.minidb.heap import HeapFile
from repro.minidb.page import KIND_COLUMNAR, MAX_CELL, ZONE_SIZE
from repro.minidb.values import (
    T_BIGINT,
    T_BIGINT_ARRAY,
    T_BIGINT_ARRAY_PACKED,
    T_BOOL,
    T_DOUBLE,
    T_DOUBLE_ARRAY,
    T_TEXT,
    _decode_double_array,
    _decode_packed_array,
    _encode_double_array,
    _encode_packed_array,
    type_name,
)

try:  # numpy accelerates encode/decode; the pure-python path is equivalent
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

COLUMNAR_VERSION = 1

# Per-column segment header: encoding tag, element count.
_SEG = struct.Struct("<BI")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

ENC_NULL = 0  # SQL NULL, no payload
ENC_I64 = 1  # scalar BIGINT, 8-byte payload
ENC_F64 = 2  # scalar DOUBLE
ENC_BOOL = 3  # scalar BOOLEAN, 1 byte
ENC_TEXT = 4  # UTF-8, count = byte length
ENC_DELTA1 = 5  # i64 first + u8 zig-zag deltas
ENC_DELTA2 = 6  # i64 first + u16 zig-zag deltas
ENC_DELTA4 = 7  # i64 first + u32 zig-zag deltas
ENC_DELTA8 = 8  # i64 first + u64 zig-zag deltas
ENC_VARINT = 9  # values._encode_packed_array payload (handles NULLs)
ENC_F64ARR = 10  # values._encode_double_array payload

_DELTA_WIDTH = {ENC_DELTA1: 1, ENC_DELTA2: 2, ENC_DELTA4: 4, ENC_DELTA8: 8}
_WIDTH_ENC = {1: ENC_DELTA1, 2: ENC_DELTA2, 4: ENC_DELTA4, 8: ENC_DELTA8}
_U64_MASK = (1 << 64) - 1
_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def _wrap_i64(value: int) -> int:
    """Reduce an unbounded int to its int64 two's-complement value."""
    return ((value + (1 << 63)) & _U64_MASK) - (1 << 63)


# ---------------------------------------------------------------------------
# Integer-array segment encode/decode
# ---------------------------------------------------------------------------
def _encode_int_array(values: list, require_sorted: bool = False) -> tuple[int, bytes]:
    """Encode one BIGINT[] column value, returning ``(encoding, payload)``."""
    if any(v is None for v in values):
        if require_sorted:
            raise StorageError(
                "columnar zone column arrays may not contain NULL elements"
            )
        return ENC_VARINT, _encode_packed_array(values)
    if require_sorted:
        for prev, cur in zip(values, values[1:]):
            if cur < prev:
                raise StorageError(
                    "columnar zone column array is not sorted "
                    f"({prev} followed by {cur})"
                )
    if not values:
        return ENC_DELTA1, b""
    if min(values) < _I64_MIN or max(values) > _I64_MAX:
        raise StorageError("BIGINT array element out of int64 range")
    first = values[0]
    if len(values) == 1:
        return ENC_DELTA1, _I64.pack(first)
    # Deltas mod 2^64, then zig-zag — both are exactly numpy's wrapping
    # int64 arithmetic, so encode and decode agree on either path.
    zz = []
    prev = first
    max_zz = 0
    for cur in values[1:]:
        delta = _wrap_i64(cur - prev)
        z = ((delta << 1) ^ (delta >> 63)) & _U64_MASK
        zz.append(z)
        if z > max_zz:
            max_zz = z
        prev = cur
    if max_zz < 1 << 8:
        width = 1
    elif max_zz < 1 << 16:
        width = 2
    elif max_zz < 1 << 32:
        width = 4
    else:
        width = 8
    out = bytearray(_I64.pack(first))
    for z in zz:
        out += z.to_bytes(width, "little")
    return _WIDTH_ENC[width], bytes(out)


#: Below this element count the pure-python delta loop beats numpy — the
#: fixed per-call cost of ~7 small-array numpy operations crosses over
#: around 32 elements (measured; see docs/PERFORMANCE.md).
NP_DECODE_MIN = 32


def _decode_delta_np(payload: memoryview, count: int, width: int):
    """Delta-segment decode returning an int64 ndarray (numpy required)."""
    vals = _np.empty(count, dtype=_np.int64)
    if count == 0:
        return vals
    (first,) = _I64.unpack_from(payload, 0)
    vals[0] = first
    if count == 1:
        return vals
    raw = _np.frombuffer(
        payload, dtype=f"<u{width}", count=count - 1, offset=8
    ).astype(_np.uint64)
    # unzigzag in uint64, then bit-reinterpret as int64 so values
    # ≥ 2^63 map back to their negative deltas.
    deltas = _np.where(raw & 1, ~(raw >> 1), raw >> 1).view(_np.int64)
    _np.cumsum(deltas, out=vals[1:])
    vals[1:] += first
    return vals


#: Bulk-unpack formats for the sub-crossover python decode loop.
_DELTA_FMT = {2: "H", 4: "I", 8: "Q"}


def _decode_delta(payload: memoryview, count: int, width: int) -> list:
    if count == 0:
        return []
    if _np is not None and count >= NP_DECODE_MIN:
        return _decode_delta_np(payload, count, width).tolist()
    (first,) = _I64.unpack_from(payload, 0)
    out = [first]
    prev = first
    append = out.append
    # One bulk unpack for the whole delta tail (memoryview iteration for
    # width 1), then inline unzigzag; the int64 wrap only fires on the
    # rare sequence that actually crosses the boundary.
    if width == 1:
        packed = payload[8:]
    else:
        packed = struct.unpack_from(
            "<%d%s" % (count - 1, _DELTA_FMT[width]), payload, 8
        )
    for z in packed:
        prev += (z >> 1) ^ -(z & 1)
        if prev > _I64_MAX or prev < _I64_MIN:
            prev = _wrap_i64(prev)
        append(prev)
    return out


# ---------------------------------------------------------------------------
# Whole-record encode/decode
# ---------------------------------------------------------------------------
def encode_columnar(
    types: tuple[int, ...], values: tuple, sorted_cols: frozenset[int] = frozenset()
) -> bytes:
    """Serialize one row as a column-group cell.

    ``sorted_cols`` are array columns whose elements must be nondecreasing
    (the zone column); violations are rejected so zone maps stay honest.
    """
    if len(values) != len(types):
        raise StorageError(
            f"record has {len(values)} values for {len(types)} columns"
        )
    parts = [bytes([COLUMNAR_VERSION])]
    for i, (tag, value) in enumerate(zip(types, values)):
        if value is None:
            parts.append(_SEG.pack(ENC_NULL, 0))
        elif tag == T_BIGINT:
            parts.append(_SEG.pack(ENC_I64, 1))
            parts.append(_I64.pack(value))
        elif tag == T_DOUBLE:
            parts.append(_SEG.pack(ENC_F64, 1))
            parts.append(_F64.pack(value))
        elif tag == T_BOOL:
            parts.append(_SEG.pack(ENC_BOOL, 1))
            parts.append(bytes([1 if value else 0]))
        elif tag == T_TEXT:
            raw = value.encode("utf-8")
            parts.append(_SEG.pack(ENC_TEXT, len(raw)))
            parts.append(raw)
        elif tag in (T_BIGINT_ARRAY, T_BIGINT_ARRAY_PACKED):
            enc, payload = _encode_int_array(
                value, require_sorted=i in sorted_cols
            )
            parts.append(_SEG.pack(enc, len(value)))
            parts.append(payload)
        elif tag == T_DOUBLE_ARRAY:
            parts.append(_SEG.pack(ENC_F64ARR, len(value)))
            parts.append(_encode_double_array(value))
        else:
            raise StorageError(f"unsupported column type {type_name(tag)}")
    return b"".join(parts)


def decode_columnar(
    types: tuple[int, ...], data: bytes | memoryview, np_arrays: bool = False
) -> tuple:
    """Decode a column-group cell back into a row tuple.

    With ``np_arrays=True`` (and numpy present) delta-encoded integer-array
    cells come back as int64 ndarrays instead of lists — no per-element
    materialization at all. Only the batch executor's UNNEST producer asks
    for this shape (the planner marks eligible scans ``np_decode``); every
    other consumer sees plain lists. Varint/NULL fallback segments decode
    to lists either way.
    """
    buf = memoryview(data)
    if len(buf) == 0 or buf[0] != COLUMNAR_VERSION:
        raise StorageError("bad columnar record version")
    pos = 1
    out = []
    for tag in types:
        enc, count = _SEG.unpack_from(buf, pos)
        pos += _SEG.size
        if enc == ENC_NULL:
            out.append(None)
        elif enc == ENC_I64:
            (value,) = _I64.unpack_from(buf, pos)
            pos += 8
            out.append(value)
        elif enc == ENC_F64:
            (value,) = _F64.unpack_from(buf, pos)
            pos += 8
            out.append(value)
        elif enc == ENC_BOOL:
            out.append(bool(buf[pos]))
            pos += 1
        elif enc == ENC_TEXT:
            out.append(bytes(buf[pos : pos + count]).decode("utf-8"))
            pos += count
        elif enc in _DELTA_WIDTH:
            width = _DELTA_WIDTH[enc]
            nbytes = 0 if count == 0 else 8 + (count - 1) * width
            seg = buf[pos : pos + nbytes]
            if np_arrays and _np is not None and count >= NP_DECODE_MIN:
                # Below the crossover the python loop wins even for the
                # ndarray consumers — they accept list cells transparently
                # (a small asarray copy beats numpy's fixed decode cost).
                out.append(_decode_delta_np(seg, count, width))
            else:
                out.append(_decode_delta(seg, count, width))
            pos += nbytes
        elif enc == ENC_VARINT:
            value, pos = _decode_packed_array(buf, pos)
            out.append(value)
        elif enc == ENC_F64ARR:
            value, pos = _decode_double_array(buf, pos)
            out.append(value)
        else:
            raise StorageError(f"unknown columnar encoding tag {enc}")
    return tuple(out)


# ---------------------------------------------------------------------------
# Zone-mapped heap
# ---------------------------------------------------------------------------
class ColumnarHeapFile(HeapFile):
    """A heap of columnar cells on KIND_COLUMNAR pages with zone maps.

    Each chain page reserves a 17-byte zone area holding min/max of the
    zone column (hub) across the records it stores. The bounds are kept in
    an in-memory cache too — built for free while ``_find_last_page`` walks
    the chain on attach — so ``scan(zone_eq=...)`` decides skips without
    touching the buffer pool at all.
    """

    PAGE_KIND = KIND_COLUMNAR
    INLINE_LIMIT = MAX_CELL - ZONE_SIZE - 1

    def __init__(self, pool: BufferPool, first_page: int | None = None):
        #: page_id -> (min, max) for pages with a valid zone map. Pages
        #: absent from the dict are always read (conservative).
        self._zones: dict[int, tuple[int, int]] = {}
        super().__init__(pool, first_page)

    def _find_last_page(self) -> int:
        page_id = self.first_page
        while True:
            self._chain.append(page_id)
            page = self.pool.get(page_id)
            bounds = page.zone_bounds()
            if bounds is not None:
                self._zones[page_id] = bounds
            if page.next_page == -1:
                return page_id
            page_id = page.next_page

    def insert(
        self, record: bytes, zone: tuple[int, int] | None = None
    ) -> tuple[int, int]:
        """Store *record*; widen the landing page's zone map to cover *zone*.

        A record with ``zone=None`` (NULL/empty zone column) never widens
        the map — NULL compares as unknown, so equality can never select
        it and the page bounds stay tight.
        """
        rid = super().insert(record)
        if zone is not None:
            page_id = rid[0]
            lo, hi = zone
            with self.pool.pinned(page_id) as page:
                with self.pool.latch(page_id).write():
                    page.zone_extend(lo, hi)
                    self.pool.mark_dirty(page_id)
            cached = self._zones.get(page_id)
            if cached is None:
                self._zones[page_id] = (lo, hi)
            else:
                self._zones[page_id] = (min(cached[0], lo), max(cached[1], hi))
        return rid

    def _zone_skips(self, page_id: int, zone_eq: int) -> bool:
        bounds = self._zones.get(page_id)
        return bounds is not None and not bounds[0] <= zone_eq <= bounds[1]
