"""Slotted 8 KiB pages.

Layout (little-endian):

    offset 0   u8   page kind (HEAP / OVERFLOW / BTREE / META)
    offset 1   u8   flags (unused)
    offset 2   u16  slot count
    offset 4   u16  free-space lower bound (end of slot directory)
    offset 6   u16  free-space upper bound (start of cell area)
    offset 8   i64  auxiliary page pointer (next page in chain, -1 if none)
    offset 16+ slot directory: per slot u16 offset, u16 length
                (offset == 0 means the slot is a tombstone)

COLUMNAR pages additionally reserve a 17-byte zone map between the header
and the slot directory: ``i64 min, i64 max, u8 flags`` over the page's zone
column (hub), enabling page skipping on hub-equality predicates.

Cells grow downward from the end of the page, the slot directory grows
upward — the classic PostgreSQL/SQLite arrangement.
"""

from __future__ import annotations

import struct

from repro.errors import StorageError

PAGE_SIZE = 8192

KIND_FREE = 0
KIND_HEAP = 1
KIND_OVERFLOW = 2
KIND_BTREE_LEAF = 3
KIND_BTREE_INTERNAL = 4
KIND_META = 5
KIND_COLUMNAR = 6

_HEADER = struct.Struct("<BBHHHq")
HEADER_SIZE = _HEADER.size  # 16
_SLOT = struct.Struct("<HH")
SLOT_SIZE = _SLOT.size  # 4

# Columnar pages carry a zone map right after the header: min/max of the
# page's zone column plus a validity flag (bit 0). The slot directory is
# shifted past it.
_ZONE = struct.Struct("<qqB")
ZONE_SIZE = _ZONE.size  # 17
_ZONE_VALID = 1


def zone_area_size(kind: int) -> int:
    """Bytes reserved between header and slot directory for this page kind."""
    return ZONE_SIZE if kind == KIND_COLUMNAR else 0


# The largest cell a fresh page can hold.
MAX_CELL = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE


class Page:
    """A mutable slotted page over a ``bytearray`` buffer."""

    __slots__ = ("buf",)

    def __init__(self, buf: bytearray | None = None):
        if buf is None:
            buf = bytearray(PAGE_SIZE)
        if len(buf) != PAGE_SIZE:
            raise StorageError(f"page buffer must be {PAGE_SIZE} bytes")
        self.buf = buf

    # -- header access ------------------------------------------------------
    def _read_header(self) -> tuple[int, int, int, int, int, int]:
        return _HEADER.unpack_from(self.buf, 0)

    def _write_header(
        self, kind: int, flags: int, nslots: int, lower: int, upper: int, aux: int
    ) -> None:
        _HEADER.pack_into(self.buf, 0, kind, flags, nslots, lower, upper, aux)

    def format(self, kind: int) -> None:
        """Initialize an empty page of the given kind."""
        lower = HEADER_SIZE + zone_area_size(kind)
        self._write_header(kind, 0, 0, lower, PAGE_SIZE, -1)
        if kind == KIND_COLUMNAR:
            _ZONE.pack_into(self.buf, HEADER_SIZE, 0, 0, 0)

    @property
    def kind(self) -> int:
        return self.buf[0]

    @property
    def slot_count(self) -> int:
        return _HEADER.unpack_from(self.buf, 0)[2]

    @property
    def next_page(self) -> int:
        """Auxiliary page pointer (chain link); -1 when absent."""
        return _HEADER.unpack_from(self.buf, 0)[5]

    @next_page.setter
    def next_page(self, page_id: int) -> None:
        kind, flags, nslots, lower, upper, _ = self._read_header()
        self._write_header(kind, flags, nslots, lower, upper, page_id)

    @property
    def free_space(self) -> int:
        """Bytes available for one more cell (including its slot entry)."""
        _, _, _, lower, upper, _ = self._read_header()
        gap = upper - lower
        return max(0, gap - SLOT_SIZE)

    # -- slot operations -----------------------------------------------------
    def insert(self, cell: bytes) -> int:
        """Insert *cell*, returning its slot index."""
        kind, flags, nslots, lower, upper, aux = self._read_header()
        need = len(cell) + SLOT_SIZE
        if upper - lower < need:
            raise StorageError(
                f"page full: need {need} bytes, have {upper - lower}"
            )
        if len(cell) > MAX_CELL:
            raise StorageError(f"cell of {len(cell)} bytes exceeds page capacity")
        upper -= len(cell)
        self.buf[upper : upper + len(cell)] = cell
        _SLOT.pack_into(self.buf, lower, upper, len(cell))
        slot = nslots
        self._write_header(kind, flags, nslots + 1, lower + SLOT_SIZE, upper, aux)
        return slot

    def read(self, slot: int) -> bytes:
        """Return the cell stored at *slot* (raises on tombstones)."""
        offset, length = self._slot_entry(slot)
        if offset == 0:
            raise StorageError(f"slot {slot} is deleted")
        return bytes(self.buf[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Tombstone *slot* (space is reclaimed only by rebuilding the page)."""
        self._slot_entry(slot)  # bounds check
        _SLOT.pack_into(self.buf, self._slot_base() + slot * SLOT_SIZE, 0, 0)

    def is_deleted(self, slot: int) -> bool:
        offset, _ = self._slot_entry(slot)
        return offset == 0

    def cells(self):
        """Yield ``(slot, cell_bytes)`` for every live slot."""
        for slot in range(self.slot_count):
            offset, length = self._slot_entry(slot)
            if offset != 0:
                yield slot, bytes(self.buf[offset : offset + length])

    def _slot_base(self) -> int:
        return HEADER_SIZE + zone_area_size(self.kind)

    def _slot_entry(self, slot: int) -> tuple[int, int]:
        if not 0 <= slot < self.slot_count:
            raise StorageError(f"slot {slot} out of range (have {self.slot_count})")
        return _SLOT.unpack_from(self.buf, self._slot_base() + slot * SLOT_SIZE)

    # -- zone map (columnar pages only) --------------------------------------
    def zone_bounds(self) -> tuple[int, int] | None:
        """The page's zone-map ``(min, max)``, or ``None`` when not valid.

        A page whose zone map was never set (or that holds records with no
        zone value) reports ``None`` and must always be read — skipping is
        strictly an optimization for pages with proven bounds.
        """
        if self.kind != KIND_COLUMNAR:
            return None
        lo, hi, flags = _ZONE.unpack_from(self.buf, HEADER_SIZE)
        if not flags & _ZONE_VALID:
            return None
        return lo, hi

    def zone_extend(self, lo: int, hi: int) -> None:
        """Widen the page zone map to cover ``[lo, hi]``."""
        if self.kind != KIND_COLUMNAR:
            raise StorageError("zone maps exist only on columnar pages")
        cur_lo, cur_hi, flags = _ZONE.unpack_from(self.buf, HEADER_SIZE)
        if flags & _ZONE_VALID:
            lo, hi = min(cur_lo, lo), max(cur_hi, hi)
        _ZONE.pack_into(self.buf, HEADER_SIZE, lo, hi, flags | _ZONE_VALID)
