"""LRU buffer pool over the disk manager.

Mirrors PostgreSQL's shared buffers at the granularity the paper cares
about: a query that touches a page already in the pool pays nothing; a miss
goes to the :class:`~repro.minidb.disk.DiskManager`, which charges the device
model. Benchmarks call :meth:`BufferPool.clear` to emulate the paper's
"restart the PostgreSQL server and drop the OS cache before each experiment".

Concurrency (docs/ARCHITECTURE.md, "Concurrency model"):

* One pool-wide lock guards the frame table, LRU order and all counters, so
  any number of sessions can hit/miss/evict concurrently without corrupting
  the accounting the reproduction exists to measure.
* Each frame carries a **pin count**. A pinned frame is never chosen as an
  eviction victim, so a heap/B+Tree operation that holds a page across
  another pool call (the classic "allocate a new page while extending the
  chain" pattern) can keep mutating it safely. When *every* frame is pinned
  — e.g. a capacity-1 pool in the middle of a two-page operation — the pool
  temporarily admits over capacity instead of failing; the next admission
  evicts back down once pins are released.
* Each frame carries a :class:`~repro.minidb.latch.RWLatch` protecting the
  page *content*: readers share it, mutators take it exclusively. Callers
  must hold a pin while holding the latch (the pin keeps the frame — and
  therefore the latch identity — alive).

Like the disk manager, the pool keeps per-thread counters next to the
global ones so concurrent sessions can attribute hits/misses exactly.

The rules above are enforced, not just documented: under ``SANITIZE=1`` the
dynamic sanitizer (:mod:`repro.minidb.sanitize.dynamic`) records every
pin/unpin with its acquiring call stack, flags unpins of never-pinned pages
(``SAND03``), ``mark_dirty`` without the frame's write latch (``SAND04``)
and eviction of a latched frame (``SAND06``); the static checker
(``repro sanitize``) additionally forbids touching pool internals
(``_frames``, ``pins``, ...) from outside this module. See
docs/SANITIZER.md.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import StorageError
from repro.minidb.disk import DiskManager
from repro.minidb.latch import RWLatch
from repro.minidb.page import Page
from repro.minidb.sanitize import dynamic as _san


class _PinGuard:
    """``with``-guard pairing one pin with one unpin (see ``pinned``)."""

    __slots__ = ("_pool", "_page_id")

    def __init__(self, pool: "BufferPool", page_id: int):
        self._pool = pool
        self._page_id = page_id

    def __enter__(self) -> Page:
        return self._pool.pin(self._page_id)

    def __exit__(self, exc_type, exc, tb):
        self._pool.unpin(self._page_id)
        return False


@dataclass
class PoolStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def snapshot(self) -> "PoolStats":
        return PoolStats(self.hits, self.misses, self.evictions)

    def delta(self, since: "PoolStats") -> "PoolStats":
        return PoolStats(
            self.hits - since.hits,
            self.misses - since.misses,
            self.evictions - since.evictions,
        )


class _Frame:
    """One resident page: content, dirty flag, pin count, content latch."""

    __slots__ = ("page", "dirty", "pins", "latch")

    def __init__(self, page: Page, dirty: bool, page_id: int):
        self.page = page
        self.dirty = dirty
        self.pins = 0
        self.latch = RWLatch(name=f"page:{page_id}")


class BufferPool:
    """Fixed-capacity LRU page cache with write-back of dirty pages."""

    def __init__(self, disk: DiskManager, capacity: int = 1024):
        if capacity < 1:
            raise StorageError("buffer pool needs capacity >= 1")
        self.disk = disk
        self.capacity = capacity
        self.stats = PoolStats()
        self._thread_stats: dict[int, PoolStats] = {}
        # page_id -> _Frame; OrderedDict keeps LRU order.
        self._frames: OrderedDict[int, _Frame] = OrderedDict()
        # Guards _frames, LRU order, pin counts and every counter. Reentrant
        # so clear() can call flush() and get() can call _admit().
        self._lock = threading.RLock()
        #: Write-ahead log armed by the Database (file-backed mode only).
        #: The pool reports every first-dirty to it and honors its no-steal
        #: rule: a WAL-pending frame is never evicted or flushed, so the
        #: main file only ever holds committed images (docs/STORAGE.md).
        self.wal = None

    # -- accounting ------------------------------------------------------
    def thread_stats(self) -> PoolStats:
        """The calling thread's private ``PoolStats`` (created on first use)."""
        ident = threading.get_ident()
        stats = self._thread_stats.get(ident)
        if stats is None:
            stats = self._thread_stats.setdefault(ident, PoolStats())
        return stats

    def _record_hit(self) -> None:
        self.stats.hits += 1
        self.thread_stats().hits += 1

    def _record_miss(self) -> None:
        self.stats.misses += 1
        self.thread_stats().misses += 1

    def _record_eviction(self) -> None:
        self.stats.evictions += 1
        self.thread_stats().evictions += 1

    # ------------------------------------------------------------------
    def get(self, page_id: int, pin: bool = False) -> Page:
        """Return the page, reading it through on a miss.

        With ``pin=True`` the frame's pin count is incremented before the
        lock is released, so the page cannot be evicted until a matching
        :meth:`unpin`."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                self._record_miss()
                page = Page(self.disk.read_page(page_id))
                frame = self._admit(page_id, page, dirty=False)
            else:
                self._record_hit()
                self._frames.move_to_end(page_id)
            if pin:
                frame.pins += 1
                tracker = _san.TRACKER
                if tracker is not None:
                    tracker.on_pin(page_id)
            return frame.page

    def prefetch(self, page_ids) -> int:
        """Readahead: admit the missing pages among *page_ids* in one
        sequential device run, returning how many were actually fetched.

        Misses are recorded here (a prefetched page is still a pool miss —
        it was not resident and a device read was issued for it), so
        per-query ``misses``/``page_reads`` are identical with and without
        readahead; only the *latency* charged changes, because the batched
        :meth:`DiskManager.read_run` prices the run sequentially. The later
        :meth:`get` for a prefetched page is an ordinary hit. Already-
        resident pages are skipped without touching counters or LRU order.
        """
        with self._lock:
            missing = sorted(
                {pid for pid in page_ids if pid not in self._frames}
            )
            if not missing:
                return 0
            for buf in zip(missing, self.disk.read_run(missing)):
                page_id, raw = buf
                self._record_miss()
                self._admit(page_id, Page(raw), dirty=False)
            return len(missing)

    def total_pins(self) -> int:
        """Sum of all frames' pin counts (0 = no operation holds a page)."""
        with self._lock:
            return sum(frame.pins for frame in self._frames.values())

    def pin(self, page_id: int) -> Page:
        """Fetch *and* pin the page (shorthand for ``get(pin=True)``)."""
        return self.get(page_id, pin=True)

    def unpin(self, page_id: int) -> None:
        """Release one pin; the frame becomes evictable at zero."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                raise StorageError(f"page {page_id} not resident; cannot unpin")
            if frame.pins <= 0:
                raise StorageError(f"page {page_id} is not pinned")
            tracker = _san.TRACKER
            if tracker is not None:
                # Raises SAND03 when this thread never pinned the page —
                # before the count moves, so the pool stays consistent.
                tracker.on_unpin(page_id)
            frame.pins -= 1

    def pinned(self, page_id: int):
        """``with pool.pinned(pid) as page:`` — pin for the block's duration."""
        return _PinGuard(self, page_id)

    def pin_count(self, page_id: int) -> int:
        with self._lock:
            frame = self._frames.get(page_id)
            return frame.pins if frame is not None else 0

    def latch(self, page_id: int) -> RWLatch:
        """The resident frame's content latch. Hold a pin while using it."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                raise StorageError(f"page {page_id} not resident; cannot latch")
            return frame.latch

    def new_page(self, kind: int) -> tuple[int, Page]:
        """Allocate a fresh page of *kind*, admitted dirty and **pinned**.

        The pin is real (refcounted): the caller must :meth:`unpin` once the
        page is linked into whatever structure needed it. This is what makes
        multi-page operations safe on arbitrarily small pools."""
        with self._lock:
            page_id = self.disk.allocate()
            page = Page()
            page.format(kind)
            frame = self._admit(page_id, page, dirty=True)
            frame.pins += 1
            tracker = _san.TRACKER
            if tracker is not None:
                tracker.on_pin(page_id)
            if self.wal is not None:
                # A fresh page is mutated in place without a later
                # mark_dirty (nothing else can reach an unlinked page), so
                # the WAL must learn about it here.
                self.wal.on_page_dirty(page_id, self, fresh=True)
            return page_id, page

    def mark_dirty(self, page_id: int) -> None:
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                raise StorageError(f"page {page_id} not resident; cannot mark dirty")
            tracker = _san.TRACKER
            if tracker is not None:
                # SAND04: mutating page content requires the write latch.
                tracker.on_mark_dirty(page_id, frame.latch)
            frame.dirty = True
            if self.wal is not None:
                self.wal.on_page_dirty(page_id, self)

    def page_image(self, page_id: int) -> bytes:
        """Copy of a resident frame's content (no hit/miss accounting).

        WAL commit uses this to snapshot after-images; pending frames are
        always resident (the no-steal rule keeps them in the pool)."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                raise StorageError(f"page {page_id} not resident; cannot image")
            return bytes(frame.page.buf)

    def restore_page(self, page_id: int, image: bytes, dirty: bool) -> None:
        """Overwrite a resident frame with *image* (WAL rollback).

        ``dirty`` says whether the restored content is still ahead of the
        main file (a committed-but-unflushed page) or matches it exactly.
        Runs on the statement-failure path under the exclusive statement
        latch, so no reader can observe the frame mid-restore."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                raise StorageError(f"page {page_id} not resident; cannot restore")
            frame.page.buf[:] = image
            frame.dirty = dirty

    def flush(self) -> None:
        """Write back every dirty page (keeps them cached).

        WAL-pending pages — dirtied by a statement that has not committed —
        are skipped: under the no-steal rule only committed images may reach
        the main file. ``Database.checkpoint`` commits before flushing, so
        its flush is always complete."""
        with self._lock:
            for page_id, frame in self._frames.items():
                if frame.dirty and (
                    self.wal is None or not self.wal.is_pending(page_id)
                ):
                    self.disk.write_page(page_id, frame.page.buf)
                    frame.dirty = False

    def clear(self) -> None:
        """Flush and drop the whole cache (the paper's cold-cache restart).

        Pool counters and the disk manager's I/O counters reset together
        (global and per-thread views alike): activity before the restart
        (including the flush writes issued here) can no longer leak into
        deltas measured after it, so a cold benchmark run never mixes
        warm-run figures. Refuses to run while any page is pinned — a pin
        held across a restart is a caller bug, not a cache entry.
        """
        with self._lock:
            still_pinned = sorted(
                pid for pid, frame in self._frames.items() if frame.pins
            )
            if still_pinned:
                raise StorageError(
                    f"cannot clear buffer pool: pages {still_pinned} are pinned"
                )
            self.flush()
            self._frames.clear()
            # Forget the sequential-read run as a real restart would.
            self.disk.reset_access_history()
            self.stats = PoolStats()
            self._thread_stats.clear()
            self.disk.reset_stats()

    def resident(self, page_id: int) -> bool:
        with self._lock:
            return page_id in self._frames

    def __len__(self) -> int:
        with self._lock:
            return len(self._frames)

    # ------------------------------------------------------------------
    def _admit(self, page_id: int, page: Page, dirty: bool) -> _Frame:
        # Caller holds self._lock.
        while len(self._frames) >= self.capacity:
            victim_id = next(
                (
                    pid
                    for pid, f in self._frames.items()
                    if f.pins == 0
                    and (self.wal is None or not self.wal.is_pending(pid))
                ),
                None,
            )
            if victim_id is None:
                # Every frame is pinned or WAL-pending: overflow capacity
                # rather than evict a page someone is still using (or whose
                # uncommitted image must not reach the file). The next
                # admission shrinks the pool back once pins/commits release.
                break
            victim = self._frames.pop(victim_id)
            tracker = _san.TRACKER
            if tracker is not None:
                # SAND06: a zero-pin victim whose latch is held means some
                # caller latched without pinning.
                tracker.on_evict(victim_id, victim.latch)
            self._record_eviction()
            if victim.dirty:
                self.disk.write_page(victim_id, victim.page.buf)
        frame = _Frame(page, dirty, page_id)
        self._frames[page_id] = frame
        return frame
