"""LRU buffer pool over the disk manager.

Mirrors PostgreSQL's shared buffers at the granularity the paper cares
about: a query that touches a page already in the pool pays nothing; a miss
goes to the :class:`~repro.minidb.disk.DiskManager`, which charges the device
model. Benchmarks call :meth:`BufferPool.clear` to emulate the paper's
"restart the PostgreSQL server and drop the OS cache before each experiment".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import StorageError
from repro.minidb.disk import DiskManager, IOStats
from repro.minidb.page import Page


@dataclass
class PoolStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def snapshot(self) -> "PoolStats":
        return PoolStats(self.hits, self.misses, self.evictions)

    def delta(self, since: "PoolStats") -> "PoolStats":
        return PoolStats(
            self.hits - since.hits,
            self.misses - since.misses,
            self.evictions - since.evictions,
        )


class BufferPool:
    """Fixed-capacity LRU page cache with write-back of dirty pages."""

    def __init__(self, disk: DiskManager, capacity: int = 1024):
        if capacity < 1:
            raise StorageError("buffer pool needs capacity >= 1")
        self.disk = disk
        self.capacity = capacity
        self.stats = PoolStats()
        # page_id -> (Page, dirty flag); OrderedDict keeps LRU order.
        self._frames: OrderedDict[int, list] = OrderedDict()

    # ------------------------------------------------------------------
    def get(self, page_id: int) -> Page:
        """Return the page, reading it through on a miss."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(page_id)
            return frame[0]
        self.stats.misses += 1
        page = Page(self.disk.read_page(page_id))
        self._admit(page_id, page, dirty=False)
        return page

    def new_page(self, kind: int) -> tuple[int, Page]:
        """Allocate a fresh page of *kind* and pin it into the pool dirty."""
        page_id = self.disk.allocate()
        page = Page()
        page.format(kind)
        self._admit(page_id, page, dirty=True)
        return page_id, page

    def mark_dirty(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is None:
            raise StorageError(f"page {page_id} not resident; cannot mark dirty")
        frame[1] = True

    def flush(self) -> None:
        """Write back every dirty page (keeps them cached)."""
        for page_id, frame in self._frames.items():
            if frame[1]:
                self.disk.write_page(page_id, frame[0].buf)
                frame[1] = False

    def clear(self) -> None:
        """Flush and drop the whole cache (the paper's cold-cache restart).

        Pool counters and the disk manager's I/O counters reset together:
        activity before the restart (including the flush writes issued
        here) can no longer leak into deltas measured after it, so a cold
        benchmark run never mixes warm-run figures.
        """
        self.flush()
        self._frames.clear()
        # Forget the sequential-read run as a real restart would.
        self.disk._last_read_page = -2
        self.stats = PoolStats()
        self.disk.stats = IOStats()

    def resident(self, page_id: int) -> bool:
        return page_id in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    # ------------------------------------------------------------------
    def _admit(self, page_id: int, page: Page, dirty: bool) -> None:
        while len(self._frames) >= self.capacity:
            victim_id, (victim, victim_dirty) = self._frames.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.disk.write_page(victim_id, victim.buf)
        self._frames[page_id] = [page, dirty]
