"""Heap files: unordered record storage with overflow (TOAST-like) chains.

A heap file is a linked chain of HEAP pages. Records small enough to live in
a page are stored inline; larger records (hub-label rows carry three arrays
with hundreds or thousands of elements, routinely exceeding one 8 KiB page)
are moved to a chain of OVERFLOW pages and the heap cell keeps only a stub
pointing at the chain — the same idea as PostgreSQL's TOAST.

Record ids (``rid``) are ``(page_id, slot)`` pairs and remain stable for the
life of the record.

Every multi-page operation pins the pages it holds across other pool calls
(`BufferPool` refcounts pins), so a page being extended or read can never be
evicted out from under the operation — this holds even on a capacity-1
pool. Content reads and mutations go through the frame's reader–writer
latch; latches are only ever held one page at a time and never across a
``yield``, which keeps the locking order trivially deadlock-free. Both
disciplines are machine-checked: the dynamic sanitizer (``SANITIZE=1``)
verifies every pin is released by statement end and every ``mark_dirty``
happens under the write latch, and ``repro sanitize`` lints this file's
pin/latch shapes statically — see docs/SANITIZER.md.
"""

from __future__ import annotations

import struct

from repro.errors import StorageError
from repro.minidb.buffer import BufferPool
from repro.minidb.page import (
    HEADER_SIZE,
    KIND_HEAP,
    KIND_OVERFLOW,
    MAX_CELL,
    PAGE_SIZE,
)

_INLINE = 0
_OVERFLOW = 1
_STUB = struct.Struct("<BIq")  # flag, total length, first overflow page
_CHUNK_LEN = struct.Struct("<H")

# Payload capacity of one overflow page.
_OVERFLOW_CAP = PAGE_SIZE - HEADER_SIZE - _CHUNK_LEN.size
# Keep inline records comfortably below a full page so several fit.
_INLINE_LIMIT = MAX_CELL - 1


class HeapFile:
    """An append-oriented heap of byte records over a buffer pool."""

    #: Page kind used for the file's chain pages. Subclasses (the columnar
    #: heap) override this to get pages with a zone-map area.
    PAGE_KIND = KIND_HEAP
    #: Largest record stored inline; bigger records go to overflow chains.
    INLINE_LIMIT = _INLINE_LIMIT

    def __init__(self, pool: BufferPool, first_page: int | None = None):
        self.pool = pool
        if first_page is None:
            # new_page admits the frame already dirty, and nothing else can
            # reach an unlinked page, so no latch (or mark_dirty) is needed.
            first_page, _ = pool.new_page(self.PAGE_KIND)
            pool.unpin(first_page)
        self.first_page = first_page
        #: Heap page ids in chain order. The chain only ever grows at the
        #: tail (``_insert_cell``) and vacuum builds a fresh HeapFile, so
        #: this stays exact for the file's lifetime. Scans use it to
        #: prefetch the next pages of the chain in one sequential run.
        self._chain: list[int] = []
        self._last_page = self._find_last_page()

    def _find_last_page(self) -> int:
        page_id = self.first_page
        while True:
            self._chain.append(page_id)
            page = self.pool.get(page_id)
            if page.next_page == -1:
                return page_id
            page_id = page.next_page

    # ------------------------------------------------------------------
    def insert(self, record: bytes) -> tuple[int, int]:
        """Store *record*, returning its rid."""
        if len(record) + 1 <= self.INLINE_LIMIT:
            cell = bytes([_INLINE]) + record
        else:
            first_chunk_page = self._write_overflow(record)
            cell = _STUB.pack(_OVERFLOW, len(record), first_chunk_page)
        return self._insert_cell(cell)

    def read(self, rid: tuple[int, int]) -> bytes:
        """Fetch the record stored at *rid*."""
        page_id, slot = rid
        with self.pool.pinned(page_id) as page:
            with self.pool.latch(page_id).read():
                if page.kind != self.PAGE_KIND:
                    raise StorageError(f"rid {rid} does not point at a heap page")
                cell = bytes(page.read(slot))
        if cell[0] == _INLINE:
            return cell[1:]
        _, total, ovf_page = _STUB.unpack(cell)
        return self._read_overflow(ovf_page, total)

    def delete(self, rid: tuple[int, int]) -> None:
        """Tombstone the record (overflow pages are left to vacuum)."""
        page_id, slot = rid
        with self.pool.pinned(page_id) as page:
            with self.pool.latch(page_id).write():
                page.delete(slot)
                self.pool.mark_dirty(page_id)

    def scan(
        self,
        readahead: int = 0,
        zone_eq: int | None = None,
        pages: tuple[int, int] | None = None,
    ):
        """Yield ``(rid, record_bytes)`` over every live record, in rid order.

        The scan walks pages in chain order, which is also allocation order,
        so the device model sees mostly-sequential reads — as a real heap
        scan would. With ``readahead=N`` the next N chain pages are
        prefetched into the buffer pool as one batched device run before
        being walked, so cold multi-page scans are charged the device's
        *sequential* read rate even when overflow-chain reads interleave
        with the heap pages (miss/hit totals are unchanged; see
        ``BufferPool.prefetch``). The current page stays pinned while its
        slots are walked (overflow reads in between can therefore never
        evict it); the latch is released before each ``yield`` so consumers
        may issue their own page operations freely.

        ``zone_eq`` is the zone-map skip key: pages whose zone map provably
        excludes the value are skipped without touching the buffer pool
        (and without being prefetched). Plain heaps have no zone maps, so
        the argument is accepted but never skips anything there.

        ``pages=(lo, hi)`` restricts the walk to that chain-*index* slice —
        the morsel contract of the parallel batch executor. Morsel ranges
        partition the chain, so concurrent workers read (and prefetch)
        disjoint pages: readahead batches never cross a morsel boundary and
        no page is ever fetched twice for one query.
        """
        chain = self._chain
        if pages is not None:
            chain = chain[pages[0] : pages[1]]
        index = 0
        pending = 0  # pages of the current prefetch group not yet walked
        while index < len(chain):
            page_id = chain[index]
            index += 1
            if zone_eq is not None and self._zone_skips(page_id, zone_eq):
                continue
            if readahead > 1:
                if pending == 0:
                    batch = [page_id]
                    probe = index
                    while probe < len(chain) and len(batch) < readahead:
                        nxt = chain[probe]
                        if zone_eq is None or not self._zone_skips(nxt, zone_eq):
                            batch.append(nxt)
                        probe += 1
                    self.pool.prefetch(batch)
                    pending = len(batch)
                pending -= 1
            page = self.pool.pin(page_id)
            try:
                latch = self.pool.latch(page_id)
                for slot in range(page.slot_count):
                    with latch.read():
                        if page.is_deleted(slot):
                            continue
                        cell = bytes(page.read(slot))
                    if cell[0] == _INLINE:
                        yield (page_id, slot), cell[1:]
                    else:
                        _, total, ovf_page = _STUB.unpack(cell)
                        yield (page_id, slot), self._read_overflow(ovf_page, total)
            finally:
                self.pool.unpin(page_id)

    def _zone_skips(self, page_id: int, zone_eq: int) -> bool:
        """Whether the page's zone map proves *zone_eq* cannot match."""
        return False

    def chain_length(self) -> int:
        """Heap-chain page count without any pool traffic (the in-memory
        chain list is authoritative); morsel planning splits over this."""
        return len(self._chain)

    def page_ids(self) -> list[int]:
        """All heap page ids of this file (excluding overflow pages)."""
        out = []
        page_id = self.first_page
        while page_id != -1:
            out.append(page_id)
            page_id = self.pool.get(page_id).next_page
        return out

    # ------------------------------------------------------------------
    def _insert_cell(self, cell: bytes) -> tuple[int, int]:
        page_id = self._last_page
        page = self.pool.pin(page_id)
        try:
            if page.free_space < len(cell):
                # Extend the chain. The old tail stays pinned while the new
                # page is admitted, so even a capacity-1 pool cannot evict
                # it before the next-page link lands.
                new_id, new_page = self.pool.new_page(self.PAGE_KIND)
                with self.pool.latch(page_id).write():
                    page.next_page = new_id
                    self.pool.mark_dirty(page_id)
                self.pool.unpin(page_id)
                self._last_page = new_id
                self._chain.append(new_id)
                page_id, page = new_id, new_page
            with self.pool.latch(page_id).write():
                slot = page.insert(cell)
                self.pool.mark_dirty(page_id)
            return (page_id, slot)
        finally:
            self.pool.unpin(page_id)

    def _write_overflow(self, record: bytes) -> int:
        first = -1
        prev_id = -1
        for start in range(0, len(record), _OVERFLOW_CAP):
            chunk = record[start : start + _OVERFLOW_CAP]
            page_id, page = self.pool.new_page(KIND_OVERFLOW)
            with self.pool.latch(page_id).write():
                _CHUNK_LEN.pack_into(page.buf, HEADER_SIZE, len(chunk))
                page.buf[HEADER_SIZE + 2 : HEADER_SIZE + 2 + len(chunk)] = chunk
                self.pool.mark_dirty(page_id)
            if first == -1:
                first = page_id
            else:
                # prev is still pinned from the previous iteration, so this
                # link write lands on the resident frame.
                prev = self.pool.get(prev_id)
                with self.pool.latch(prev_id).write():
                    prev.next_page = page_id
                    self.pool.mark_dirty(prev_id)
                self.pool.unpin(prev_id)
            prev_id = page_id
        if prev_id != -1:
            self.pool.unpin(prev_id)
        return first

    def _read_overflow(self, first_page: int, total: int) -> bytes:
        parts = []
        remaining = total
        page_id = first_page
        while remaining > 0:
            if page_id == -1:
                raise StorageError("overflow chain truncated")
            with self.pool.pinned(page_id) as page:
                with self.pool.latch(page_id).read():
                    if page.kind != KIND_OVERFLOW:
                        raise StorageError(
                            f"page {page_id} is not an overflow page"
                        )
                    (length,) = _CHUNK_LEN.unpack_from(page.buf, HEADER_SIZE)
                    parts.append(
                        bytes(page.buf[HEADER_SIZE + 2 : HEADER_SIZE + 2 + length])
                    )
                    next_page = page.next_page
            remaining -= length
            page_id = next_page
        data = b"".join(parts)
        if len(data) != total:
            raise StorageError("overflow chain length mismatch")
        return data
