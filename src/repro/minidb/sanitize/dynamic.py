"""Dynamic concurrency sanitizer: latch-order and pin-discipline tracking.

The storage layer's concurrency rules (docs/SANITIZER.md) are written down
in the ``buffer``/``latch``/``heap`` docstrings but, in normal operation,
never checked — a pin leaked by one statement or a latch taken in the wrong
order only surfaces as a hang or a corrupted benchmark number much later.
This module is the debug mode that checks them as they happen.

Enable with ``SANITIZE=1`` in the environment (read once at import) or
programmatically via :func:`enable`/:func:`disable`. While enabled, the
hooks that :mod:`~repro.minidb.latch` and :mod:`~repro.minidb.buffer` call
on every acquire/release/pin/unpin record, per thread:

* the set of latches currently held (with the acquisition stack of each),
* a global latch-acquisition graph — an edge A→B means "some thread
  acquired B while holding A". A cycle in that graph is a lock-order
  inversion: two threads interleaving those orders can deadlock. The edge
  that closes a cycle raises :class:`~repro.errors.SanitizerError` carrying
  *both* acquisition stacks (the one creating the edge and the recorded
  stack of the conflicting order).
* every outstanding buffer-pool pin (with the stack of the ``pin()`` /
  ``new_page()`` call that took it), checked back to zero at statement end.

Violations raise :class:`~repro.errors.SanitizerError` with a stable
``SAND*`` code:

========  =============================================================
SAND01    lock-order inversion (cycle in the latch-acquisition graph)
SAND02    pin leak: pins still held by this thread at statement end
SAND03    unpin of a page this thread never pinned
SAND04    page mutated (``mark_dirty``) without holding its write latch
SAND05    self-deadlock: read→write upgrade (or re-entrant write) on one
          latch in one thread
SAND06    eviction victim's latch is still held (pin-while-latched rule
          was broken by whoever held it)
========  =============================================================

When disabled (the default), every hook site is a single ``TRACKER is not
None`` check — measured overhead on ``experiment_concurrency`` is well
under the 10% budget (see docs/SANITIZER.md).

This module deliberately imports nothing from the rest of minidb, so the
latch and buffer layers can hook into it without import cycles.
"""

from __future__ import annotations

import os
import threading
import traceback
import weakref

from repro.errors import SanitizerError

__all__ = [
    "SanitizerError",
    "Tracker",
    "enable",
    "disable",
    "enabled",
    "TRACKER",
]

#: Frames of context kept per recorded acquisition stack.
_STACK_DEPTH = 12
#: Internal modules skipped when attributing a pin/latch to its call site.
_SKIP_FRAMES = ("sanitize/dynamic.py",)


def _capture_stack(label: str) -> str:
    """A formatted, trimmed stack for *label*, innermost call last."""
    frames = traceback.extract_stack()
    trimmed = [
        frame
        for frame in frames
        if not any(skip in frame.filename for skip in _SKIP_FRAMES)
    ][-_STACK_DEPTH:]
    body = "".join(traceback.format_list(trimmed))
    return f"--- {label} ---\n{body.rstrip()}"


class _ThreadState(threading.local):
    """Per-thread held-latch list and outstanding-pin table."""

    def __init__(self):
        #: list of (latch_key, mode, stack) in acquisition order.
        self.held = []
        #: page_id -> list of acquisition stacks (one per outstanding pin).
        self.pins = {}


class Tracker:
    """The sanitizer state shared by every hooked latch and pool."""

    def __init__(self):
        self._lock = threading.Lock()
        self._local = _ThreadState()
        #: latch-acquisition graph: from_key -> {to_key: (stack_a, stack_b)}
        #: where stack_a acquired *from* and stack_b acquired *to* while
        #: holding it (the pair that established the edge, kept for reports).
        self._edges: dict[int, dict[int, tuple[str, str]]] = {}
        #: latch_key -> human name ("page:17", "stmt"), for reports.
        self._names: dict[int, str] = {}
        #: keys with a live finalizer attached — see :meth:`_watch`.
        self._watched: set[int] = set()

    def _watch(self, latch, key: int) -> None:
        """Purge *key*'s graph entries when *latch* is collected.

        Keys are ``id()`` values, and CPython recycles addresses: once a
        latch dies (a closed/GC'd ``Database``), a brand-new latch can
        alias its key and inherit stale edges — a false lock-order
        inversion against ordering the new latch never took part in.
        Caller holds ``self._lock``.
        """
        if key in self._watched:
            return
        try:
            weakref.finalize(latch, self._forget, key)
        except TypeError:
            return  # not weakref-able: tracked, but never purged
        self._watched.add(key)

    def _forget(self, key: int) -> None:
        with self._lock:
            self._watched.discard(key)
            self._edges.pop(key, None)
            for edges in self._edges.values():
                edges.pop(key, None)
            self._names.pop(key, None)

    # -- latch hooks -----------------------------------------------------
    def before_acquire(self, latch, mode: str) -> None:
        """Called by ``RWLatch.acquire_*`` before it may block."""
        key = id(latch)
        name = getattr(latch, "name", "latch")
        held = self._local.held
        for held_key, held_mode, held_stack in held:
            if held_key == key and (mode == "write" or held_mode == "write"):
                raise SanitizerError(
                    "SAND05",
                    f"self-deadlock: thread already holds latch {name} "
                    f"for {held_mode} and is acquiring it for {mode} "
                    "(the latch is non-reentrant, this never completes)",
                    traces=[held_stack, _capture_stack(f"{mode} acquire")],
                )
        if any(k == key for k, _, _ in held):
            # Re-entrant read of a latch this thread already holds: it can
            # never block (readers only wait on a *held* writer), so it
            # contributes no ordering edge.
            return
        if not held:
            return
        acquire_stack = _capture_stack(f"{mode} acquire of {name}")
        with self._lock:
            self._watch(latch, key)
            self._names[key] = name
            for held_key, _, held_stack in held:
                if held_key == key:
                    continue
                self._names.setdefault(held_key, "latch")
                edges = self._edges.setdefault(held_key, {})
                if key not in edges:
                    edges[key] = (held_stack, acquire_stack)
                # Inversion: an existing path key -> ... -> held_key means
                # some other order already acquired held_key under key.
                path = self._find_path(key, held_key)
                if path is not None:
                    first_hop = self._edges[path[0]][path[1]]
                    raise SanitizerError(
                        "SAND01",
                        "lock-order inversion: this thread acquires "
                        f"{name} while holding "
                        f"{self._names.get(held_key, 'latch')}, but the "
                        "opposite order "
                        f"({self._names.get(path[0], 'latch')} -> "
                        f"{self._names.get(path[1], 'latch')}) was "
                        "recorded earlier — the two interleaved can "
                        "deadlock",
                        traces=[held_stack, acquire_stack, first_hop[1]],
                    )

    def _find_path(self, src: int, dst: int) -> list[int] | None:
        """A node path src -> ... -> dst in the edge graph, else None."""
        # Caller holds self._lock. The graph stays tiny (one node per
        # distinct latch ever held nested), so DFS is plenty.
        stack = [(src, [src])]
        seen = {src}
        while stack:
            node, path = stack.pop()
            for nxt in self._edges.get(node, ()):
                if nxt == dst:
                    return path + [nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    def after_acquire(self, latch, mode: str) -> None:
        """Called by ``RWLatch.acquire_*`` once the latch is held."""
        name = getattr(latch, "name", "latch")
        key = id(latch)
        with self._lock:
            # Every latch that can appear as a held_key in the edge graph
            # passes through here first, so watch it now (before_acquire
            # returns early for the outermost latch and never sees it).
            self._watch(latch, key)
        self._local.held.append(
            (key, mode, _capture_stack(f"{mode} acquire of {name}"))
        )

    def on_release(self, latch, mode: str) -> None:
        held = self._local.held
        key = id(latch)
        for index in range(len(held) - 1, -1, -1):
            if held[index][0] == key and held[index][1] == mode:
                del held[index]
                return
        # A release without a tracked acquire: the latch itself raises on
        # double release, so only cross-thread releases reach this branch.

    # -- pin hooks -------------------------------------------------------
    def on_pin(self, page_id: int) -> None:
        pins = self._local.pins
        pins.setdefault(page_id, []).append(
            _capture_stack(f"pin of page {page_id}")
        )

    def on_unpin(self, page_id: int) -> None:
        stacks = self._local.pins.get(page_id)
        if not stacks:
            raise SanitizerError(
                "SAND03",
                f"unpin of page {page_id} which this thread never pinned",
                traces=[_capture_stack(f"unpin of page {page_id}")],
            )
        stacks.pop()
        if not stacks:
            del self._local.pins[page_id]

    def check_statement_end(self) -> None:
        """Raise if the calling thread still holds any pins.

        Sessions call this as each statement finishes: every pin a
        statement takes must be released before it returns (the
        ``buffer.py`` invariant), and the per-thread table attributes the
        leak to the call site that took the pin. The table is cleared so
        one leak does not poison every later statement on the thread.
        """
        pins = self._local.pins
        if not pins:
            return
        leaked = {pid: list(stacks) for pid, stacks in pins.items()}
        pins.clear()
        count = sum(len(stacks) for stacks in leaked.values())
        pages = ", ".join(str(pid) for pid in sorted(leaked))
        traces = [stack for stacks in leaked.values() for stack in stacks]
        raise SanitizerError(
            "SAND02",
            f"pin leak: {count} pin(s) on page(s) {pages} still held at "
            "statement end",
            traces=traces,
        )

    def drop_thread_pins(self) -> None:
        """Forget the calling thread's recorded pins without raising.

        Used when a statement dies with an unrelated exception: the primary
        error wins, and stale entries must not poison the next statement's
        leak check on this thread.
        """
        self._local.pins.clear()

    def thread_pin_count(self) -> int:
        """Outstanding pins recorded for the calling thread."""
        return sum(len(stacks) for stacks in self._local.pins.values())

    # -- buffer-pool hooks ----------------------------------------------
    def on_mark_dirty(self, page_id: int, latch) -> None:
        """``mark_dirty`` requires the calling thread to hold the frame's
        write latch — mutating shared page content under a read latch (or
        none) is exactly the race the latch exists to prevent."""
        holders = latch.holders()
        if holders["writer"] != threading.get_ident():
            raise SanitizerError(
                "SAND04",
                f"page {page_id} marked dirty without holding its write "
                f"latch (writer={holders['writer']}, "
                f"readers={holders['readers']})",
                traces=[_capture_stack(f"mark_dirty of page {page_id}")],
            )

    def on_evict(self, page_id: int, latch) -> None:
        """An eviction victim has pins == 0; its latch must be free too
        (callers hold a pin while latched, so a held latch here means that
        rule was broken somewhere upstream)."""
        holders = latch.holders()
        if holders["writer"] is not None or holders["readers"]:
            raise SanitizerError(
                "SAND06",
                f"evicting page {page_id} whose latch is still held "
                f"(writer={holders['writer']}, "
                f"readers={holders['readers']}) — a latch was taken "
                "without a pin",
                traces=[_capture_stack(f"eviction of page {page_id}")],
            )


#: The active tracker, or ``None`` when the sanitizer is off. Hook sites
#: read this once per call; keeping it a module global makes the disabled
#: path one attribute load + ``is not None``.
TRACKER: Tracker | None = None


def enable() -> Tracker:
    """Turn the sanitizer on (idempotent); returns the active tracker."""
    global TRACKER
    if TRACKER is None:
        TRACKER = Tracker()
    return TRACKER


def disable() -> None:
    """Turn the sanitizer off and drop all recorded state."""
    global TRACKER
    TRACKER = None


def enabled() -> bool:
    return TRACKER is not None


if os.environ.get("SANITIZE", "") not in ("", "0"):
    enable()
