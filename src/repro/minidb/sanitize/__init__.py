"""Concurrency sanitizer for the minidb storage layer.

Two independent sides (docs/SANITIZER.md):

* :mod:`repro.minidb.sanitize.dynamic` — a runtime sanitizer (``SANITIZE=1``
  or :func:`enable`) that tracks latch acquisition order and buffer-pool
  pins per thread and raises :class:`~repro.errors.SanitizerError` (codes
  ``SAND01``-``SAND06``) the moment a rule is broken.
* :mod:`repro.minidb.sanitize.static` — an AST-based lint over the source
  tree (``repro sanitize`` on the CLI) enforcing the same rules where they
  are visible in the code shape: pins released on all paths, latches taken
  only through guards, no pool-internal access (codes ``SAN101``-``SAN301``).

Only the dynamic side is imported here: the latch and buffer layers hook
into it at import time, so it must stay free of minidb dependencies. The
static checker (which leans on the SQL front-end's diagnostic rendering) is
imported explicitly as ``repro.minidb.sanitize.static`` by the CLI and
tests.
"""

from repro.minidb.sanitize.dynamic import (
    TRACKER,
    SanitizerError,
    Tracker,
    disable,
    enable,
    enabled,
)

__all__ = [
    "SanitizerError",
    "Tracker",
    "disable",
    "enable",
    "enabled",
    "TRACKER",
]
