"""Static concurrency-discipline lint over the storage layer.

The dynamic sanitizer (:mod:`.dynamic`) catches violations *when they
execute*; this module catches the shapes that produce them *before* they
run, by walking the AST of every Python file under ``src/repro`` (or any
path handed to it). The rules are the ``buffer.py``/``latch.py`` contract,
mechanised:

========  ==============================================================
SAN101    a ``pin()`` / ``new_page()`` / ``get(..., pin=True)`` call with
          no ``unpin()`` anywhere after it in the same function — the pin
          cannot be released on any path
SAN102    ``return`` / ``raise`` / ``yield`` reached while pins taken in
          this function are still open and not protected by a
          ``try``/``finally`` that unpins
SAN201    bare ``acquire_read`` / ``acquire_write`` / ``release_read`` /
          ``release_write`` call outside ``latch.py`` — latches must be
          held through the ``with latch.read()/.write()`` guards so
          release is exception-safe
SAN202    ``yield`` inside a latch-guard ``with`` block (warning) — the
          latch stays held across the suspension, for as long as the
          consumer pleases
SAN203    nested latch guards on the same receiver expression — the latch
          is non-reentrant, so a read→write (or write→anything) upgrade
          self-deadlocks
SAN301    buffer-pool internals (``_frames``, ``_admit``, ``_record_*``,
          frame ``pins`` counts) touched outside ``buffer.py``
========  ==============================================================

The checks are lexical heuristics, not a dataflow analysis: they are
tuned to be *clean on the shipped tree* (enforced by
``tests/minidb/test_sanitize_static.py``) while firing on each shape in
``tests/minidb/sanitize_fixtures/``. ``buffer.py`` is exempt from the pin
and pool-internal rules (it *implements* them); ``latch.py`` is exempt
from SAN201 for the same reason.

Diagnostics reuse the SQL front-end's :class:`~repro.minidb.sql.\
diagnostics.Diagnostic` machinery — stable codes, byte-offset spans and
caret excerpts — so ``repro sanitize`` output reads exactly like
``repro lint`` output.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.minidb.sql.diagnostics import ERROR, WARNING, Diagnostic, Span

__all__ = ["CODES", "FileReport", "check_source", "check_file", "check_tree"]

#: Stable code -> one-line summary (documented in docs/SANITIZER.md).
CODES = {
    "SAN101": "pin acquired but never unpinned in the same function",
    "SAN102": "return/raise/yield while pins are open and unprotected",
    "SAN201": "bare latch acquire/release outside latch.py",
    "SAN202": "yield while holding a latch guard",
    "SAN203": "nested latch guards on the same latch expression",
    "SAN301": "buffer-pool internals touched outside buffer.py",
}

#: Files exempt per rule family (they implement the discipline).
_PIN_EXEMPT = {"buffer.py"}  # SAN101 / SAN102
_LATCH_EXEMPT = {"latch.py"}  # SAN201
_POOL_EXEMPT = {"buffer.py"}  # SAN301

_BARE_LATCH_CALLS = {
    "acquire_read",
    "acquire_write",
    "release_read",
    "release_write",
}
_POOL_INTERNALS = {
    "_frames",
    "_admit",
    "_record_hit",
    "_record_miss",
    "_record_eviction",
}


@dataclass
class FileReport:
    """Diagnostics for one checked file, plus the source for rendering."""

    path: str
    source: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    def render(self) -> str:
        return "\n".join(
            f"{self.path}: {d.render(self.source)}" for d in self.diagnostics
        )


def _line_offsets(source: str) -> list[int]:
    """Byte offset of the start of each (1-based) line."""
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _node_span(node: ast.AST, offsets: list[int]) -> Span:
    start = offsets[node.lineno - 1] + node.col_offset
    end_lineno = getattr(node, "end_lineno", None)
    if end_lineno is None:
        return Span(start, start + 1)
    return Span(start, offsets[end_lineno - 1] + node.end_col_offset)


def _is_pin_call(node: ast.AST) -> bool:
    """``x.pin(...)``, ``x.new_page(...)`` or ``x.get(..., pin=True)``."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return False
    attr = node.func.attr
    if attr in ("pin", "new_page"):
        return True
    if attr == "get":
        return any(
            kw.arg == "pin"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )
    return False


def _is_unpin_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "unpin"
    )


def _latch_guard(item: ast.withitem) -> tuple[str, str] | None:
    """``(receiver_text, mode)`` when *item* is ``with <latch>.read()/.write()``.

    Receiver detection is textual: the unparsed receiver must mention
    "latch" (``self.pool.latch(pid)``, ``frame.latch``, ``self._stmt_latch``
    all do), so ``open(path).read()`` never matches.
    """
    expr = item.context_expr
    if not (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in ("read", "write")
        and not expr.args
        and not expr.keywords
    ):
        return None
    receiver = ast.unparse(expr.func.value)
    if "latch" not in receiver.lower():
        return None
    return receiver, expr.func.attr


def _walk_no_defs(node: ast.AST):
    """Yield *node* and descendants, without entering nested def/class."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield from _walk_no_defs(child)


def _calls_in_header(stmt: ast.stmt):
    """Calls in a statement's own expressions, not in nested suites.

    For simple statements that is every call; for compound statements only
    the header (``if``/``while`` test, ``for`` iter, ``with`` items) — the
    sub-suites are walked separately by the pin counter.
    """
    if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
        roots = [stmt.test]
    elif isinstance(stmt, ast.For):
        roots = [stmt.iter]
    elif isinstance(stmt, ast.With):
        roots = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, ast.Try):
        roots = []
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        roots = []
    else:
        roots = [stmt]
    for root in roots:
        for node in _walk_no_defs(root):
            if isinstance(node, ast.Call):
                yield node


def _sub_suites(stmt: ast.stmt) -> list[list[ast.stmt]]:
    """The statement suites nested directly under *stmt* (not defs)."""
    if isinstance(stmt, (ast.If, ast.While, ast.For)):
        return [stmt.body, stmt.orelse]
    if isinstance(stmt, ast.With):
        return [stmt.body]
    if isinstance(stmt, ast.Try):
        suites = [stmt.body, stmt.orelse]
        suites.extend(h.body for h in stmt.handlers)
        return suites
    return []


class _Checker:
    def __init__(self, source: str, filename: str):
        self.source = source
        self.name = Path(filename).name
        self.offsets = _line_offsets(source)
        self.diagnostics: list[Diagnostic] = []

    # ------------------------------------------------------------------
    def error(self, code: str, message: str, node: ast.AST, hint=None) -> None:
        self.diagnostics.append(
            Diagnostic(code, ERROR, message, _node_span(node, self.offsets), hint)
        )

    def warning(self, code: str, message: str, node: ast.AST, hint=None) -> None:
        self.diagnostics.append(
            Diagnostic(code, WARNING, message, _node_span(node, self.offsets), hint)
        )

    # ------------------------------------------------------------------
    def run(self, tree: ast.AST) -> list[Diagnostic]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node)
        self._check_latch_nesting(tree, [])
        self._check_pool_internals(tree)
        self.diagnostics.sort(key=lambda d: (d.span.start if d.span else 0))
        return self.diagnostics

    # -- SAN101 / SAN102: pin discipline --------------------------------
    def _check_function(self, func) -> None:
        if self.name not in _PIN_EXEMPT:
            self._check_pin_release(func)
            self._walk_pin_paths(func.body, 0)
        if self.name not in _LATCH_EXEMPT:
            self._check_bare_latch_calls(func)

    def _check_pin_release(self, func) -> None:
        """SAN101: every pin-acquiring call needs an unpin after it."""
        pins, unpins = [], []
        for stmt in func.body:
            for node in _walk_no_defs(stmt):
                if _is_pin_call(node):
                    pins.append(node)
                elif _is_unpin_call(node):
                    unpins.append((node.lineno, node.col_offset))
        for call in pins:
            where = (call.lineno, call.col_offset)
            if not any(pos > where for pos in unpins):
                self.error(
                    "SAN101",
                    f"pin taken by {ast.unparse(call.func)}() is never "
                    "released in this function",
                    call,
                    hint="every pin must reach an unpin on all paths; use "
                    "`with pool.pinned(page_id) as page:` where possible",
                )

    def _walk_pin_paths(self, suite: list[ast.stmt], open_pins: int) -> int:
        """SAN102: flag exits while pins are open and unprotected.

        A lexical walk, not a dataflow analysis: pin/unpin calls adjust a
        counter in statement order (branches flattened, clamped at zero),
        and a ``try`` whose ``finally`` unpins pre-credits those releases —
        that is the blessed protection idiom, so exits under it are clean.
        """
        for stmt in suite:
            if isinstance(stmt, ast.Try):
                credit = sum(
                    1
                    for inner in stmt.finalbody
                    for node in _walk_no_defs(inner)
                    if _is_unpin_call(node)
                )
                open_pins = max(0, open_pins - credit)
                for sub in _sub_suites(stmt):
                    open_pins = self._walk_pin_paths(sub, open_pins)
                continue
            for call in _calls_in_header(stmt):
                if _is_pin_call(call):
                    open_pins += 1
                elif _is_unpin_call(call):
                    open_pins = max(0, open_pins - 1)
            if open_pins > 0 and self._is_exit(stmt):
                kind = type(stmt).__name__.lower()
                if isinstance(stmt, ast.Expr):
                    kind = "yield"
                self.error(
                    "SAN102",
                    f"{kind} while {open_pins} pin(s) taken by this "
                    "function are still open and not protected by a "
                    "try/finally unpin",
                    stmt,
                    hint="unpin before exiting, or wrap the pinned region "
                    "in try/finally (or `with pool.pinned(...)`)",
                )
            for sub in _sub_suites(stmt):
                open_pins = self._walk_pin_paths(sub, open_pins)
        return open_pins

    @staticmethod
    def _is_exit(stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            return True
        return isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, (ast.Yield, ast.YieldFrom)
        )

    # -- SAN201: bare latch calls ---------------------------------------
    def _check_bare_latch_calls(self, func) -> None:
        for stmt in func.body:
            for node in _walk_no_defs(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _BARE_LATCH_CALLS
                ):
                    self.error(
                        "SAN201",
                        f"bare {node.func.attr}() outside latch.py — an "
                        "exception between acquire and release leaks the "
                        "latch",
                        node,
                        hint="hold latches through `with latch.read():` / "
                        "`with latch.write():` guards",
                    )

    # -- SAN202 / SAN203: latch-guard shapes ----------------------------
    def _check_latch_nesting(self, node: ast.AST, stack: list[str]) -> None:
        pushed = 0
        if isinstance(node, ast.With):
            for item in node.items:
                guard = _latch_guard(item)
                if guard is None:
                    continue
                receiver, mode = guard
                if receiver in stack:
                    self.error(
                        "SAN203",
                        f"nested latch guard .{mode}() on {receiver!r} "
                        "which an enclosing `with` already holds — the "
                        "latch is non-reentrant, this self-deadlocks",
                        item.context_expr,
                        hint="take the strongest mode once, at the "
                        "outermost point",
                    )
                stack.append(receiver)
                pushed += 1
            for stmt in node.body:
                for inner in _walk_no_defs(stmt):
                    if pushed and isinstance(inner, (ast.Yield, ast.YieldFrom)):
                        self.warning(
                            "SAN202",
                            "yield while holding a latch guard — the latch "
                            "stays held across the suspension for as long "
                            "as the consumer pleases",
                            inner,
                            hint="copy what you need out of the page, "
                            "release the guard, then yield",
                        )
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_latch_nesting_body(child, list(stack))
            else:
                self._check_latch_nesting(child, stack)
        del stack[len(stack) - pushed :]

    def _check_latch_nesting_body(self, func, stack: list[str]) -> None:
        # A nested def does not inherit the enclosing guards at call time,
        # so its body starts with a fresh stack.
        for stmt in func.body:
            self._check_latch_nesting(stmt, [])

    # -- SAN301: pool encapsulation -------------------------------------
    def _check_pool_internals(self, tree: ast.AST) -> None:
        if self.name in _POOL_EXEMPT:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and node.attr in _POOL_INTERNALS:
                self.error(
                    "SAN301",
                    f"buffer-pool internal {node.attr!r} accessed outside "
                    "buffer.py",
                    node,
                    hint="go through the public BufferPool API (get/pin/"
                    "unpin/mark_dirty/stats)",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "pins"
                        and not (
                            isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        )
                    ):
                        self.error(
                            "SAN301",
                            "frame pin count mutated outside buffer.py — "
                            "pin bookkeeping is the pool's alone",
                            target,
                            hint="use pool.pin()/pool.unpin()",
                        )


# ----------------------------------------------------------------------
def check_source(source: str, filename: str = "<string>") -> list[Diagnostic]:
    """All sanitizer diagnostics for one Python source text."""
    tree = ast.parse(source, filename=filename)
    return _Checker(source, filename).run(tree)


def check_file(path: str | Path) -> FileReport:
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return FileReport(str(path), source, check_source(source, str(path)))


def check_tree(root: str | Path) -> list[FileReport]:
    """Check *root* (a file or a directory, recursively), sorted by path."""
    root = Path(root)
    if root.is_file():
        return [check_file(root)]
    reports = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        reports.append(check_file(path))
    return reports
