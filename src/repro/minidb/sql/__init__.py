"""SQL front-end for minidb: lexer, parser, executor."""

from repro.minidb.sql.parser import parse

__all__ = ["parse"]
