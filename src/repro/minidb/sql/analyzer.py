"""Static semantic analysis for minidb SQL — runs before execution.

Three passes over a parsed statement, mirroring the executor's runtime
semantics so that anything the analyzer accepts the executor can run, and
anything the executor would reject mid-iteration the analyzer rejects up
front with a source location:

* **Pass 1 — binder.** Resolves every ``TableRef`` against the catalog and
  the CTE environment, and every ``ColumnRef`` against the scope built from
  the ``FROM`` clause (qualifier-aware, ambiguity-checked), exactly like
  ``Executor._resolve``.
* **Pass 2 — type checker.** Infers a type for every expression over the
  lattice ``int | float | text | bool | null | unknown | (array, elem)``
  and enforces the dialect's semantic rules: array subscripts only on
  arrays, numeric functions on numerics, aggregates neither nested nor in
  ``WHERE``/``GROUP BY``, ``GROUP BY`` validity, ``UNION`` arity and type
  compatibility, window-function and ``UNNEST`` placement.
* **Pass 3 — access paths.** Runs the real planner
  (:func:`repro.minidb.sql.planner.plan_statement`) and reads the access
  paths straight off the physical plan tree: :class:`PkLookup` nodes become
  PK point lookups, :class:`IndexNestedLoop` nodes become per-row probes,
  :class:`SeqScan` nodes full scans — before reading a single page. There
  is no symbolic replay to drift out of sync: the plan that is classified
  is the plan that executes. This is what lets PTLDB's paper bounds ("a
  v2v query touches exactly two label rows") be checked statically; see
  :func:`check_paper_bounds`.

Diagnostics carry stable codes (see ``docs/ANALYZER.md``) and source spans,
and render with a caret excerpt via :meth:`Diagnostic.render`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import (
    AnalyzerCatalogError,
    AnalyzerNameError,
    AnalyzerStructureError,
    AnalyzerTypeError,
    SQLAnalysisError,
)
from repro.minidb.sql import ast
from repro.minidb.sql.diagnostics import (
    ERROR,
    Diagnostic,
    DiagnosticSink,
    Span,
)
from repro.minidb.sql.functions import (
    AGGREGATE_FUNCTIONS,
    SCALAR_FUNCTIONS,
    SET_RETURNING,
)
from repro.minidb.values import (
    T_BIGINT,
    T_BIGINT_ARRAY,
    T_BIGINT_ARRAY_PACKED,
    T_BOOL,
    T_DOUBLE,
    T_DOUBLE_ARRAY,
    T_TEXT,
    type_from_name,
)

# ---------------------------------------------------------------------------
# Type lattice
# ---------------------------------------------------------------------------
INT = "int"
FLOAT = "float"
TEXT = "text"
BOOL = "bool"
NULL = "null"
UNKNOWN = "unknown"

_TAG_TYPES = {
    T_BIGINT: INT,
    T_DOUBLE: FLOAT,
    T_TEXT: TEXT,
    T_BOOL: BOOL,
    T_BIGINT_ARRAY: ("array", INT),
    T_BIGINT_ARRAY_PACKED: ("array", INT),
    T_DOUBLE_ARRAY: ("array", FLOAT),
}

_NUMERIC = (INT, FLOAT, NULL, UNKNOWN)


def type_of_tag(tag: int):
    return _TAG_TYPES.get(tag, UNKNOWN)


def is_array(ty) -> bool:
    return isinstance(ty, tuple) and ty[0] == "array"


def _maybe_array(ty) -> bool:
    return is_array(ty) or ty in (NULL, UNKNOWN)


def _maybe_numeric(ty) -> bool:
    return ty in _NUMERIC


def type_name(ty) -> str:
    if is_array(ty):
        return f"{type_name(ty[1])}[]"
    return str(ty)


def unify(a, b):
    """Least upper bound of two lattice types; ``None`` if incompatible."""
    if a == b:
        return a
    for x, y in ((a, b), (b, a)):
        if x in (NULL, UNKNOWN):
            return y
    if {a, b} == {INT, FLOAT}:
        return FLOAT
    if is_array(a) and is_array(b):
        elem = unify(a[1], b[1])
        return None if elem is None else ("array", elem)
    return None


def _comparable(a, b) -> bool:
    return unify(a, b) is not None


# ---------------------------------------------------------------------------
# Access paths
# ---------------------------------------------------------------------------
PK_POINT = "pk-point"  # B+Tree point lookup: every PK column pinned constant
PK_PROBE = "pk-probe"  # index nested loop: PK pinned per-row from left side
SEQ_SCAN = "seq-scan"  # full heap scan
CTE_SCAN = "cte-scan"  # materialized CTE re-read (no base pages)
SUBQUERY = "subquery"  # derived relation (its own accesses reported inside)

#: What operator name the executor's trace will show for each static class —
#: the bench runner diffs this prediction against the measured trace.
EXPECTED_OPERATOR = {
    PK_POINT: "Index Scan",
    PK_PROBE: "Index Nested Loop",
    SEQ_SCAN: "Seq Scan",
    CTE_SCAN: "CTE Scan",
    SUBQUERY: "Subquery Scan",
}

#: Tables holding paper label data: the TTL label tables themselves plus the
#: derived kNN/OTM auxiliary tables. The *naive* tables (paper Code 2) are
#: excluded — the naive scheme scans them by design.
_LABEL_TABLE = re.compile(r"^(lout|lin|knn_|otm_)")


def is_label_table(name: str) -> bool:
    return bool(_LABEL_TABLE.match(name)) and "naive" not in name


@dataclass(frozen=True)
class AccessPath:
    """Static classification of one relation access."""

    table: str  # base-table (or CTE / subquery alias) name
    alias: str
    kind: str  # PK_POINT | PK_PROBE | SEQ_SCAN | CTE_SCAN | SUBQUERY
    detail: str = ""
    span: Span | None = None

    @property
    def expected_operator(self) -> str:
        return EXPECTED_OPERATOR[self.kind]

    def describe(self) -> str:
        extra = f" {self.detail}" if self.detail else ""
        alias = f" AS {self.alias}" if self.alias != self.table else ""
        return f"{self.kind} on {self.table}{alias}{extra}"


# ---------------------------------------------------------------------------
# Analysis result
# ---------------------------------------------------------------------------
_ERROR_CLASS = {
    "SEM001": AnalyzerCatalogError,
    "SEM002": AnalyzerNameError,
    "SEM003": AnalyzerNameError,
    "SEM004": AnalyzerNameError,
    "SEM005": AnalyzerStructureError,
    "SEM006": AnalyzerCatalogError,
}


@dataclass
class Analysis:
    """Everything the analyzer learned about one statement."""

    sql: str | None
    diagnostics: list[Diagnostic] = field(default_factory=list)
    access_paths: list[AccessPath] = field(default_factory=list)
    output: list[tuple[str, object]] = field(default_factory=list)
    #: the physical plan (repro.minidb.sql.plan.Plan) the access paths were
    #: read from; None when analysis failed or planning was impossible
    plan: object = None

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity != ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        return "\n".join(d.render(self.sql) for d in self.diagnostics)

    def raise_if_errors(self) -> None:
        """Raise the first error as the analyzer subclass of the exception
        the executor would have raised at runtime (so existing ``except``
        clauses and tests keep working)."""
        if not self.errors:
            return
        first = self.errors[0]
        cls = _ERROR_CLASS.get(first.code)
        if cls is None:
            prefix = first.code[:3]
            cls = {
                "TYP": AnalyzerTypeError,
                "AGG": AnalyzerStructureError,
                "WIN": AnalyzerStructureError,
                "SRF": AnalyzerStructureError,
            }.get(prefix, SQLAnalysisError)
        raise cls(first.render(self.sql))

    def paths_for(self, table: str) -> list[AccessPath]:
        return [p for p in self.access_paths if p.table == table]

    def summary(self) -> list[dict]:
        """JSON-friendly access-path list (consumed by the bench runner)."""
        return [
            {
                "table": p.table,
                "alias": p.alias,
                "kind": p.kind,
                "expected_operator": p.expected_operator,
                "detail": p.detail,
            }
            for p in self.access_paths
        ]


# ---------------------------------------------------------------------------
# Expression helpers
# ---------------------------------------------------------------------------
def _flatten_and(expr):
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _children(expr):
    if isinstance(expr, ast.BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, ast.UnaryOp):
        return [expr.operand]
    if isinstance(expr, ast.IsNull):
        return [expr.operand]
    if isinstance(expr, ast.InList):
        return [expr.operand, *expr.items]
    if isinstance(expr, ast.FuncCall):
        return [*expr.args, *(item.expr for item in expr.agg_order_by)]
    if isinstance(expr, ast.WindowFunc):
        return [*expr.partition_by, *(item.expr for item in expr.order_by)]
    if isinstance(expr, ast.ArraySlice):
        return [e for e in (expr.base, expr.low, expr.high) if e is not None]
    if isinstance(expr, ast.ArrayIndex):
        return [expr.base, expr.index]
    if isinstance(expr, ast.ArrayLiteral):
        return list(expr.items)
    if isinstance(expr, ast.CaseExpr):
        out = []
        for cond, result in expr.whens:
            out.extend((cond, result))
        if expr.default is not None:
            out.append(expr.default)
        return out
    return []


def _walk(expr):
    yield expr
    for child in _children(expr):
        yield from _walk(child)


def _contains_aggregate(expr) -> bool:
    if isinstance(expr, ast.FuncCall) and expr.name in AGGREGATE_FUNCTIONS:
        return True
    return any(_contains_aggregate(c) for c in _children(expr))


def _contains_srf(expr) -> bool:
    if isinstance(expr, ast.FuncCall) and expr.name in SET_RETURNING:
        return True
    return any(_contains_srf(c) for c in _children(expr))


def _output_name(item: ast.SelectItem) -> str:
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, (ast.FuncCall, ast.WindowFunc)):
        return expr.name
    return "?column?"


# Scalar-function signatures: (min arity, max arity or None, arg rule,
# result rule). Rules are small tags interpreted by ``_check_scalar``.
_SCALAR_SIGS = {
    "floor": (1, 1, "numeric", INT),
    "ceil": (1, 1, "numeric", INT),
    "ceiling": (1, 1, "numeric", INT),
    "abs": (1, 1, "numeric", "arg"),
    "sqrt": (1, 1, "numeric", FLOAT),
    "power": (2, 2, "numeric", UNKNOWN),
    "mod": (2, 2, "numeric", "arg"),
    "round": (1, 2, "numeric", "arg"),
    "coalesce": (1, None, "any", "unify"),
    "least": (1, None, "any", "unify"),
    "greatest": (1, None, "any", "unify"),
    "cardinality": (1, 1, "array", INT),
    "array_length": (1, 2, "array-first", INT),
    "lower": (1, 1, "text", TEXT),
    "upper": (1, 1, "text", TEXT),
    "length": (1, 1, "text", INT),
}


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------
class Analyzer:
    """One-shot static analysis of a parsed statement against a catalog."""

    def __init__(self, catalog, sql: str | None = None):
        self.catalog = catalog
        self.sql = sql
        self.sink = DiagnosticSink()
        self.paths: list[AccessPath] = []
        # When a relation failed to resolve, its scope fragment is unknown;
        # suppress unknown-column cascades while > 0.
        self._poison = 0

    # -- entry points ------------------------------------------------------
    def analyze(self, stmt) -> Analysis:
        output: list[tuple[str, object]] = []
        if isinstance(stmt, ast.Explain):
            return self.analyze(stmt.statement)
        if isinstance(stmt, ast.Query):
            output = self._query(stmt, {})
        elif isinstance(stmt, ast.CreateTable):
            self._create(stmt)
        elif isinstance(stmt, ast.DropTable):
            if not stmt.if_exists and not self.catalog.has(stmt.name):
                self._unknown_table(stmt.name, stmt)
        elif isinstance(stmt, ast.Insert):
            self._insert(stmt)
        elif isinstance(stmt, ast.Delete):
            self._dml(stmt.table, stmt, stmt.where)
        elif isinstance(stmt, ast.Update):
            self._update(stmt)
        elif isinstance(stmt, ast.Vacuum):
            if not self.catalog.has(stmt.table):
                self._unknown_table(stmt.table, stmt)
        return Analysis(
            sql=self.sql,
            diagnostics=self.sink.items,
            access_paths=self.paths,
            output=output,
        )

    # -- diagnostics helpers ----------------------------------------------
    def _unknown_table(self, name: str, node) -> None:
        self.sink.error("SEM001", f'relation "{name}" does not exist', node)

    # -- statements --------------------------------------------------------
    def _create(self, stmt: ast.CreateTable) -> None:
        if self.catalog.has(stmt.name) and not stmt.if_not_exists:
            self.sink.error(
                "SEM006", f'relation "{stmt.name}" already exists', stmt
            )
        names = []
        for col in stmt.columns:
            if col.name in names:
                self.sink.error(
                    "SEM006",
                    f'duplicate column "{col.name}" in table "{stmt.name}"',
                    col,
                )
            names.append(col.name)
            try:
                type_from_name(col.type_name)
            except Exception:
                self.sink.error(
                    "TYP002", f'unknown type name "{col.type_name}"', col
                )
        for pk_col in stmt.primary_key:
            if pk_col not in names:
                self.sink.error(
                    "SEM006",
                    f'primary key column "{pk_col}" is not a column of '
                    f'"{stmt.name}"',
                    stmt,
                )

    def _table_scope(self, name: str, node):
        """Scope fragment for a DML target table, or None if unknown."""
        if not self.catalog.has(name):
            self._unknown_table(name, node)
            return None
        schema = self.catalog.get(name).schema
        return [
            (name, col.name, type_of_tag(col.type_tag))
            for col in schema.columns
        ]

    def _dml(self, table: str, stmt, where) -> None:
        scope = self._table_scope(table, stmt)
        if scope is None:
            return
        if where is not None:
            for conj in _flatten_and(where):
                self._no_aggregates(conj, "WHERE")
                self._infer(conj, scope, allow_agg=True)

    def _update(self, stmt: ast.Update) -> None:
        scope = self._table_scope(stmt.table, stmt)
        if scope is None:
            return
        by_name = {name: ty for _, name, ty in scope}
        for column, value in stmt.assignments:
            if column not in by_name:
                self.sink.error(
                    "SEM002",
                    f'column "{column}" of relation "{stmt.table}" '
                    "does not exist",
                    stmt,
                )
                continue
            self._no_aggregates(value, "UPDATE SET")
            ty = self._infer(value, scope, allow_agg=True)
            if unify(ty, by_name[column]) is None:
                self.sink.error(
                    "TYP003",
                    f'cannot assign {type_name(ty)} to column "{column}" '
                    f"({type_name(by_name[column])})",
                    value,
                )
        self._dml(stmt.table, stmt, stmt.where)

    def _insert(self, stmt: ast.Insert) -> None:
        scope = self._table_scope(stmt.table, stmt)
        if scope is None:
            return
        by_name = {name: ty for _, name, ty in scope}
        if stmt.columns:
            targets = []
            for col in stmt.columns:
                if col not in by_name:
                    self.sink.error(
                        "SEM002",
                        f'column "{col}" of relation "{stmt.table}" '
                        "does not exist",
                        stmt,
                    )
                    targets.append(UNKNOWN)
                else:
                    targets.append(by_name[col])
        else:
            targets = [ty for _, _, ty in scope]
        if stmt.select is not None:
            output = self._query(stmt.select, {})
            if len(output) != len(targets):
                self.sink.error(
                    "SEM005",
                    f"INSERT expects {len(targets)} values, "
                    f"got {len(output)}",
                    stmt,
                )
            else:
                for (name, ty), want in zip(output, targets):
                    if unify(ty, want) is None:
                        self.sink.error(
                            "TYP003",
                            f'INSERT column "{name}" has type '
                            f"{type_name(ty)}, expected {type_name(want)}",
                            stmt,
                        )
            return
        for row in stmt.rows:
            if len(row) != len(targets):
                self.sink.error(
                    "SEM005",
                    f"INSERT expects {len(targets)} values, got {len(row)}",
                    row[0] if row else stmt,
                )
                continue
            for value, want in zip(row, targets):
                self._no_aggregates(value, "INSERT")
                ty = self._infer(value, [], allow_agg=True)  # constants only
                if unify(ty, want) is None:
                    self.sink.error(
                        "TYP003",
                        f"INSERT value has type {type_name(ty)}, "
                        f"expected {type_name(want)}",
                        value,
                    )

    # -- queries -----------------------------------------------------------
    def _query(self, query: ast.Query, env: dict) -> list[tuple[str, object]]:
        """Analyze a query; returns its output schema [(name, type), ...]."""
        env = dict(env)
        for name, cte_query in query.ctes:
            env[name] = self._query(cte_query, env)

        if len(query.cores) == 1 and isinstance(query.cores[0], ast.SelectCore):
            return self._core(query, query.cores[0], env)

        parts = []
        for core in query.cores:
            if isinstance(core, ast.Query):
                parts.append(self._query(core, env))
            else:
                parts.append(
                    self._core(ast.Query(cores=(core,)), core, env)
                )
        width = len(parts[0])
        merged = list(parts[0])
        for op, part in zip(query.set_ops, parts[1:]):
            if len(part) != width:
                self.sink.error(
                    "TYP004",
                    f"{op} operands have different column counts "
                    f"({width} vs {len(part)})",
                    query,
                )
                continue
            for i, ((name, a), (_, b)) in enumerate(zip(merged, part)):
                ty = unify(a, b)
                if ty is None:
                    self.sink.error(
                        "TYP005",
                        f'{op} column {i + 1} ("{name}") has incompatible '
                        f"types {type_name(a)} and {type_name(b)}",
                        query,
                    )
                    ty = UNKNOWN
                merged[i] = (name, ty)
        out_scope = [(None, name, ty) for name, ty in merged]
        for item in query.order_by:
            self._set_op_order_key(item, merged, out_scope)
        self._limit_offset(query)
        return merged

    def _set_op_order_key(self, item, output, out_scope) -> None:
        expr = item.expr
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            if not 1 <= expr.value <= len(output):
                self.sink.error(
                    "SEM005",
                    f"ORDER BY position {expr.value} is out of range "
                    f"(select list has {len(output)} items)",
                    expr,
                )
            return
        self._no_aggregates(expr, "ORDER BY")
        self._infer(expr, out_scope, allow_agg=True)

    def _limit_offset(self, query: ast.Query) -> None:
        for label, expr in (("LIMIT", query.limit), ("OFFSET", query.offset)):
            if expr is None:
                continue
            self._no_aggregates(expr, label)
            value, literal = expr, False
            if isinstance(value, ast.UnaryOp) and value.op == "-":
                # fold LIMIT -1 (parsed as a unary minus over a literal)
                if isinstance(value.operand, ast.Literal) and isinstance(
                    value.operand.value, (int, float)
                ):
                    value, literal = ast.Literal(-value.operand.value), True
            if isinstance(value, ast.Literal):
                value, literal = value.value, True
            if literal:
                bad = not isinstance(value, int) or isinstance(value, bool)
                if bad or value < 0:
                    self.sink.error(
                        "TYP006",
                        f"{label} must be a non-negative integer, "
                        f"got {value!r}",
                        expr,
                    )
                continue
            # Runtime evaluates LIMIT/OFFSET against an empty row, so any
            # column reference in it cannot resolve.
            self._infer(expr, [], allow_agg=True)

    # -- one SELECT core ---------------------------------------------------
    def _core(self, query, core: ast.SelectCore, env) -> list:
        conjuncts = _flatten_and(core.where)
        scope, poisoned = self._from(core.from_items, env)
        if poisoned:
            self._poison += 1
        try:
            return self._core_body(query, core, scope, conjuncts)
        finally:
            if poisoned:
                self._poison -= 1

    def _core_body(self, query, core, scope, conjuncts) -> list:
        for conj in conjuncts:
            self._no_aggregates(conj, "WHERE")
            self._no_srf(conj)
            self._infer(conj, scope, allow_agg=True, allow_srf=True)

        # Select list: expand stars, then handle SRF / window / plain items.
        items = self._expand_stars(core.items, scope)
        out: list[tuple[str, object]] = []
        plain_exprs = []  # (index, expr) type-checked below
        for item in items:
            name = _output_name(item)
            expr = item.expr
            if _contains_srf(expr):
                out.append(
                    (item.alias or "unnest", self._srf_item(expr, scope))
                )
                continue
            if isinstance(expr, ast.WindowFunc):
                out.append(
                    (item.alias or expr.name, self._window_item(expr, scope))
                )
                continue
            plain_exprs.append((len(out), item))
            out.append((name, UNKNOWN))

        grouped = bool(core.group_by) or any(
            _contains_aggregate(item.expr)
            for item in items
            if not isinstance(item.expr, ast.WindowFunc)
        )

        # GROUP BY keys (may name a select alias, like the executor).
        group_exprs = []
        for expr in core.group_by:
            self._no_aggregates(expr, "GROUP BY")
            self._no_srf(expr)
            target = expr
            if (
                isinstance(expr, ast.ColumnRef)
                and expr.table is None
                and not any(name == expr.name for _, name, _ in scope)
            ):
                for item in items:
                    if _output_name(item) == expr.name:
                        target = item.expr
                        break
            if target is not expr:
                # Alias resolved to a select item: the item itself must be
                # aggregate-free to serve as a group key.
                self._no_aggregates(target, "GROUP BY")
            self._infer(target, scope, allow_agg=True, allow_srf=True)
            group_exprs.append(target)
        if any(_contains_aggregate(g) for g in group_exprs):
            # The keys themselves are invalid (AGG001 above) — ungrouped-
            # column checks against them would only produce noise.
            group_exprs = None

        for out_idx, item in plain_exprs:
            ty = self._infer(item.expr, scope, allow_agg=grouped)
            out[out_idx] = (out[out_idx][0], ty)
            if grouped:
                self._check_grouped(item.expr, group_exprs, "select list")

        if core.having is not None:
            if not grouped:
                self.sink.warning(
                    "AGG004",
                    "HAVING without GROUP BY or aggregates is ignored "
                    "by the executor",
                    core.having,
                )
            self._no_srf(core.having)
            self._infer(core.having, scope, allow_agg=True, allow_srf=True)
            if grouped:
                self._check_grouped(core.having, group_exprs, "HAVING")

        if len(query.cores) == 1:
            for item in query.order_by:
                self._order_key(item, scope, items, out, grouped, group_exprs)
            self._limit_offset(query)
        return out

    def _order_key(self, item, scope, items, out, grouped, group_exprs):
        expr = item.expr
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            if not 1 <= expr.value <= len(out):
                self.sink.error(
                    "SEM005",
                    f"ORDER BY position {expr.value} is out of range "
                    f"(select list has {len(out)} items)",
                    expr,
                )
            return
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            if any(_output_name(it) == expr.name for it in items):
                return  # resolves to an output column
        self._no_srf(expr)
        self._infer(
            expr, scope, allow_agg=grouped, ctx="ORDER BY", allow_srf=True
        )
        if grouped:
            self._check_grouped(expr, group_exprs, "ORDER BY")

    # -- select-list special forms ----------------------------------------
    def _srf_item(self, expr, scope):
        """UNNEST select item: must be the whole expression, arg an array."""
        if not (isinstance(expr, ast.FuncCall) and expr.name in SET_RETURNING):
            self.sink.error(
                "SRF001",
                "UNNEST must be the whole select expression in minidb",
                expr,
            )
            # Still bind inner references for follow-on diagnostics.
            self._infer(expr, scope, allow_srf=True)
            return UNKNOWN
        if len(expr.args) != 1:
            self.sink.error("SRF001", "UNNEST takes exactly one argument", expr)
            for arg in expr.args:
                self._infer(arg, scope)
            return UNKNOWN
        arg_ty = self._infer(expr.args[0], scope)
        if not _maybe_array(arg_ty):
            self.sink.error(
                "TYP001",
                f"UNNEST expects an array, got {type_name(arg_ty)}",
                expr.args[0],
            )
            return UNKNOWN
        return arg_ty[1] if is_array(arg_ty) else UNKNOWN

    def _window_item(self, expr: ast.WindowFunc, scope):
        if expr.name != "row_number":
            self.sink.error(
                "WIN002", f"unsupported window function {expr.name!r}", expr
            )
        for part in expr.partition_by:
            self._no_aggregates(part, "OVER (PARTITION BY)")
            self._infer(part, scope, allow_agg=True)
        for item in expr.order_by:
            self._no_aggregates(item.expr, "OVER (ORDER BY)")
            self._infer(item.expr, scope, allow_agg=True)
        return INT

    def _expand_stars(self, items, scope):
        out = []
        for item in items:
            if not isinstance(item.expr, ast.Star):
                out.append(item)
                continue
            table = item.expr.table
            matched = False
            for qual, name, _ in scope:
                if table is None or qual == table:
                    col = ast.ColumnRef(qual, name)
                    if item.expr.span is not None:
                        object.__setattr__(col, "span", item.expr.span)
                    out.append(ast.SelectItem(col, alias=name))
                    matched = True
            if not matched and not self._poison:
                self.sink.error(
                    "SEM002", f"no columns match {table or ''}.*", item.expr
                )
        return out

    # -- aggregate / SRF placement ----------------------------------------
    def _no_aggregates(self, expr, where: str) -> None:
        for node in _walk(expr):
            if (
                isinstance(node, ast.FuncCall)
                and node.name in AGGREGATE_FUNCTIONS
            ):
                self.sink.error(
                    "AGG001",
                    f"aggregate {node.name}() is not allowed in {where}",
                    node,
                )
                return

    def _no_srf(self, expr) -> None:
        for node in _walk(expr):
            if isinstance(node, ast.FuncCall) and node.name in SET_RETURNING:
                self.sink.error(
                    "SRF001",
                    "UNNEST is only allowed as a top-level select item",
                    node,
                )
                return

    def _check_grouped(self, expr, group_exprs, where: str) -> None:
        """AGG003: in a grouped query, bare columns must be group keys."""
        if group_exprs is None:  # keys invalid; cascade suppressed
            return
        if any(expr == g for g in group_exprs):
            return
        if isinstance(expr, (ast.Literal, ast.Param)):
            return
        if isinstance(expr, ast.FuncCall) and expr.name in AGGREGATE_FUNCTIONS:
            return
        if isinstance(expr, ast.WindowFunc):
            return  # windows are computed before grouping
        if isinstance(expr, ast.ColumnRef):
            self.sink.error(
                "AGG003",
                f'column "{expr.name}" must appear in GROUP BY or be used '
                f"in an aggregate function ({where})",
                expr,
            )
            return
        for child in _children(expr):
            self._check_grouped(child, group_exprs, where)

    # -- expression typing (pass 2) ----------------------------------------
    def _infer(
        self,
        expr,
        scope,
        allow_agg: bool = False,
        ctx: str = "expression",
        in_agg: bool = False,
        allow_srf: bool = False,
    ):
        recur = lambda e, **kw: self._infer(  # noqa: E731
            e,
            scope,
            allow_agg=allow_agg,
            ctx=ctx,
            in_agg=in_agg,
            allow_srf=allow_srf,
            **kw,
        )
        if isinstance(expr, ast.Literal):
            value = expr.value
            if value is None:
                return NULL
            if isinstance(value, bool):
                return BOOL
            if isinstance(value, int):
                return INT
            if isinstance(value, float):
                return FLOAT
            return TEXT
        if isinstance(expr, ast.Param):
            return UNKNOWN
        if isinstance(expr, ast.ColumnRef):
            return self._resolve(expr, scope)
        if isinstance(expr, ast.BinaryOp):
            left = recur(expr.left)
            right = recur(expr.right)
            return self._binary(expr, left, right)
        if isinstance(expr, ast.UnaryOp):
            ty = recur(expr.operand)
            if expr.op == "-":
                if not _maybe_numeric(ty):
                    self.sink.error(
                        "TYP003",
                        f"cannot negate {type_name(ty)}",
                        expr,
                    )
                return ty if ty in (INT, FLOAT) else UNKNOWN
            return BOOL  # NOT
        if isinstance(expr, ast.IsNull):
            recur(expr.operand)
            return BOOL
        if isinstance(expr, ast.InList):
            operand = recur(expr.operand)
            for it in expr.items:
                ty = recur(it)
                if not _comparable(operand, ty):
                    self.sink.error(
                        "TYP003",
                        f"IN list item of type {type_name(ty)} is not "
                        f"comparable with {type_name(operand)}",
                        it,
                    )
            return BOOL
        if isinstance(expr, ast.FuncCall):
            return self._func(expr, scope, allow_agg, ctx, in_agg, allow_srf)
        if isinstance(expr, ast.WindowFunc):
            self.sink.error(
                "WIN001",
                "window functions are only allowed as top-level select items",
                expr,
            )
            return INT
        if isinstance(expr, ast.ArraySlice):
            base = recur(expr.base)
            if not _maybe_array(base):
                self.sink.error(
                    "TYP001",
                    f"cannot slice value of type {type_name(base)} "
                    "(array expected)",
                    expr,
                )
                base = UNKNOWN
            for bound in (expr.low, expr.high):
                if bound is None:
                    continue
                ty = recur(bound)
                if ty not in (INT, NULL, UNKNOWN):
                    self.sink.error(
                        "TYP003",
                        f"array slice bound must be an integer, "
                        f"got {type_name(ty)}",
                        bound,
                    )
            return base if is_array(base) else UNKNOWN
        if isinstance(expr, ast.ArrayIndex):
            base = recur(expr.base)
            idx = recur(expr.index)
            if not _maybe_array(base):
                self.sink.error(
                    "TYP001",
                    f"cannot subscript value of type {type_name(base)} "
                    "(array expected)",
                    expr,
                )
                return UNKNOWN
            if idx not in (INT, NULL, UNKNOWN):
                self.sink.error(
                    "TYP003",
                    f"array subscript must be an integer, got {type_name(idx)}",
                    expr.index,
                )
            return base[1] if is_array(base) else UNKNOWN
        if isinstance(expr, ast.ArrayLiteral):
            elem = NULL
            for it in expr.items:
                ty = recur(it)
                merged = unify(elem, ty)
                if merged is None:
                    self.sink.error(
                        "TYP003",
                        f"mixed element types in ARRAY[...]: "
                        f"{type_name(elem)} and {type_name(ty)}",
                        it,
                    )
                    merged = UNKNOWN
                elem = merged
            return ("array", elem)
        if isinstance(expr, ast.CaseExpr):
            result = NULL
            for cond, branch in expr.whens:
                recur(cond)
                ty = recur(branch)
                merged = unify(result, ty)
                result = merged if merged is not None else UNKNOWN
            if expr.default is not None:
                ty = recur(expr.default)
                merged = unify(result, ty)
                result = merged if merged is not None else UNKNOWN
            return result
        if isinstance(expr, ast.Star):
            self.sink.error(
                "SEM005", "* is only allowed in the select list", expr
            )
            return UNKNOWN
        return UNKNOWN

    def _binary(self, expr: ast.BinaryOp, left, right):
        op = expr.op
        if op in ("AND", "OR"):
            for side, ty in ((expr.left, left), (expr.right, right)):
                if is_array(ty) or ty == TEXT:
                    self.sink.error(
                        "TYP003",
                        f"argument of {op} must be boolean, "
                        f"got {type_name(ty)}",
                        side,
                    )
            return BOOL
        if op in ("=", "<>", "<", "<=", ">", ">="):
            if not _comparable(left, right):
                self.sink.error(
                    "TYP003",
                    f"cannot compare {type_name(left)} with "
                    f"{type_name(right)} using {op}",
                    expr,
                )
            return BOOL
        if op == "||":
            if is_array(left) or is_array(right):
                arr = left if is_array(left) else right
                return arr
            return TEXT
        # + - * / %
        for side, ty in ((expr.left, left), (expr.right, right)):
            if not _maybe_numeric(ty):
                self.sink.error(
                    "TYP003",
                    f"operator {op} expects numeric operands, "
                    f"got {type_name(ty)}",
                    side,
                )
                return UNKNOWN
        if left == FLOAT or right == FLOAT:
            return FLOAT
        if left == INT and right == INT:
            return INT
        return UNKNOWN

    def _func(self, expr, scope, allow_agg, ctx, in_agg, allow_srf):
        name = expr.name
        if name in SET_RETURNING:
            if not allow_srf:
                self.sink.error(
                    "SRF001",
                    "UNNEST is only allowed as a top-level select item",
                    expr,
                )
            for arg in expr.args:
                self._infer(arg, scope)
            return UNKNOWN
        if name in AGGREGATE_FUNCTIONS:
            return self._aggregate(expr, scope, allow_agg, ctx, in_agg)
        if name not in SCALAR_FUNCTIONS:
            self.sink.error("SEM004", f"unknown function {name!r}", expr)
            for arg in expr.args:
                self._infer(arg, scope, allow_agg=allow_agg, in_agg=in_agg)
            return UNKNOWN
        arg_types = [
            self._infer(arg, scope, allow_agg=allow_agg, ctx=ctx, in_agg=in_agg)
            for arg in expr.args
        ]
        return self._check_scalar(expr, arg_types)

    def _check_scalar(self, expr, arg_types):
        lo, hi, arg_rule, result = _SCALAR_SIGS[expr.name]
        n = len(arg_types)
        if n < lo or (hi is not None and n > hi):
            want = str(lo) if hi == lo else f"{lo}..{hi or 'n'}"
            self.sink.error(
                "TYP002",
                f"{expr.name}() takes {want} argument(s), got {n}",
                expr,
            )
            return UNKNOWN
        check = arg_types if arg_rule != "array-first" else arg_types[:1]
        for i, ty in enumerate(check):
            if arg_rule == "numeric" and not _maybe_numeric(ty):
                self.sink.error(
                    "TYP002",
                    f"{expr.name}() expects numeric arguments, "
                    f"got {type_name(ty)}",
                    expr.args[i] if i < len(expr.args) else expr,
                )
            elif arg_rule in ("array", "array-first") and not _maybe_array(ty):
                self.sink.error(
                    "TYP002",
                    f"{expr.name}() expects an array, got {type_name(ty)}",
                    expr.args[i] if i < len(expr.args) else expr,
                )
            elif arg_rule == "text" and ty not in (TEXT, NULL, UNKNOWN):
                self.sink.error(
                    "TYP002",
                    f"{expr.name}() expects text, got {type_name(ty)}",
                    expr.args[i] if i < len(expr.args) else expr,
                )
        if result == "arg":
            return arg_types[0] if arg_types else UNKNOWN
        if result == "unify":
            out = NULL
            for ty in arg_types:
                merged = unify(out, ty)
                out = merged if merged is not None else UNKNOWN
            return out
        return result

    def _aggregate(self, expr, scope, allow_agg, ctx, in_agg):
        if in_agg:
            self.sink.error(
                "AGG002",
                f"aggregate {expr.name}() cannot be nested inside "
                "another aggregate",
                expr,
            )
        elif not allow_agg:
            self.sink.error(
                "AGG001",
                f"aggregate {expr.name}() used outside of aggregation "
                "context",
                expr,
            )
        if expr.star:
            if expr.name != "count":
                self.sink.error(
                    "SEM005", f"{expr.name}(*) is not valid", expr
                )
            return INT
        if len(expr.args) != 1:
            self.sink.error(
                "SEM005",
                f"{expr.name}() takes exactly one argument",
                expr,
            )
            for arg in expr.args:
                self._infer(arg, scope, in_agg=True)
            return UNKNOWN
        arg_ty = self._infer(expr.args[0], scope, in_agg=True)
        for item in expr.agg_order_by:
            self._infer(item.expr, scope, in_agg=True)
        name = expr.name
        if name in ("sum", "avg"):
            if not _maybe_numeric(arg_ty):
                self.sink.error(
                    "TYP002",
                    f"{name}() expects numeric input, got {type_name(arg_ty)}",
                    expr.args[0],
                )
            return FLOAT if name == "avg" else arg_ty
        if name == "count":
            return INT
        if name == "array_agg":
            return ("array", arg_ty if arg_ty != NULL else UNKNOWN)
        if name in ("bool_and", "bool_or"):
            if arg_ty not in (BOOL, NULL, UNKNOWN):
                self.sink.error(
                    "TYP002",
                    f"{name}() expects boolean input, got {type_name(arg_ty)}",
                    expr.args[0],
                )
            return BOOL
        return arg_ty  # min / max keep the input type (arrays included)

    # -- name resolution (pass 1) -----------------------------------------
    def _resolve(self, ref: ast.ColumnRef, scope):
        matches = [
            ty
            for qual, name, ty in scope
            if name == ref.name and (ref.table is None or qual == ref.table)
        ]
        if not matches:
            if not self._poison:
                label = f"{ref.table}.{ref.name}" if ref.table else ref.name
                self.sink.error(
                    "SEM002", f'column "{label}" does not exist', ref
                )
            return UNKNOWN
        if len(matches) > 1:
            self.sink.error(
                "SEM003", f"ambiguous column reference {ref.name!r}", ref
            )
            return UNKNOWN
        return matches[0]

    # -- FROM clause (scope building) --------------------------------------
    def _from(self, from_items, env):
        """Build the core's name scope in syntactic source order.

        Access-path classification no longer happens here: the module-level
        :func:`analyze` runs the real planner and reads the paths off the
        plan tree. Returns (scope, poisoned).
        """
        if not from_items:
            return [], False
        sources = []
        for item in from_items:
            self._flatten_joins(item, sources)
        scope: list = []
        poisoned = False
        for item, on_conjuncts in sources:
            frag, bad = self._load(item, env)
            poisoned = poisoned or bad
            scope = scope + frag
            self._bind_on(scope, on_conjuncts)
        return scope, poisoned

    def _flatten_joins(self, item, out, on_conjuncts=None):
        if isinstance(item, ast.Join):
            self._flatten_joins(item.left, out)
            self._flatten_joins(item.right, out, _flatten_and(item.condition))
            return
        out.append((item, on_conjuncts or []))

    def _load(self, item, env):
        """Typed scope fragment for one relation. Returns (frag, poisoned)."""
        if isinstance(item, ast.SubqueryRef):
            output = self._query(item.query, env)
            return [(item.alias, name, ty) for name, ty in output], False
        alias = item.alias or item.name
        if item.name in env:
            return [(alias, name, ty) for name, ty in env[item.name]], False
        if not self.catalog.has(item.name):
            self._unknown_table(item.name, item)
            return [], True
        table = self.catalog.get(item.name)
        frag = [
            (alias, col.name, type_of_tag(col.type_tag))
            for col in table.schema.columns
        ]
        return frag, False

    def _bind_on(self, scope, on_conjuncts) -> None:
        for conj in on_conjuncts:
            self._no_aggregates(conj, "JOIN ON")
            self._infer(conj, scope, allow_agg=True)


# ---------------------------------------------------------------------------
# Plan-derived access paths
# ---------------------------------------------------------------------------
def _paths_from_plan(plan) -> list[AccessPath]:
    """Read access paths off a physical plan tree, in plan order (CTEs in
    definition order first, then join-tree load order)."""
    from repro.minidb.sql import plan as phys

    paths: list[AccessPath] = []

    def visit_query(qp) -> None:
        for _name, sub in qp.ctes:
            visit_query(sub)
        visit(qp.root)

    def visit(node) -> None:
        if isinstance(node, phys.QueryPlan):
            visit_query(node)
            return
        if isinstance(node, phys.ExplainPlan):
            visit(node.inner.statement)
            return
        if isinstance(node, phys.SubqueryScan):
            visit_query(node.subplan)
            paths.append(
                AccessPath(
                    node.alias, node.alias, SUBQUERY,
                    span=Span.of(node.ast_ref),
                )
            )
            return
        if isinstance(node, phys.CteScan):
            paths.append(
                AccessPath(
                    node.cte_name, node.alias, CTE_SCAN,
                    span=Span.of(node.ast_ref),
                )
            )
            return
        if isinstance(node, phys.PkLookup):
            paths.append(
                AccessPath(
                    node.table,
                    node.alias,
                    PK_POINT,
                    f"pk ({', '.join(node.pk)}) pinned constant",
                    Span.of(node.ast_ref),
                )
            )
            return
        if isinstance(node, phys.SeqScan):
            paths.append(
                AccessPath(
                    node.table, node.alias, SEQ_SCAN, "",
                    span=Span.of(node.ast_ref),
                )
            )
            return
        if isinstance(node, phys.IndexNestedLoop):
            visit(node.left)
            paths.append(
                AccessPath(
                    node.table,
                    node.alias,
                    PK_PROBE,
                    f"probed by ({', '.join(node.pk)}) per outer row",
                    Span.of(node.ast_ref),
                )
            )
            return
        if isinstance(node, (phys.DeletePlan, phys.UpdatePlan)):
            # DELETE / UPDATE always scan the heap (Executor._matching_rows).
            paths.append(
                AccessPath(
                    node.table, node.table, SEQ_SCAN, "(DML scan)",
                    Span.of(node.ast_ref),
                )
            )
            return
        if isinstance(node, phys.InsertPlan):
            if node.select is not None:
                visit_query(node.select)
            return
        for child in node.children():
            visit(child)

    visit(plan.statement)
    return paths


def _flag_label_scans(analysis: Analysis, paths) -> None:
    """APL001: a full scan on a label table breaks the paper's bounds."""
    from repro.minidb.sql.diagnostics import WARNING

    for path in paths:
        if (
            path.kind == SEQ_SCAN
            and path.detail != "(DML scan)"
            and is_label_table(path.table)
        ):
            analysis.diagnostics.append(
                Diagnostic(
                    "APL001",
                    WARNING,
                    f'full scan on label table "{path.table}" — the paper '
                    "requires PK access on label data",
                    path.span,
                    hint="pin every primary-key column with an equality "
                    "predicate, or join through an already-restricted "
                    "relation",
                )
            )


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------
def analyze(stmt, catalog, sql: str | None = None) -> Analysis:
    """Statically analyze a parsed statement against *catalog*.

    When semantic analysis succeeds, the statement is also lowered by the
    real planner and the physical plan is attached as ``analysis.plan``;
    access paths are read off that plan, so the static classification is
    the executed plan by construction.
    """
    from repro.errors import SQLError
    from repro.minidb.catalog import CatalogError
    from repro.minidb.sql.planner import plan_statement

    analysis = Analyzer(catalog, sql=sql).analyze(stmt)
    if analysis.ok:
        try:
            plan = plan_statement(stmt, catalog)
        except (SQLError, CatalogError):
            plan = None
        if plan is not None:
            analysis.plan = plan
            paths = _paths_from_plan(plan)
            analysis.access_paths.extend(paths)
            _flag_label_scans(analysis, paths)
    return analysis


def analyze_sql(sql: str, catalog) -> Analysis:
    """Parse and analyze *sql* (convenience for the linter and tests)."""
    from repro.minidb.sql.parser import parse

    return analyze(parse(sql), catalog, sql=sql)


# ---------------------------------------------------------------------------
# Paper-bound checks (PTLDB, Efentakis EDBT 2016)
# ---------------------------------------------------------------------------
def check_paper_bounds(analysis: Analysis, family: str) -> list[Diagnostic]:
    """Check the paper's access-pattern guarantees for one query family.

    * ``v2v_*`` (Code 1): the query must touch the label tables ``lout`` and
      ``lin`` exactly once each, both as PK point lookups — the "exactly two
      label rows" bound. Violations get ``APL002``.
    * ``knn_*`` / ``otm_*`` optimized (Codes 3-4): ``lout`` must be a point
      lookup and every non-naive auxiliary table must be reached through its
      primary key (point or per-row probe) — the "at most |hubs(q)| aux
      rows" bound. Violations get ``APL003``.
    * naive families (Code 2) scan their tables by design: no check.
    * ``analytics`` (``repro.ptldb.analytics``): the inverse shape. These
      queries aggregate whole base tables, so their documented (and
      expected) access is a full **sequential scan** of ``connections`` /
      ``trips`` — a PK access would mean the planner silently turned the
      scan-proving workload into a point query — and label tables must not
      appear at all. Violations get ``APL004``.

    Returns the appended diagnostics (also added to ``analysis``).
    """
    out: list[Diagnostic] = []

    def _fail(code: str, message: str) -> None:
        diag = Diagnostic(code, ERROR, message)
        analysis.diagnostics.append(diag)
        out.append(diag)

    label_paths = [
        p
        for p in analysis.access_paths
        if is_label_table(p.table)
    ]
    if family.startswith("v2v"):
        points = [p for p in label_paths if p.kind == PK_POINT]
        offending = [p for p in label_paths if p.kind not in (PK_POINT,)]
        tables = sorted(p.table for p in points)
        if offending or tables != ["lin", "lout"]:
            got = ", ".join(p.describe() for p in label_paths) or "none"
            _fail(
                "APL002",
                f"v2v query must touch exactly two label rows via PK point "
                f"lookups (one on lout, one on lin); got: {got}",
            )
    elif "naive" not in family and (
        family.startswith("knn") or family.startswith("otm")
    ):
        lout = [p for p in label_paths if p.table in ("lout", "lin")]
        if not all(p.kind == PK_POINT for p in lout) or not lout:
            got = ", ".join(p.describe() for p in lout) or "none"
            _fail(
                "APL003",
                f"optimized {family} query must reach the label table via a "
                f"PK point lookup; got: {got}",
            )
        aux = [p for p in label_paths if p.table.startswith(("knn_", "otm_"))]
        bad = [p for p in aux if p.kind not in (PK_POINT, PK_PROBE)]
        if bad or not aux:
            got = ", ".join(p.describe() for p in aux) or "none"
            _fail(
                "APL003",
                f"optimized {family} query must probe its auxiliary table "
                f"by primary key; got: {got}",
            )
    elif family.startswith("analytics"):
        if label_paths:
            got = ", ".join(p.describe() for p in label_paths)
            _fail(
                "APL004",
                f"analytics query must not touch label tables; got: {got}",
            )
        base = [
            p
            for p in analysis.access_paths
            if p.table in ("connections", "trips")
        ]
        bad = [p for p in base if p.kind != SEQ_SCAN]
        if bad or not base:
            got = ", ".join(p.describe() for p in base) or "none"
            _fail(
                "APL004",
                f"analytics query must read its base tables via full "
                f"sequential scans (the scan-shaped access this family "
                f"documents and the parallel executor splits); got: {got}",
            )
    return out
