"""Batch-at-a-time (vectorized) interpreter for physical plans.

The row executor (:mod:`repro.minidb.sql.executor`) pays one Python
generator round trip — plus two counter snapshots and two clock reads when
tracing — per tuple per operator. For the paper's CPU-bound families
(kNN/OTM on SSD, Figures 7-8) that interpreter overhead dominates, exactly
the effect MonetDB/X100 vectorization removes. This executor interprets the
*same* physical plans but moves **batches** (lists of up to ``batch_size``
row tuples) between operators, so per-pull bookkeeping amortizes over the
whole batch and hot inner loops run as list comprehensions.

On top of plain batching, four fused kernels cover the paper's hot
patterns (the planner marks the plans; see ``plan.py``):

* **hub intersection** — ``Aggregate`` over ``HashJoin`` (the
  ``UNNEST(lhubs) ⋈ UNNEST(rhubs)`` v2v core) probes the hash table and
  folds joined rows straight into streaming MIN/MAX/... accumulators,
  never materializing the join output;
* **array expansion** — ``Project`` over ``Unnest`` (the ``a[1:k]`` slice +
  ``FLOOR`` projection of Codes 2-4) evaluates non-SRF items once per
  *input* row and emits array elements column-wise;
* **filter + project** — a single pass per batch;
* **batched Top-K / aggregate accumulation** — bounded-heap and
  accumulator updates per batch instead of per pulled row.

Fusion never crosses an I/O-performing operator, so per-operator I/O
attribution (and the analyzer's access-path proof) is unchanged: fused
interior operators still appear in the trace with their row counts, but
with zero self cost (their kernel time lands on the fusing parent). Plans
containing operators without a batch implementation (``plan.batchable`` is
False — e.g. window functions) run on the row executor; results are
identical either way, which ``tests/minidb/test_vectorized.py`` asserts
over the whole PTLDB corpus.

**Morsel-driven parallelism** (docs/ARCHITECTURE.md, "Parallel
execution"): when the database is opened with ``parallel_workers=N > 1``,
plan subtrees the planner marked as :class:`~repro.minidb.sql.plan.
ParallelRegion` are executed by a pool of worker threads instead of
inline. The coordinator splits the region's driving scan into page-range
(heap) or row-range (CTE) *morsels*, workers pull morsel indices from a
shared queue and run the ordinary emitters above — same kernels, same
chunks — over their slice, and the coordinator gathers: row regions
concatenate per-morsel chunk lists in morsel order (exactly the serial
row stream), aggregate regions merge per-morsel partial states. Results
are row-for-row identical to serial execution, page reads/misses are
identical (morsels partition the chain; per-thread sequential-run
accounting keeps each worker's readahead priced as its own stream), and
worker I/O is attributed to the worker threads' private counters then
folded into the statement's cost and trace by the session. Non-batchable
plans, LIMIT-bounded subtrees and scans too small to split all fall back
to serial execution automatically.
"""

from __future__ import annotations

import heapq
import time

from repro.errors import SQLError, SQLTypeError
from repro.minidb.sql import npbatch
from repro.minidb.sql import plan as phys
from repro.minidb.sql.executor import _DONE, Executor, Result
from repro.minidb.sql.npbatch import ColumnChunk
from repro.minidb.sql.planner import _hashable, _sort_rows, composite_key

#: Default rows-per-batch; overridable per database (``Database(batch_size=...)``).
DEFAULT_BATCH_SIZE = 1024

#: Morselization floors: scans below these stay serial — the fan-out fixed
#: cost (per-worker executor, per-morsel generator chain) would exceed the
#: work being split. Above the floor, each region is cut into about
#: ``workers * MORSELS_PER_WORKER`` morsels so the shared queue can balance
#: skew (zone-map skips, selective filters) across workers.
MIN_PARALLEL_PAGES = 4
MIN_PARALLEL_ROWS = 256
MORSELS_PER_WORKER = 4
#: A page morsel never shrinks below one full readahead run: every morsel
#: boundary restarts the device's sequential run (one random read), so
#: tiny morsels turn a cheap sequential scan into a seek storm — on the
#: HDD model a single seek costs ~250 sequential page transfers.
MIN_MORSEL_PAGES = 8


def _traced_batches(stats, gen, collector):
    """Per-*batch* accounting: one time/counter window per pull.

    The row executor pays this bookkeeping per tuple; here it is amortized
    over up to ``batch_size`` rows, which is where much of the vectorized
    speedup comes from. ``stats.pulls`` counts batches so traces expose
    rows-per-pull; attribution semantics (inclusive of children, exact I/O
    deltas) are identical to the row path.
    """
    pool_stats = collector.pool_stats
    disk_stats = collector.disk_stats
    try:
        while True:
            pool_before = (
                pool_stats.snapshot() if pool_stats is not None else None
            )
            disk_before = (
                disk_stats.snapshot() if disk_stats is not None else None
            )
            started = time.perf_counter()
            try:
                chunk = next(gen, _DONE)
            finally:
                stats.time_ms += (time.perf_counter() - started) * 1000.0
                if pool_before is not None:
                    delta = pool_stats.delta(pool_before)
                    stats.pool_hits += delta.hits
                    stats.pool_misses += delta.misses
                if disk_before is not None:
                    delta = disk_stats.delta(disk_before)
                    stats.page_reads += delta.reads
                    stats.io_ms += delta.simulated_read_ms
            if chunk is _DONE:
                return
            stats.pulls += 1
            stats.rows += len(chunk)
            yield chunk
    finally:
        gen.close()


def _sync_fused(stats):
    """Make a fused operator's inclusive figures consistent.

    A fused operator does its work inside the fusing parent's kernel, so
    its own windows never run; without this its inclusive counters would
    read zero while its (separately traced) children report I/O — negative
    "self" figures. Copying the children's sums makes the node an exact
    pass-through: zero self cost, invariants intact.
    """
    if stats is None:
        return
    stats.time_ms = sum(c.time_ms for c in stats.children)
    stats.pool_hits = sum(c.pool_hits for c in stats.children)
    stats.pool_misses = sum(c.pool_misses for c in stats.children)
    stats.page_reads = sum(c.page_reads for c in stats.children)
    stats.io_ms = sum(c.io_ms for c in stats.children)


def _predicate(filters):
    """Collapse a predicate list into one callable (or ``None`` if empty).

    The row executor evaluates ``all(p(row, params) is True ...)`` per row;
    semantics here are identical, but the single-predicate case — by far
    the most common in the paper corpus — skips the generator-expression
    machinery, which is measurable at batch row rates.
    """
    if not filters:
        return None
    if len(filters) == 1:
        single = filters[0]

        def check(row, params):
            return single(row, params) is True

        return check
    filters = tuple(filters)

    def check(row, params):
        for p in filters:
            if p(row, params) is not True:
                return False
        return True

    return check


def _make_step(name):
    """Streaming accumulator for one aggregate, replicating the exact NULL
    and tie semantics of the list-based :mod:`functions` aggregates
    (``None`` accumulator = no non-NULL value seen yet; SUM/AVG start from
    ``0 + v`` so float results match ``sum(list)`` bit for bit)."""
    if name == "min":
        def step(acc, v):
            if v is None:
                return acc
            if acc is None:
                return v
            return v if v < acc else acc
    elif name == "max":
        def step(acc, v):
            if v is None:
                return acc
            if acc is None:
                return v
            return v if acc < v else acc
    elif name == "sum":
        def step(acc, v):
            if v is None:
                return acc
            if acc is None:
                return 0 + v
            return acc + v
    elif name == "count":
        def step(acc, v):
            return acc if v is None else acc + 1
    elif name == "avg":
        def step(acc, v):
            if v is None:
                return acc
            if acc is None:
                return (0 + v, 1)
            return (acc[0] + v, acc[1] + 1)
    else:  # pragma: no cover - planner only emits the five above
        raise SQLError(f"no streaming accumulator for {name!r}")
    return step


def _merge_agg_states(spec, into, other):
    """Fold one morsel's per-group aggregate state into the running state.

    Partials are merged in morsel order — morsels partition the input in
    row order — so keeping ``into``'s first-row sample reproduces the
    serial "first row of the group" exactly. Every accumulator merge is
    the associative completion of its :func:`_make_step`: counts add,
    MIN/MAX take the NULL-aware extreme, SUM adds (``None`` = no non-NULL
    value seen yet), AVG adds its ``(sum, count)`` pair.
    """
    accs = into[1]
    oaccs = other[1]
    for slot, entry in enumerate(spec):
        kind = entry[0]
        if kind == "first":
            continue
        a = accs[slot]
        b = oaccs[slot]
        if kind == "count*":
            accs[slot] = a + b
            continue
        name = entry[1]
        if name == "count":
            accs[slot] = a + b
        elif b is None:
            continue
        elif a is None:
            accs[slot] = b
        elif name == "min":
            accs[slot] = b if b < a else a
        elif name == "max":
            accs[slot] = b if a < b else a
        elif name == "sum":
            accs[slot] = a + b
        else:  # avg: (sum, count)
            accs[slot] = (a[0] + b[0], a[1] + b[1])


def _merge_value_rows(spec, cur, new):
    """Merge two already-finalized partial rows for the same group key.

    Only reachable for np-eligible aggregates (``group_item_pos`` set),
    whose specs contain nothing but ``first``/``count*``/COUNT/MIN/MAX —
    all exactly re-aggregatable from finalized values. ``first`` keeps
    ``cur``'s value: partials merge in morsel order, so ``cur`` saw the
    group's first row.
    """
    out = list(cur)
    for slot, entry in enumerate(spec):
        kind = entry[0]
        if kind == "first":
            continue
        b = new[slot]
        if kind == "count*":
            out[slot] = out[slot] + b
            continue
        name = entry[1]
        a = out[slot]
        if name == "count":
            out[slot] = a + b
        elif b is None:
            continue
        elif a is None:
            out[slot] = b
        elif name == "min":
            out[slot] = b if b < a else a
        elif name == "max":
            out[slot] = b if a < b else a
        else:  # pragma: no cover - np specs never lower SUM/AVG
            raise SQLError(f"cannot value-merge aggregate {name!r}")
    return tuple(out)


class BatchExecutor:
    """Interprets physical plans in batch mode.

    Drop-in alternative to :class:`Executor` for SELECT statements whose
    plan is ``batchable``; everything else (DML, utility, EXPLAIN) is
    delegated to the row executor unchanged.
    """

    def __init__(
        self,
        catalog,
        params: tuple = (),
        collector=None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        readahead: int = 0,
        numpy_batches: bool = True,
        parallel_workers: int = 1,
        worker_pool=None,
    ):
        self.catalog = catalog
        self.params = tuple(params)
        self.collector = collector
        self.batch_size = max(1, int(batch_size))
        self.readahead = max(0, int(readahead))
        #: When on (and numpy imports), eligible producers emit
        #: :class:`~repro.minidb.sql.npbatch.ColumnChunk` batches and the
        #: fused kernels run as whole-column array ops. Off = the plain
        #: list-of-tuples batch pipeline, kept as the comparison baseline.
        self.use_numpy = bool(numpy_batches) and npbatch.NUMPY_AVAILABLE
        #: Morsel parallelism: fan annotated regions out over ``worker_pool``
        #: (a ``concurrent.futures`` executor owned by the Database) when
        #: both are set. Worker-side executors keep the defaults (no pool),
        #: so regions can never nest.
        self.parallel_workers = max(1, int(parallel_workers))
        self.worker_pool = worker_pool if self.parallel_workers > 1 else None
        #: Accumulated worker-side accounting across this statement's
        #: gathers (``None`` until the first gather actually fans out). The
        #: session folds the I/O fields into the statement cost/trace and
        #: derives the simulated-clock makespan from the busy times.
        self.parallel_stats = None
        #: Morsel restriction for worker executors: the region leaf node and
        #: the ``(lo, hi)`` slice its scan is limited to while one morsel runs.
        self._morsel_leaf = None
        self._morsel = None
        self._agg_machines: dict = {}
        #: Per-statement INL probe memo, keyed by plan-node id: repeated
        #: probe keys hit the memo instead of the index. Gathers hand every
        #: worker the same dict so a key probed for one morsel is never
        #: re-probed for another — lookups are deterministic, so concurrent
        #: writers can only store identical values and the dict ops are
        #: atomic under the GIL.
        self._inl_caches: dict = {}

    # -- public entry point ---------------------------------------------
    def run(self, plan: phys.Plan) -> Result:
        node = plan.statement
        if isinstance(node, phys.ExplainPlan):
            return self._run_explain(node)
        if not isinstance(node, phys.QueryPlan):
            return Executor(
                self.catalog, self.params, collector=self.collector
            ).run(plan)
        for index in plan.param_indices:
            if not 1 <= index <= len(self.params):
                raise SQLError(
                    f"parameter ${index} not supplied "
                    f"({len(self.params)} parameters given)"
                )
        rows: list[tuple] = []
        for chunk in self._emit_query(node, {}, None, None):
            rows.extend(chunk)
        return Result(list(node.columns), rows)

    def _run_explain(self, node: phys.ExplainPlan) -> Result:
        """EXPLAIN ANALYZE of a batchable statement runs on this engine,
        so the rendered trace shows the batch clauses the real execution
        would produce (plain EXPLAIN renders statically, no execution)."""
        from repro.minidb.metrics import TraceCollector, render_plan

        if not node.analyze:
            lines = phys.explain_lines(node.inner)
            return Result(["plan"], [(line,) for line in lines])
        collector = TraceCollector(getattr(self.catalog, "pool", None))
        inner = BatchExecutor(
            self.catalog,
            self.params,
            collector=collector,
            batch_size=self.batch_size,
            readahead=self.readahead,
            numpy_batches=self.use_numpy,
            parallel_workers=self.parallel_workers,
            worker_pool=self.worker_pool,
        )
        inner.run(node.inner)
        # Surface the analyzed statement's worker I/O so the session's
        # cost accounting covers EXPLAIN ANALYZE like any other execution.
        self.parallel_stats = inner.parallel_stats
        lines = render_plan(collector.roots, analyze=True)
        return Result(["plan"], [(line,) for line in lines])

    # -- tracing helpers -------------------------------------------------
    def _node(self, name, detail="", parent=None):
        if self.collector is None:
            return None
        stats = self.collector.node(name, detail, parent)
        # Parent backlink for the gather absorption: worker-side I/O must
        # be added to every ancestor's *inclusive* figures (their windows
        # only saw the coordinator thread's counters), or the nodes above
        # a Gather would report negative self values.
        stats._parent = parent
        return stats

    def _traced(self, stats, gen):
        if stats is None:
            return gen
        return _traced_batches(stats, gen, self.collector)

    def _chunk_size(self, hint):
        """Rows per source batch; a LIMIT hint shrinks it so small limits
        over big tables do not read pages the row path would not."""
        if hint is None:
            return self.batch_size
        return max(1, min(self.batch_size, hint))

    def _const_int(self, fn):
        value = fn((), self.params)
        if not isinstance(value, int) or value < 0:
            raise SQLError(
                f"LIMIT/OFFSET must be a non-negative integer, got {value!r}"
            )
        return value

    # -- query interpretation -------------------------------------------
    def _emit_query(self, qplan: phys.QueryPlan, env: dict, parent, hint):
        env = dict(env)

        def gen():
            for name, sub in qplan.ctes:
                stats = self._node("CTE", name, parent)
                chunks: list = []
                for chunk in self._traced(
                    stats, self._emit_query(sub, env, stats, None)
                ):
                    chunks.append(chunk)
                if (
                    self.use_numpy
                    and chunks
                    and all(isinstance(c, ColumnChunk) for c in chunks)
                ):
                    # Keep the CTE columnar: downstream scans slice and
                    # filter it with array kernels (and fall back to the
                    # row view transparently — ColumnChunk iterates as
                    # the same row tuples).
                    env[name] = npbatch.concat(chunks)
                else:
                    rows: list[tuple] = []
                    for chunk in chunks:
                        rows.extend(chunk)
                    env[name] = rows
            yield from self._emit(qplan.root, env, parent, hint)

        return gen()

    def _emit(self, node, env, parent, hint):
        if isinstance(node, phys.QueryPlan):
            return self._emit_query(node, env, parent, hint)
        region = getattr(node, "parallel_region", None)
        if region is not None and self.worker_pool is not None:
            gen = self._emit_gather(region, node, env, parent, hint)
            if gen is not None:
                return gen
        emit = self._EMIT.get(type(node))
        if emit is None:
            raise SQLError(
                f"no batch implementation for {type(node).__name__}; "
                f"the planner should have kept this plan on the row path"
            )
        return emit(self, node, env, parent, hint)

    # -- scans -----------------------------------------------------------
    def _emit_result0(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)

        def gen():
            yield [()]

        return self._traced(stats, gen())

    def _scan_chunks(
        self, table, predicates, hint, zone_eq=None, np_arrays=False, pages=None
    ):
        """Batched heap scan with buffer-pool readahead.

        A row-limit hint disables readahead: a bounded query may stop
        mid-table, and prefetching past the stopping page would charge
        reads the row executor never performs. Page-I/O parity with the
        row path is a harder invariant than prefetch throughput.
        ``zone_eq`` is the columnar zone-map skip key; the row executor
        derives the identical key from the same plan node, so skipped
        pages match exactly. ``pages`` is a worker's chain-index morsel:
        the scan (readahead included) sees only that slice of the heap.
        """
        params = self.params
        size = self._chunk_size(hint)
        readahead = self.readahead if hint is None else 0
        check = _predicate(predicates)

        def gen():
            scan = table.scan(
                readahead=readahead,
                zone_eq=zone_eq,
                np_arrays=np_arrays,
                pages=pages,
            )
            chunk: list[tuple] = []
            try:
                if check is not None:
                    for row in scan:
                        if check(row, params):
                            chunk.append(row)
                            if len(chunk) >= size:
                                yield chunk
                                chunk = []
                else:
                    for row in scan:
                        chunk.append(row)
                        if len(chunk) >= size:
                            yield chunk
                            chunk = []
                if chunk:
                    yield chunk
            finally:
                scan.close()

        return gen()

    def _emit_seq_scan(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        table = self.catalog.get(node.table)
        zone_eq = phys.zone_key(node, self.params)
        np_dec = self.use_numpy and node.np_decode
        pages = self._morsel if node is self._morsel_leaf else None
        return self._traced(
            stats,
            self._scan_chunks(
                table, node.filters, hint, zone_eq, np_dec, pages
            ),
        )

    def _emit_pk_lookup(self, node, env, parent, hint):
        params = self.params
        table = self.catalog.get(node.table)
        np_dec = self.use_numpy and node.np_decode
        key = tuple(fn((), params) for fn in node.key_fns)
        if all(isinstance(k, int) for k in key):
            stats = self._node(node.name, node.detail, parent)
            check = _predicate(node.filters)

            def gen():
                row = table.lookup(key, np_arrays=np_dec)
                if row is None:
                    return
                if check is None or check(row, params):
                    yield [row]

            return self._traced(stats, gen())
        # Same degradation as the row executor: a non-integer parameter can
        # never match a B+Tree key, so scan and apply the pin predicates.
        stats = self._node("Seq Scan", f"on {node.table}", parent)
        predicates = list(node.pin_fns) + list(node.filters)
        return self._traced(
            stats, self._scan_chunks(table, predicates, hint, np_arrays=np_dec)
        )

    def _emit_cte_scan(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        params = self.params
        check = _predicate(node.filters)
        size = self._chunk_size(hint)

        specs = getattr(node, "filter_specs", None)
        morsel = self._morsel if node is self._morsel_leaf else None

        def gen():
            rows = env[node.cte_name]
            if morsel is not None:
                # Row-range morsel: this worker's contiguous slice of the
                # materialized CTE (list or ColumnChunk — both slice).
                rows = rows[morsel[0] : morsel[1]]
            if isinstance(rows, ColumnChunk) and check is not None:
                mask = npbatch.eval_masks(specs, rows.cols, params, len(rows))
                if mask is not None:
                    kept = rows.take(mask)
                    for start in range(0, len(kept), size):
                        yield kept[start : start + size]
                    return
            if check is not None:
                chunk = []
                for row in rows:
                    if check(row, params):
                        chunk.append(row)
                        if len(chunk) >= size:
                            yield chunk
                            chunk = []
                if chunk:
                    yield chunk
            else:
                for start in range(0, len(rows), size):
                    yield rows[start : start + size]

        return self._traced(stats, gen())

    def _emit_subquery_scan(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        params = self.params
        check = _predicate(node.filters)
        inner = self._emit_query(
            node.subplan, env, stats, hint if check is None else None
        )

        specs = getattr(node, "filter_specs", None)

        def gen():
            try:
                if check is None:
                    # Pass-through: the same chunk objects flow upward.
                    yield from inner
                else:
                    for chunk in inner:
                        if isinstance(chunk, ColumnChunk):
                            mask = npbatch.eval_masks(
                                specs, chunk.cols, params, len(chunk)
                            )
                            if mask is not None:
                                kept = chunk.take(mask)
                                if len(kept):
                                    yield kept
                                continue
                        out = [row for row in chunk if check(row, params)]
                        if out:
                            yield out
            finally:
                inner.close()

        return self._traced(stats, gen())

    # -- joins -----------------------------------------------------------
    def _emit_inl(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        if stats is not None and not getattr(stats, "_inl_seen", False):
            # Worker executors reuse one stats node across their morsels;
            # only the first emission may zero the accumulated loop count.
            stats.loops = 0
            stats._inl_seen = True
        left = self._emit(node.left, env, stats, None)
        table = self.catalog.get(node.table)
        params = self.params
        key_fns = node.key_fns
        check = _predicate(node.filters)

        np_dec = self.use_numpy and node.np_decode
        key_specs = node.np_key_specs if self.use_numpy else None

        def gen():
            probe_cache = self._inl_caches.setdefault(id(node), {})
            if np_dec:
                lookup = lambda k: table.lookup(k, np_arrays=True)  # noqa: E731
            else:
                lookup = table.lookup
            try:
                for chunk in left:
                    if stats is not None:
                        stats.loops += len(chunk)
                    keys = None
                    if key_specs is not None and isinstance(chunk, ColumnChunk):
                        # Whole-batch probe keys: one array evaluation per
                        # key column instead of a closure tree per row.
                        keys = npbatch.eval_keys(
                            key_specs, chunk.cols, params, len(chunk)
                        )
                    rows = chunk if keys is None else chunk.to_rows()
                    out = []
                    for j, left_row in enumerate(rows):
                        if keys is not None:
                            key = keys[j]
                        else:
                            key = tuple(fn(left_row, params) for fn in key_fns)
                            if any(not isinstance(k, int) for k in key):
                                continue
                        if key in probe_cache:
                            match = probe_cache[key]
                        else:
                            match = lookup(key)
                            probe_cache[key] = match
                        if match is None:
                            continue
                        row = left_row + match
                        if check is None or check(row, params):
                            out.append(row)
                    if out:
                        yield out
            finally:
                left.close()

        return self._traced(stats, gen())

    def _build_buckets(self, right, right_key):
        params = self.params
        buckets: dict = {}
        for chunk in right:
            for row in chunk:
                key = right_key(row, params)
                if key is None:
                    continue
                buckets.setdefault(key, []).append(row)
        return buckets

    def _emit_hash_join(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        left = self._emit(node.left, env, stats, None)
        right = self._emit(node.right, env, stats, None)
        params = self.params
        left_key = node.left_key
        check = _predicate(node.filters)

        def gen():
            try:
                buckets = self._build_buckets(right, node.right_key)
                for chunk in left:
                    out = []
                    for row in chunk:
                        key = left_key(row, params)
                        if key is None:
                            continue
                        matches = buckets.get(key)
                        if not matches:
                            continue
                        if check is not None:
                            for match in matches:
                                joined = row + match
                                if check(joined, params):
                                    out.append(joined)
                        else:
                            for match in matches:
                                out.append(row + match)
                    if out:
                        yield out
            finally:
                left.close()
                right.close()

        return self._traced(stats, gen())

    def _emit_nested_loop(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        left = self._emit(node.left, env, stats, None)
        right = self._emit(node.right, env, stats, None)
        params = self.params
        check = _predicate(node.filters)
        size = self.batch_size

        def gen():
            try:
                right_rows: list[tuple] = []
                for chunk in right:
                    right_rows.extend(chunk)
                for chunk in left:
                    out = []
                    for left_row in chunk:
                        for right_row in right_rows:
                            row = left_row + right_row
                            if check is None or check(row, params):
                                out.append(row)
                        if len(out) >= size:
                            yield out
                            out = []
                    if out:
                        yield out
            finally:
                left.close()
                right.close()

        return self._traced(stats, gen())

    # -- row pipeline -----------------------------------------------------
    def _emit_filter(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats, None)
        params = self.params
        check = _predicate(node.predicates)
        specs = getattr(node, "filter_specs", None)

        def gen():
            try:
                if check is None:
                    yield from child
                    return
                for chunk in child:
                    if isinstance(chunk, ColumnChunk):
                        mask = npbatch.eval_masks(
                            specs, chunk.cols, params, len(chunk)
                        )
                        if mask is not None:
                            kept = chunk.take(mask)
                            if len(kept):
                                yield kept
                            continue
                    out = [row for row in chunk if check(row, params)]
                    if out:
                        yield out
            finally:
                child.close()

        return self._traced(stats, gen())

    def _expand_srfs(self, row, srf_fns):
        """Evaluate this row's SRF arguments, with the row path's checks."""
        arrays = []
        max_len = 0
        for fn in srf_fns:
            value = fn(row, self.params)
            if value is None:
                value = []
            elif npbatch.np is not None and isinstance(value, npbatch.np.ndarray):
                # An np_decode scan below an unfused Unnest: materialize so
                # the expansion yields plain Python ints, as the row path does.
                value = value.tolist()
            elif not isinstance(value, (list, tuple)):
                raise SQLTypeError(f"UNNEST expects an array, got {value!r}")
            arrays.append(value)
            if len(value) > max_len:
                max_len = len(value)
        return arrays, max_len

    def _emit_unnest(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats, None)
        srf_fns = node.srf_fns
        size = self.batch_size

        def gen():
            try:
                out: list[tuple] = []
                for chunk in child:
                    for row in chunk:
                        arrays, max_len = self._expand_srfs(row, srf_fns)
                        if len(arrays) == 1:
                            out.extend(row + (v,) for v in arrays[0])
                        else:
                            for j in range(max_len):
                                out.append(
                                    row
                                    + tuple(
                                        arr[j] if j < len(arr) else None
                                        for arr in arrays
                                    )
                                )
                        if len(out) >= size:
                            yield out
                            out = []
                if out:
                    yield out
            finally:
                child.close()

        return self._traced(stats, gen())

    def _emit_window(self, node, env, parent, hint):  # pragma: no cover
        raise SQLError(
            "WindowAgg has no batch implementation; plan should be row-mode"
        )

    def _emit_project(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        specs = node.key_specs
        ints_only = specs is None or all(isinstance(s, int) for s in specs)
        child_node = node.child
        if (
            isinstance(child_node, phys.Unnest)
            and getattr(child_node, "srf_positions", None)
            and ints_only
        ):
            if self.use_numpy and specs is None:
                return self._traced(
                    stats,
                    self._np_unnest_project(node, child_node, env, stats),
                )
            return self._traced(
                stats,
                self._fused_unnest_project(node, child_node, env, stats),
            )
        if isinstance(child_node, phys.Filter) and specs is None:
            return self._traced(
                stats,
                self._fused_filter_project(node, child_node, env, stats),
            )
        child = self._emit(child_node, env, stats, hint)
        params = self.params
        item_fns = node.item_fns
        simple_cols = getattr(node, "simple_cols", None)

        def gen():
            try:
                if specs is None:
                    if simple_cols is not None:
                        for chunk in child:
                            if isinstance(chunk, ColumnChunk):
                                # Column projection: reindex the array
                                # list, zero copies, zero per-row work.
                                yield chunk.project(simple_cols)
                                continue
                            yield [
                                tuple(row[i] for i in simple_cols)
                                for row in chunk
                            ]
                    else:
                        for chunk in child:
                            yield [
                                tuple(fn(row, params) for fn in item_fns)
                                for row in chunk
                            ]
                else:
                    for chunk in child:
                        out = []
                        for row in chunk:
                            output = tuple(
                                fn(row, params) for fn in item_fns
                            )
                            key = tuple(
                                output[s] if isinstance(s, int) else s(row, params)
                                for s in specs
                            )
                            out.append((output, key))
                        yield out
            finally:
                child.close()

        return self._traced(stats, gen())

    def _fused_filter_project(self, node, fnode, env, stats):
        """Filter + Project in one pass per batch. The Filter node stays in
        the trace (rows = survivors) but its kernel cost is the Project's."""
        fstats = self._node(fnode.name, fnode.detail, stats)
        child = self._emit(fnode.child, env, fstats, None)
        params = self.params
        check = _predicate(fnode.predicates)
        fspecs = getattr(fnode, "filter_specs", None)
        item_fns = node.item_fns
        simple_cols = getattr(node, "simple_cols", None)

        def gen():
            try:
                for chunk in child:
                    if isinstance(chunk, ColumnChunk) and simple_cols is not None:
                        mask = npbatch.eval_masks(
                            fspecs, chunk.cols, params, len(chunk)
                        )
                        if mask is not None:
                            kept_chunk = chunk.take(mask)
                            if fstats is not None:
                                fstats.rows += len(kept_chunk)
                            if len(kept_chunk):
                                yield kept_chunk.project(simple_cols)
                            continue
                    kept = [row for row in chunk if check(row, params)]
                    if fstats is not None:
                        fstats.rows += len(kept)
                    if kept:
                        yield [
                            tuple(fn(row, params) for fn in item_fns)
                            for row in kept
                        ]
            finally:
                child.close()
                _sync_fused(fstats)

        return gen()

    def _fused_unnest_project(self, node, unode, env, stats):
        """The array-expansion kernel (slice + FLOOR projection, Codes 2-4).

        Non-SRF select items only reference pre-expansion columns, so they
        are evaluated once per *input* row; SRF items are array elements
        taken column-wise. Output rows are identical to Unnest-then-Project
        (shorter arrays pad with NULL, empty arrays emit nothing).
        """
        ustats = self._node(unode.name, unode.detail, stats)
        child = self._emit(unode.child, env, ustats, None)
        params = self.params
        srf_fns = unode.srf_fns
        srf_of = {pos: k for k, pos in enumerate(unode.srf_positions)}
        item_fns = node.item_fns
        specs = node.key_specs
        size = self.batch_size
        n_items = len(item_fns)
        single = None
        if len(srf_of) == 1 and len(srf_fns) == 1:
            single = next(iter(srf_of))  # the lone SRF's item position

        def gen():
            try:
                out: list = []
                for chunk in child:
                    for row in chunk:
                        arrays, max_len = self._expand_srfs(row, srf_fns)
                        if not max_len:
                            continue
                        base = [None] * n_items
                        for i, fn in enumerate(item_fns):
                            if i not in srf_of:
                                base[i] = fn(row, params)
                        if ustats is not None:
                            ustats.rows += max_len
                        if single is not None:
                            before = tuple(base[:single])
                            after = tuple(base[single + 1 :])
                            out.extend(
                                before + (v,) + after for v in arrays[0]
                            )
                        else:
                            for j in range(max_len):
                                output = list(base)
                                for pos, k in srf_of.items():
                                    arr = arrays[k]
                                    output[pos] = (
                                        arr[j] if j < len(arr) else None
                                    )
                                out.append(tuple(output))
                        if len(out) >= size:
                            yield self._keyed(out, specs)
                            out = []
                if out:
                    yield self._keyed(out, specs)
            finally:
                child.close()
                _sync_fused(ustats)

        return gen()

    def _np_unnest_project(self, node, unode, env, stats):
        """Array expansion emitting :class:`ColumnChunk` batches.

        Columnar variant of :meth:`_fused_unnest_project`: per input row
        the non-SRF items are evaluated once (as in the row kernel), and
        if every base value is an int and every SRF argument is a
        same-length ``int64`` array, the row's expansion is queued as
        (base values, element arrays) — batches then materialize as
        ``repeat`` / ``concatenate`` column ops, one per output column.
        Any row failing the checks (NULLs, floats, out-of-range ints,
        ragged multi-SRF lengths that need NULL padding) flushes the
        columnar buffer and goes through the exact row-kernel code, so
        mixed inputs produce the same rows in the same order, just split
        across chunks at each representation switch.
        """
        np = npbatch.np
        ustats = self._node(unode.name, unode.detail, stats)
        child = self._emit(unode.child, env, ustats, None)
        params = self.params
        srf_fns = unode.srf_fns
        srf_of = {pos: k for k, pos in enumerate(unode.srf_positions)}
        item_fns = node.item_fns
        n_items = len(item_fns)
        base_fns = [
            (i, fn) for i, fn in enumerate(item_fns) if i not in srf_of
        ]
        base_slot = {i: slot for slot, (i, _fn) in enumerate(base_fns)}
        size = self.batch_size

        def flush(bases, arrays, total):
            # arrays: per buffered row, a tuple of equal-length int64
            # arrays (one per SRF). Base columns repeat per row length.
            lengths = np.fromiter(
                (len(a[0]) for a in arrays), dtype=np.int64, count=len(arrays)
            )
            cols = []
            for i in range(n_items):
                k = srf_of.get(i)
                if k is not None:
                    cols.append(np.concatenate([a[k] for a in arrays]))
                else:
                    slot = base_slot[i]
                    values = np.fromiter(
                        (b[slot] for b in bases),
                        dtype=np.int64,
                        count=len(bases),
                    )
                    cols.append(np.repeat(values, lengths))
            return ColumnChunk(cols, n=total)

        def expand_np(row):
            """Like :meth:`_expand_srfs`, but ndarray cells from an
            ``np_decode`` scan stay ndarrays — ``to_np_arrays`` then adopts
            them without a copy, and only a row-mode fallback pays the
            materialization (in ``emit_row_mode``)."""
            arrays = []
            max_len = 0
            for fn in srf_fns:
                value = fn(row, params)
                if value is None:
                    value = []
                elif not isinstance(value, (list, tuple, np.ndarray)):
                    raise SQLTypeError(
                        f"UNNEST expects an array, got {value!r}"
                    )
                arrays.append(value)
                if len(value) > max_len:
                    max_len = len(value)
            return arrays, max_len

        def to_np_arrays(raw):
            """The row's SRF values as equal-length int64 arrays, or None."""
            first_len = len(raw[0])
            converted = []
            for value in raw:
                if len(value) != first_len:
                    return None  # ragged: NULL padding is row-mode work
                try:
                    arr = np.asarray(value)  # no copy when already int64
                except (OverflowError, ValueError):
                    return None
                if arr.dtype != np.int64:
                    return None  # floats/NULLs/overflow: row mode
                converted.append(arr)
            return tuple(converted)

        def emit_row_mode(out, row, raw, max_len, base):
            """The row kernel's expansion, verbatim semantics."""
            raw = [
                a.tolist() if isinstance(a, np.ndarray) else a for a in raw
            ]
            if len(raw) == 1:
                single = unode.srf_positions[0]
                before = tuple(base[base_slot[i]] for i in range(single) if i in base_slot)
                after = tuple(
                    base[base_slot[i]]
                    for i in range(single + 1, n_items)
                    if i in base_slot
                )
                out.extend(before + (v,) + after for v in raw[0])
                return
            for j in range(max_len):
                output = [None] * n_items
                for i, _fn in base_fns:
                    output[i] = base[base_slot[i]]
                for pos, k in srf_of.items():
                    arr = raw[k]
                    output[pos] = arr[j] if j < len(arr) else None
                out.append(tuple(output))

        def gen():
            try:
                out: list = []  # row-representation buffer
                bases: list = []  # columnar buffer: base values per row
                arrays: list = []  # columnar buffer: int64 arrays per row
                np_len = 0
                for chunk in child:
                    for row in chunk:
                        raw, max_len = expand_np(row)
                        if not max_len:
                            continue
                        base = tuple(fn(row, params) for _i, fn in base_fns)
                        if ustats is not None:
                            ustats.rows += max_len
                        converted = None
                        if all(type(b) is int for b in base):
                            converted = to_np_arrays(raw)
                        if converted is not None:
                            if out:
                                yield out
                                out = []
                            bases.append(base)
                            arrays.append(converted)
                            np_len += max_len
                            if np_len >= size:
                                yield flush(bases, arrays, np_len)
                                bases, arrays, np_len = [], [], 0
                        else:
                            if np_len:
                                yield flush(bases, arrays, np_len)
                                bases, arrays, np_len = [], [], 0
                            emit_row_mode(out, row, raw, max_len, base)
                            if len(out) >= size:
                                yield out
                                out = []
                if np_len:
                    yield flush(bases, arrays, np_len)
                if out:
                    yield out
            finally:
                child.close()
                _sync_fused(ustats)

        return gen()

    def _keyed(self, rows, specs):
        """Attach integer-spec sort keys to a chunk of output rows."""
        if specs is None:
            return rows
        return [
            (row, tuple(row[s] for s in specs)) for row in rows
        ]

    # -- aggregation ------------------------------------------------------
    def _emit_aggregate(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        spec = getattr(node, "simple_spec", None)
        if spec is not None:
            gen = self._streaming_aggregate(node, spec, env, stats)
        else:
            gen = self._generic_aggregate(node, env, stats)
        return self._traced(stats, gen)

    def _agg_machinery(self, node, spec):
        """Compile *spec* into ``(feed, final_row, init, first_needed)``.

        Shared by the serial streaming aggregate and the morsel workers'
        partial aggregation: ``feed`` folds one row into a per-group state
        dict, ``final_row`` turns one state into the finalized output row.
        The states it builds are exactly what :func:`_merge_agg_states`
        merges across morsels. Cached per plan node — workers compile once
        and reuse across their morsels.
        """
        machine = self._agg_machines.get(id(node))
        if machine is not None:
            return machine
        params = self.params
        group_fns = node.group_fns

        first_needed = any(entry[0] == "first" for entry in spec)
        agg_items = []  # (slot, arg_fn or None for COUNT(*), step fn)
        finalizers = []
        init = []
        for slot, entry in enumerate(spec):
            kind = entry[0]
            if kind == "first":
                gfn = entry[1]
                init.append(None)

                def fin(accs, first, _fn=gfn):
                    return _fn(first, params)

            elif kind == "count*":
                init.append(0)
                agg_items.append((slot, None, None))

                def fin(accs, first, _s=slot):
                    return accs[_s]

            else:
                name, arg_fn = entry[1], entry[2]
                init.append(0 if name == "count" else None)
                agg_items.append((slot, arg_fn, _make_step(name)))
                if name == "avg":
                    def fin(accs, first, _s=slot):
                        acc = accs[_s]
                        return None if acc is None else acc[0] / acc[1]
                else:
                    def fin(accs, first, _s=slot):
                        return accs[_s]

            finalizers.append(fin)

        def feed(row, groups):
            if group_fns:
                key = _hashable(
                    tuple(fn(row, params) for fn in group_fns)
                )
            else:
                key = ()
            state = groups.get(key)
            if state is None:
                state = groups[key] = (
                    [row] if first_needed else [],
                    list(init),
                )
            accs = state[1]
            for slot, arg_fn, step in agg_items:
                if arg_fn is None:
                    accs[slot] += 1
                else:
                    accs[slot] = step(accs[slot], arg_fn(row, params))

        def final_row(state):
            first, accs = state
            return tuple(fin(accs, first) for fin in finalizers)

        machine = (feed, final_row, init, first_needed)
        self._agg_machines[id(node)] = machine
        return machine

    def _streaming_aggregate(self, node, spec, env, stats):
        """Fold rows into per-group accumulators as batches arrive.

        When the input is a HashJoin this is the fused hub-intersection
        kernel: probe results feed the accumulators directly and the join
        output is never materialized.
        """
        params = self.params
        group_fns = node.group_fns
        key_specs = node.key_specs  # all ints (simple_spec contract)
        size = self.batch_size
        feed, final_row, init, _first_needed = self._agg_machinery(node, spec)

        def finalize(groups):
            if not groups and not group_fns:
                groups[()] = ([], list(init))  # scalar agg over no rows
            out = []
            for state in groups.values():
                row = final_row(state)
                if key_specs is None:
                    out.append(row)
                else:
                    out.append((row, tuple(row[s] for s in key_specs)))
                if len(out) >= size:
                    yield out
                    out = []
            if out:
                yield out

        np_spec = getattr(node, "np_spec", None) if self.use_numpy else None

        def emit_np_rows(rows_out):
            out = []
            for row in rows_out:
                if key_specs is None:
                    out.append(row)
                else:
                    out.append((row, tuple(row[s] for s in key_specs)))
                if len(out) >= size:
                    yield out
                    out = []
            if out:
                yield out

        if isinstance(node.child, phys.HashJoin):
            return self._fused_join_aggregate(
                node.child, env, stats, feed, finalize, np_spec, emit_np_rows
            )

        child = self._emit(node.child, env, stats, None)

        def gen():
            groups: dict = {}
            # Column chunks are buffered while every batch stays columnar;
            # a single whole-column group_aggregate then replaces the
            # per-row accumulator feed. Any row-mode batch (or a kernel
            # refusal) drains the buffer through the accumulators instead
            # — same groups, same order, same values.
            np_chunks: list = []
            np_ok = np_spec is not None
            try:
                for chunk in child:
                    if np_ok and isinstance(chunk, ColumnChunk):
                        np_chunks.append(chunk)
                        continue
                    if np_chunks:
                        for buffered in np_chunks:
                            for row in buffered:
                                feed(row, groups)
                        np_chunks = []
                    np_ok = False
                    for row in chunk:
                        feed(row, groups)
            finally:
                child.close()
            if np_ok and np_chunks:
                data = npbatch.concat(np_chunks)
                rows_out = npbatch.group_aggregate(
                    np_spec, data.cols, params, len(data)
                )
                if rows_out is not None:
                    yield from emit_np_rows(rows_out)
                    return
                for row in data:
                    feed(row, groups)
            yield from finalize(groups)

        return gen()

    def _fused_join_aggregate(
        self, jnode, env, stats, feed, finalize, np_spec=None, emit_np_rows=None
    ):
        """Hub intersection: HashJoin probe feeding aggregate accumulators.

        With columnar inputs on both sides and a lowered join key +
        filter + aggregate, the whole fusion runs as array kernels:
        sort-merge pair discovery, one gather per column, one mask, one
        grouped reduction. The probe loop below is the row fallback and
        the baseline (``numpy_batches=False``) path.
        """
        jstats = self._node(jnode.name, jnode.detail, stats)
        left = self._emit(jnode.left, env, jstats, None)
        right = self._emit(jnode.right, env, jstats, None)
        params = self.params
        left_key = jnode.left_key
        check = _predicate(jnode.filters)

        def np_join(left_chunks, right_chunks):
            """Joined + filtered ColumnChunk, or None to use the probe loop."""
            if (
                np_spec is None
                or jnode.np_left_col is None
                or jnode.np_right_col is None
                or not left_chunks
                or not right_chunks
                or not all(
                    isinstance(c, ColumnChunk)
                    for c in left_chunks + right_chunks
                )
            ):
                return None
            lhs = npbatch.concat(left_chunks)
            rhs = npbatch.concat(right_chunks)
            li, ri = npbatch.join_pairs(
                lhs.cols[jnode.np_left_col], rhs.cols[jnode.np_right_col]
            )
            joined = ColumnChunk(
                [c[li] for c in lhs.cols] + [c[ri] for c in rhs.cols],
                n=len(li),
            )
            if not jnode.filters:
                return joined
            mask = npbatch.eval_masks(
                getattr(jnode, "filter_specs", None),
                joined.cols,
                params,
                len(joined),
            )
            if mask is None:
                return None
            return joined.take(mask)

        def gen():
            groups: dict = {}
            joined = 0
            np_rows = None
            try:
                if np_spec is not None and self.use_numpy:
                    left_chunks = list(left)
                    right_chunks = list(right)
                    kept = np_join(left_chunks, right_chunks)
                    if kept is not None:
                        joined = len(kept)
                        np_rows = npbatch.group_aggregate(
                            np_spec, kept.cols, params, len(kept)
                        )
                    if np_rows is None:
                        # Row fallback over the already-pulled chunks.
                        buckets: dict = {}
                        for chunk in right_chunks:
                            for row in chunk:
                                key = jnode.right_key(row, params)
                                if key is None:
                                    continue
                                buckets.setdefault(key, []).append(row)
                        joined = 0
                        for chunk in left_chunks:
                            for row in chunk:
                                key = left_key(row, params)
                                if key is None:
                                    continue
                                matches = buckets.get(key)
                                if not matches:
                                    continue
                                for match in matches:
                                    out = row + match
                                    if check is not None and not check(
                                        out, params
                                    ):
                                        continue
                                    joined += 1
                                    feed(out, groups)
                else:
                    buckets = self._build_buckets(right, jnode.right_key)
                    for chunk in left:
                        for row in chunk:
                            key = left_key(row, params)
                            if key is None:
                                continue
                            matches = buckets.get(key)
                            if not matches:
                                continue
                            for match in matches:
                                out = row + match
                                if check is not None and not check(out, params):
                                    continue
                                joined += 1
                                feed(out, groups)
            finally:
                left.close()
                right.close()
                if jstats is not None:
                    jstats.rows = joined
                _sync_fused(jstats)
            if np_rows is not None:
                yield from emit_np_rows(np_rows)
            else:
                yield from finalize(groups)

        return gen()

    def _generic_aggregate(self, node, env, stats):
        """Materializing fallback: exactly the row executor's algorithm,
        fed by batches (HAVING, DISTINCT aggregates, array_agg, ...)."""
        child = self._emit(node.child, env, stats, None)
        params = self.params
        size = self.batch_size

        def gen():
            rows: list[tuple] = []
            try:
                for chunk in child:
                    rows.extend(chunk)
            finally:
                child.close()
            if node.group_fns:
                groups: dict = {}
                for row in rows:
                    key = _hashable(
                        tuple(fn(row, params) for fn in node.group_fns)
                    )
                    groups.setdefault(key, []).append(row)
                group_list = list(groups.values())
            else:
                group_list = [rows]  # one group, possibly empty
            out = []
            for group_rows in group_list:
                if (
                    node.having_fn is not None
                    and node.having_fn(group_rows, params) is not True
                ):
                    continue
                output = tuple(
                    fn(group_rows, params) for fn in node.item_fns
                )
                if node.key_specs is None:
                    out.append(output)
                else:
                    key = tuple(
                        output[s]
                        if isinstance(s, int)
                        else s(group_rows, params)
                        for s in node.key_specs
                    )
                    out.append((output, key))
                if len(out) >= size:
                    yield out
                    out = []
            if out:
                yield out

        return gen()

    def _emit_distinct(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats, None)

        def gen():
            seen = set()
            try:
                if node.keyed:
                    for chunk in child:
                        out = []
                        for row, key in chunk:
                            h = _hashable(row)
                            if h not in seen:
                                seen.add(h)
                                out.append((row, key))
                        if out:
                            yield out
                else:
                    for chunk in child:
                        out = []
                        for row in chunk:
                            h = _hashable(row)
                            if h not in seen:
                                seen.add(h)
                                out.append(row)
                        if out:
                            yield out
            finally:
                child.close()

        return self._traced(stats, gen())

    # -- ordering / limiting ----------------------------------------------
    def _emit_sort(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats, None)
        params = self.params
        size = self.batch_size

        def gen():
            rows: list[tuple] = []
            keys: list[tuple] = []
            try:
                if node.keyed:
                    for chunk in child:
                        for row, key in chunk:
                            rows.append(row)
                            keys.append(key)
                else:
                    key_fns = node.key_fns
                    for chunk in child:
                        for row in chunk:
                            rows.append(row)
                            keys.append(
                                tuple(fn(row, params) for fn in key_fns)
                            )
            finally:
                child.close()
            ordered = _sort_rows(
                rows, len(node.descending), keys, node.descending
            )
            for start in range(0, len(ordered), size):
                yield ordered[start : start + size]

        return self._traced(stats, gen())

    def _emit_topk(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats, None)
        params = self.params
        limit = self._const_int(node.limit_fn)
        offset = (
            self._const_int(node.offset_fn)
            if node.offset_fn is not None
            else 0
        )
        descending = node.descending
        keep = offset + limit
        size = self.batch_size

        def gen():
            # Entries are (composite_key, input_seq, row): the explicit
            # sequence number reproduces nsmallest's stability exactly (and
            # guarantees rows are never compared), while the bounded merge
            # keeps at most keep + batch_size entries alive at once.
            best: list = []
            seq = 0
            try:
                if node.keyed:
                    for chunk in child:
                        entries = [
                            (composite_key(key, descending), s, row)
                            for s, (row, key) in enumerate(chunk, seq)
                        ]
                        seq += len(chunk)
                        best = heapq.nsmallest(keep, best + entries)
                else:
                    key_fns = node.key_fns
                    for chunk in child:
                        entries = [
                            (
                                composite_key(
                                    tuple(fn(row, params) for fn in key_fns),
                                    descending,
                                ),
                                s,
                                row,
                            )
                            for s, row in enumerate(chunk, seq)
                        ]
                        seq += len(chunk)
                        best = heapq.nsmallest(keep, best + entries)
            finally:
                child.close()
            out = [row for _key, _seq, row in best[offset:]]
            for start in range(0, len(out), size):
                yield out[start : start + size]

        return self._traced(stats, gen())

    def _emit_limit(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        limit = (
            self._const_int(node.limit_fn)
            if node.limit_fn is not None
            else None
        )
        offset = (
            self._const_int(node.offset_fn)
            if node.offset_fn is not None
            else 0
        )
        child_hint = None if limit is None else offset + limit
        child = self._emit(node.child, env, stats, child_hint)

        def gen():
            skip = offset
            remaining = limit
            try:
                if remaining == 0:
                    return
                for chunk in child:
                    if skip:
                        if len(chunk) <= skip:
                            skip -= len(chunk)
                            continue
                        chunk = chunk[skip:]
                        skip = 0
                    if remaining is None:
                        yield chunk
                        continue
                    if len(chunk) >= remaining:
                        yield chunk[:remaining]
                        return
                    remaining -= len(chunk)
                    yield chunk
            finally:
                child.close()

        return self._traced(stats, gen())

    def _emit_union(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        left = self._emit(node.left, env, stats, None)
        right = self._emit(node.right, env, stats, None)

        def gen():
            try:
                if node.op == "UNION":
                    seen = set()
                    for source in (left, right):
                        for chunk in source:
                            out = []
                            for row in chunk:
                                key = _hashable(row)
                                if key not in seen:
                                    seen.add(key)
                                    out.append(row)
                            if out:
                                yield out
                else:  # UNION ALL
                    yield from left
                    yield from right
            finally:
                left.close()
                right.close()

        return self._traced(stats, gen())

    # -- morsel-driven parallelism ----------------------------------------
    def _plan_morsels(self, region, env):
        """Cut the region's driving scan into ``(lo, hi)`` morsels.

        Heap regions split over chain *page* indices (``HeapFile.scan``'s
        ``pages`` contract), CTE regions over materialized row indices.
        Returns ``None`` — serial execution — when the scan is below the
        parallelization floor or cannot produce at least two morsels.
        """
        leaf = region.leaf
        if isinstance(leaf, phys.SeqScan):
            total = self.catalog.get(leaf.table).heap.chain_length()
            if total < MIN_PARALLEL_PAGES:
                return None
            floor = max(MIN_MORSEL_PAGES, self.readahead)
            # Several morsels per worker: page morsels can be skewed (zone
            # skips, selective filters), so the contiguous per-worker
            # slices keep a little granularity to even out.
            target = self.parallel_workers * MORSELS_PER_WORKER
        else:  # CteScan
            rows = env.get(leaf.cte_name)
            if rows is None:
                return None
            total = len(rows)
            # A heavy region multiplies each leaf row's work (UNNEST
            # fan-out, per-row index probes), so the floors — sized in
            # leaf rows — scale down by that expansion. The aggressive
            # factor is deliberate: per-row cost in these regions is
            # dominated by cold-page decode on index probes, which
            # clusters — fine stripes spread those pages over workers.
            scale = 32 if region.expands else 1
            if total < MIN_PARALLEL_ROWS // scale:
                return None
            floor = 128 // scale
            target = self.parallel_workers * MORSELS_PER_WORKER
        per = max(floor, -(-total // target))
        morsels = [
            (lo, min(lo + per, total)) for lo in range(0, total, per)
        ]
        if len(morsels) < 2:
            return None
        return morsels

    def _emit_gather(self, region, node, env, parent, hint):
        """Fan an annotated region out over the worker pool, or ``None``.

        ``None`` means "run serial": a LIMIT hint above the region (the
        serial path's early-stop would read fewer pages than any fan-out)
        or a scan too small to morselize. Otherwise the returned generator
        submits one task per worker, each owning a contiguous slice of the
        morsel list, and yields the gathered output: partial-aggregate
        merge for ``agg`` regions, per-morsel chunk lists concatenated in
        morsel order for ``rows`` regions — row-for-row what serial
        execution yields.

        Assignment is static, not a shared work queue, on purpose: the
        per-worker makespan (CPU + simulated I/O) is what
        ``experiment_parallel`` measures, and under the GIL on few cores a
        dynamic queue degenerates — the first worker scheduled drains it
        before the rest wake, so the critical path collapses to the serial
        total. Page regions get contiguous morsel slices (equal page share,
        reads stay one sequential run per worker); CTE regions get
        round-robin stripes, which spreads UNNEST expansion skew — array
        lengths cluster, so contiguous row slices can be 10x apart in
        output rows. Either way the merge is by morsel index, so the
        assignment never affects output order.
        """
        if hint is not None:
            return None
        morsels = self._plan_morsels(region, env)
        if morsels is None:
            return None
        workers = min(self.parallel_workers, len(morsels))
        stats = self._node("Gather", f"over {node.name}", parent)
        if stats is not None:
            stats.workers = workers

        def gen():
            results: list = [None] * len(morsels)
            if isinstance(region.leaf, phys.SeqScan):
                per = -(-len(morsels) // workers)
                assignments = [
                    range(start, min(start + per, len(morsels)))
                    for start in range(0, len(morsels), per)
                ]
            else:
                assignments = [
                    range(index, len(morsels), workers)
                    for index in range(workers)
                ]
            caches: dict = {}
            futures = [
                self.worker_pool.submit(
                    self._parallel_worker,
                    region,
                    env,
                    morsels,
                    own,
                    results,
                    caches,
                )
                for own in assignments
            ]
            reports = []
            error = None
            for future in futures:
                try:
                    reports.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    if error is None:
                        error = exc
            if error is not None:
                raise error
            self._absorb_reports(stats, reports, workers)
            if region.mode == "agg":
                yield from self._merge_partials(region, results)
            else:
                for entry in results:
                    yield from entry[1]

        return self._traced(stats, gen())

    def _parallel_worker(self, region, env, morsels, indices, results, caches):
        """Body of one worker task (runs on the Database's thread pool).

        Trace collectors and buffer/disk statistics views bind to the
        creating thread, so both are constructed *inside* the worker; the
        returned report carries the worker's CPU time, private I/O deltas
        and trace roots back to the coordinator, which never reads another
        thread's live counters. ``caches`` is the gather-wide INL probe
        memo (see ``_inl_caches``), shared so workers never repeat each
        other's point probes.
        """
        from repro.minidb.metrics import TraceCollector
        from repro.minidb.sanitize import dynamic as _san

        pool = getattr(self.catalog, "pool", None)
        disk = getattr(pool, "disk", None)
        collector = (
            TraceCollector(pool) if self.collector is not None else None
        )
        pool_stats = pool.thread_stats() if pool is not None else None
        disk_stats = disk.thread_stats() if disk is not None else None
        pool_before = (
            pool_stats.snapshot() if pool_stats is not None else None
        )
        disk_before = (
            disk_stats.snapshot() if disk_stats is not None else None
        )
        cpu_before = time.thread_time()
        worker = _MorselWorker(self, collector)
        worker._inl_caches = caches
        tracker = _san.TRACKER
        try:
            for index in indices:
                results[index] = worker.run_region(
                    region, env, morsels[index]
                )
        except BaseException:
            # Pool threads outlive the statement; a failing morsel must not
            # leak pins into the next statement this thread serves.
            if tracker is not None:
                tracker.drop_thread_pins()
            raise
        if tracker is not None:
            tracker.check_statement_end()
        return {
            "cpu_ms": (time.thread_time() - cpu_before) * 1000.0,
            "pool": (
                pool_stats.delta(pool_before)
                if pool_before is not None
                else None
            ),
            "disk": (
                disk_stats.delta(disk_before)
                if disk_before is not None
                else None
            ),
            "roots": collector.roots if collector is not None else [],
        }

    def _absorb_reports(self, stats, reports, workers):
        """Fold worker reports into the statement's parallel accounting
        and the Gather trace node (worker subtrees become its children).

        ``busy_ms`` sums every worker's CPU + simulated-I/O time across the
        statement; ``critical_ms`` adds each gather's slowest worker — the
        session combines it with coordinator time into the simulated-clock
        makespan that ``experiment_parallel`` reports speedup against.
        """
        par = self.parallel_stats
        if par is None:
            par = self.parallel_stats = {
                "gathers": 0,
                "workers": 0,
                "busy_ms": 0.0,
                "critical_ms": 0.0,
                "reads": 0,
                "io_ms": 0.0,
                "hits": 0,
                "misses": 0,
            }
        par["gathers"] += 1
        par["workers"] = max(par["workers"], workers)
        busiest = 0.0
        for rep in reports:
            disk = rep["disk"]
            pool = rep["pool"]
            io_ms = disk.simulated_read_ms if disk is not None else 0.0
            busy = rep["cpu_ms"] + io_ms
            par["busy_ms"] += busy
            busiest = max(busiest, busy)
            if disk is not None:
                par["reads"] += disk.reads
                par["io_ms"] += disk.simulated_read_ms
            if pool is not None:
                par["hits"] += pool.hits
                par["misses"] += pool.misses
            if stats is not None:
                stats.children.extend(rep["roots"])
                node = stats
                while node is not None:
                    if pool is not None:
                        node.pool_hits += pool.hits
                        node.pool_misses += pool.misses
                    if disk is not None:
                        node.page_reads += disk.reads
                        node.io_ms += disk.simulated_read_ms
                    node = getattr(node, "_parent", None)
        par["critical_ms"] += busiest

    def _merge_partials(self, region, results):
        """Combine per-morsel aggregate partials into final output chunks.

        Both partial shapes preserve group first-appearance order within
        their morsel (``group_aggregate`` emits it explicitly, the feed
        dict by insertion), and morsels partition the input in row order —
        so an insertion-ordered merge over partials in morsel order
        reproduces the serial output order exactly. Mixed shapes normalize
        accumulator partials to value rows (np-eligible specs finalize to
        re-aggregatable values) and merge at the value level.
        """
        node = region.top
        spec = node.simple_spec
        _feed, final_row, init, _first = self._agg_machinery(node, spec)
        key_specs = node.key_specs
        size = self.batch_size
        use_vals = any(entry[0] == "vals" for entry in results)
        if use_vals:
            pos = region.group_item_pos
            merged: dict = {}
            for kind, payload in results:
                if kind == "accs":
                    rows = [final_row(state) for state in payload.values()]
                else:
                    rows = payload.values()
                for row in rows:
                    key = tuple(row[i] for i in pos)
                    cur = merged.get(key)
                    if cur is None:
                        merged[key] = row
                    else:
                        merged[key] = _merge_value_rows(spec, cur, row)
            rows_out = list(merged.values())
        else:
            groups: dict = {}
            for _kind, payload in results:
                for key, state in payload.items():
                    cur = groups.get(key)
                    if cur is None:
                        groups[key] = state
                    else:
                        _merge_agg_states(spec, cur, state)
            rows_out = [final_row(state) for state in groups.values()]
        if not rows_out and not node.group_fns:
            # Scalar aggregate over no rows: the default row (COUNT()=0,
            # MIN=NULL, ...) is injected exactly once, at the final merge —
            # never by a per-morsel partial.
            rows_out = [final_row(([], list(init)))]
        out = []
        for row in rows_out:
            if key_specs is None:
                out.append(row)
            else:
                out.append((row, tuple(row[s] for s in key_specs)))
            if len(out) >= size:
                yield out
                out = []
        if out:
            yield out

    _EMIT = {
        phys.Result0: _emit_result0,
        phys.SeqScan: _emit_seq_scan,
        phys.PkLookup: _emit_pk_lookup,
        phys.CteScan: _emit_cte_scan,
        phys.SubqueryScan: _emit_subquery_scan,
        phys.IndexNestedLoop: _emit_inl,
        phys.HashJoin: _emit_hash_join,
        phys.NestedLoop: _emit_nested_loop,
        phys.Filter: _emit_filter,
        phys.Unnest: _emit_unnest,
        phys.Window: _emit_window,
        phys.Project: _emit_project,
        phys.Aggregate: _emit_aggregate,
        phys.Distinct: _emit_distinct,
        phys.Sort: _emit_sort,
        phys.TopK: _emit_topk,
        phys.Limit: _emit_limit,
        phys.Union: _emit_union,
    }


class _MorselWorker(BatchExecutor):
    """Executor clone a worker thread runs over the morsels it claims.

    One instance per worker per gather: it shares the coordinator's
    catalog/params/settings but owns a thread-bound trace collector and
    never gets a worker pool (regions cannot nest). Trace nodes are cached
    per ``(parent, name, detail)`` so one operator subtree accumulates
    across every morsel the worker processes — the coordinator grafts each
    worker's roots under the Gather node, and ``_traced_batches``'s purely
    additive accounting makes the reuse exact (``_emit_inl`` guards its
    one-time loop reset with ``_inl_seen`` for the same reason).
    """

    def __init__(self, parent: BatchExecutor, collector):
        super().__init__(
            parent.catalog,
            parent.params,
            collector=collector,
            batch_size=parent.batch_size,
            readahead=parent.readahead,
            numpy_batches=parent.use_numpy,
        )
        self._trace_nodes: dict = {}

    def _node(self, name, detail="", parent=None):
        if self.collector is None:
            return None
        key = (id(parent), name, detail)
        stats = self._trace_nodes.get(key)
        if stats is None:
            stats = self._trace_nodes[key] = self.collector.node(
                name, detail, parent
            )
        return stats

    def run_region(self, region, env, morsel):
        """Execute the region over one morsel and return its partial:
        ``("chunks", [...])`` for ``rows`` regions, an aggregate partial
        for ``agg`` regions. The morsel restriction applies only to the
        region's leaf scan (checked by node identity in the scan
        emitters); everything above it runs the ordinary emitters."""
        self._morsel_leaf = region.leaf
        self._morsel = morsel
        try:
            if region.mode == "agg":
                return self._partial_aggregate(region, env)
            chunks: list = []
            gen = self._emit(region.top, env, None, None)
            try:
                for chunk in gen:
                    chunks.append(chunk)
            finally:
                gen.close()
            return ("chunks", chunks)
        finally:
            self._morsel_leaf = None
            self._morsel = None

    def _partial_aggregate(self, region, env):
        """One morsel's partial aggregate: ``("vals", {key: row})`` when
        the np kernel grouped the whole morsel, ``("accs", {key: state})``
        otherwise. Mirrors ``_streaming_aggregate``'s buffering loop but
        stops before finalization — and never injects the scalar-aggregate
        default row, which belongs to the coordinator's final merge."""
        node = region.top
        spec = node.simple_spec
        stats = self._node(node.name, node.detail, None)
        feed, _final_row, _init, _first = self._agg_machinery(node, spec)
        np_spec = getattr(node, "np_spec", None) if self.use_numpy else None
        np_ok = np_spec is not None and region.group_item_pos is not None
        groups: dict = {}
        np_chunks: list = []
        child = self._emit(node.child, env, stats, None)
        try:
            for chunk in child:
                if np_ok and isinstance(chunk, ColumnChunk):
                    np_chunks.append(chunk)
                    continue
                if np_chunks:
                    for buffered in np_chunks:
                        for row in buffered:
                            feed(row, groups)
                    np_chunks = []
                np_ok = False
                for row in chunk:
                    feed(row, groups)
        finally:
            child.close()
            # The partial runs outside a _traced window, so the Aggregate
            # node is a pass-through like any fused operator: inclusive
            # figures re-derived from its (accumulating) children.
            _sync_fused(stats)
        if np_ok and np_chunks:
            data = npbatch.concat(np_chunks)
            rows_out = npbatch.group_aggregate(
                np_spec, data.cols, self.params, len(data)
            )
            if rows_out is not None:
                if stats is not None:
                    stats.rows += len(rows_out)
                pos = region.group_item_pos
                return (
                    "vals",
                    {tuple(row[i] for i in pos): row for row in rows_out},
                )
            for row in data:
                feed(row, groups)
        if stats is not None:
            stats.rows += len(groups)
        return ("accs", groups)
