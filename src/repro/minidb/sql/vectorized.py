"""Batch-at-a-time (vectorized) interpreter for physical plans.

The row executor (:mod:`repro.minidb.sql.executor`) pays one Python
generator round trip — plus two counter snapshots and two clock reads when
tracing — per tuple per operator. For the paper's CPU-bound families
(kNN/OTM on SSD, Figures 7-8) that interpreter overhead dominates, exactly
the effect MonetDB/X100 vectorization removes. This executor interprets the
*same* physical plans but moves **batches** (lists of up to ``batch_size``
row tuples) between operators, so per-pull bookkeeping amortizes over the
whole batch and hot inner loops run as list comprehensions.

On top of plain batching, four fused kernels cover the paper's hot
patterns (the planner marks the plans; see ``plan.py``):

* **hub intersection** — ``Aggregate`` over ``HashJoin`` (the
  ``UNNEST(lhubs) ⋈ UNNEST(rhubs)`` v2v core) probes the hash table and
  folds joined rows straight into streaming MIN/MAX/... accumulators,
  never materializing the join output;
* **array expansion** — ``Project`` over ``Unnest`` (the ``a[1:k]`` slice +
  ``FLOOR`` projection of Codes 2-4) evaluates non-SRF items once per
  *input* row and emits array elements column-wise;
* **filter + project** — a single pass per batch;
* **batched Top-K / aggregate accumulation** — bounded-heap and
  accumulator updates per batch instead of per pulled row.

Fusion never crosses an I/O-performing operator, so per-operator I/O
attribution (and the analyzer's access-path proof) is unchanged: fused
interior operators still appear in the trace with their row counts, but
with zero self cost (their kernel time lands on the fusing parent). Plans
containing operators without a batch implementation (``plan.batchable`` is
False — e.g. window functions) run on the row executor; results are
identical either way, which ``tests/minidb/test_vectorized.py`` asserts
over the whole PTLDB corpus.
"""

from __future__ import annotations

import heapq
import time

from repro.errors import SQLError, SQLTypeError
from repro.minidb.sql import plan as phys
from repro.minidb.sql.executor import _DONE, Executor, Result
from repro.minidb.sql.planner import _hashable, _sort_rows, composite_key

#: Default rows-per-batch; overridable per database (``Database(batch_size=...)``).
DEFAULT_BATCH_SIZE = 1024


def _traced_batches(stats, gen, collector):
    """Per-*batch* accounting: one time/counter window per pull.

    The row executor pays this bookkeeping per tuple; here it is amortized
    over up to ``batch_size`` rows, which is where much of the vectorized
    speedup comes from. ``stats.pulls`` counts batches so traces expose
    rows-per-pull; attribution semantics (inclusive of children, exact I/O
    deltas) are identical to the row path.
    """
    pool_stats = collector.pool_stats
    disk_stats = collector.disk_stats
    try:
        while True:
            pool_before = (
                pool_stats.snapshot() if pool_stats is not None else None
            )
            disk_before = (
                disk_stats.snapshot() if disk_stats is not None else None
            )
            started = time.perf_counter()
            try:
                chunk = next(gen, _DONE)
            finally:
                stats.time_ms += (time.perf_counter() - started) * 1000.0
                if pool_before is not None:
                    delta = pool_stats.delta(pool_before)
                    stats.pool_hits += delta.hits
                    stats.pool_misses += delta.misses
                if disk_before is not None:
                    delta = disk_stats.delta(disk_before)
                    stats.page_reads += delta.reads
                    stats.io_ms += delta.simulated_read_ms
            if chunk is _DONE:
                return
            stats.pulls += 1
            stats.rows += len(chunk)
            yield chunk
    finally:
        gen.close()


def _sync_fused(stats):
    """Make a fused operator's inclusive figures consistent.

    A fused operator does its work inside the fusing parent's kernel, so
    its own windows never run; without this its inclusive counters would
    read zero while its (separately traced) children report I/O — negative
    "self" figures. Copying the children's sums makes the node an exact
    pass-through: zero self cost, invariants intact.
    """
    if stats is None:
        return
    stats.time_ms = sum(c.time_ms for c in stats.children)
    stats.pool_hits = sum(c.pool_hits for c in stats.children)
    stats.pool_misses = sum(c.pool_misses for c in stats.children)
    stats.page_reads = sum(c.page_reads for c in stats.children)
    stats.io_ms = sum(c.io_ms for c in stats.children)


def _predicate(filters):
    """Collapse a predicate list into one callable (or ``None`` if empty).

    The row executor evaluates ``all(p(row, params) is True ...)`` per row;
    semantics here are identical, but the single-predicate case — by far
    the most common in the paper corpus — skips the generator-expression
    machinery, which is measurable at batch row rates.
    """
    if not filters:
        return None
    if len(filters) == 1:
        single = filters[0]

        def check(row, params):
            return single(row, params) is True

        return check
    filters = tuple(filters)

    def check(row, params):
        for p in filters:
            if p(row, params) is not True:
                return False
        return True

    return check


def _make_step(name):
    """Streaming accumulator for one aggregate, replicating the exact NULL
    and tie semantics of the list-based :mod:`functions` aggregates
    (``None`` accumulator = no non-NULL value seen yet; SUM/AVG start from
    ``0 + v`` so float results match ``sum(list)`` bit for bit)."""
    if name == "min":
        def step(acc, v):
            if v is None:
                return acc
            if acc is None:
                return v
            return v if v < acc else acc
    elif name == "max":
        def step(acc, v):
            if v is None:
                return acc
            if acc is None:
                return v
            return v if acc < v else acc
    elif name == "sum":
        def step(acc, v):
            if v is None:
                return acc
            if acc is None:
                return 0 + v
            return acc + v
    elif name == "count":
        def step(acc, v):
            return acc if v is None else acc + 1
    elif name == "avg":
        def step(acc, v):
            if v is None:
                return acc
            if acc is None:
                return (0 + v, 1)
            return (acc[0] + v, acc[1] + 1)
    else:  # pragma: no cover - planner only emits the five above
        raise SQLError(f"no streaming accumulator for {name!r}")
    return step


class BatchExecutor:
    """Interprets physical plans in batch mode.

    Drop-in alternative to :class:`Executor` for SELECT statements whose
    plan is ``batchable``; everything else (DML, utility, EXPLAIN) is
    delegated to the row executor unchanged.
    """

    def __init__(
        self,
        catalog,
        params: tuple = (),
        collector=None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        readahead: int = 0,
    ):
        self.catalog = catalog
        self.params = tuple(params)
        self.collector = collector
        self.batch_size = max(1, int(batch_size))
        self.readahead = max(0, int(readahead))

    # -- public entry point ---------------------------------------------
    def run(self, plan: phys.Plan) -> Result:
        node = plan.statement
        if isinstance(node, phys.ExplainPlan):
            return self._run_explain(node)
        if not isinstance(node, phys.QueryPlan):
            return Executor(
                self.catalog, self.params, collector=self.collector
            ).run(plan)
        for index in plan.param_indices:
            if not 1 <= index <= len(self.params):
                raise SQLError(
                    f"parameter ${index} not supplied "
                    f"({len(self.params)} parameters given)"
                )
        rows: list[tuple] = []
        for chunk in self._emit_query(node, {}, None, None):
            rows.extend(chunk)
        return Result(list(node.columns), rows)

    def _run_explain(self, node: phys.ExplainPlan) -> Result:
        """EXPLAIN ANALYZE of a batchable statement runs on this engine,
        so the rendered trace shows the batch clauses the real execution
        would produce (plain EXPLAIN renders statically, no execution)."""
        from repro.minidb.metrics import TraceCollector, render_plan

        if not node.analyze:
            lines = phys.explain_lines(node.inner)
            return Result(["plan"], [(line,) for line in lines])
        collector = TraceCollector(getattr(self.catalog, "pool", None))
        BatchExecutor(
            self.catalog,
            self.params,
            collector=collector,
            batch_size=self.batch_size,
            readahead=self.readahead,
        ).run(node.inner)
        lines = render_plan(collector.roots, analyze=True)
        return Result(["plan"], [(line,) for line in lines])

    # -- tracing helpers -------------------------------------------------
    def _node(self, name, detail="", parent=None):
        if self.collector is None:
            return None
        return self.collector.node(name, detail, parent)

    def _traced(self, stats, gen):
        if stats is None:
            return gen
        return _traced_batches(stats, gen, self.collector)

    def _chunk_size(self, hint):
        """Rows per source batch; a LIMIT hint shrinks it so small limits
        over big tables do not read pages the row path would not."""
        if hint is None:
            return self.batch_size
        return max(1, min(self.batch_size, hint))

    def _const_int(self, fn):
        value = fn((), self.params)
        if not isinstance(value, int) or value < 0:
            raise SQLError(
                f"LIMIT/OFFSET must be a non-negative integer, got {value!r}"
            )
        return value

    # -- query interpretation -------------------------------------------
    def _emit_query(self, qplan: phys.QueryPlan, env: dict, parent, hint):
        env = dict(env)

        def gen():
            for name, sub in qplan.ctes:
                stats = self._node("CTE", name, parent)
                rows: list[tuple] = []
                for chunk in self._traced(
                    stats, self._emit_query(sub, env, stats, None)
                ):
                    rows.extend(chunk)
                env[name] = rows
            yield from self._emit(qplan.root, env, parent, hint)

        return gen()

    def _emit(self, node, env, parent, hint):
        if isinstance(node, phys.QueryPlan):
            return self._emit_query(node, env, parent, hint)
        emit = self._EMIT.get(type(node))
        if emit is None:
            raise SQLError(
                f"no batch implementation for {type(node).__name__}; "
                f"the planner should have kept this plan on the row path"
            )
        return emit(self, node, env, parent, hint)

    # -- scans -----------------------------------------------------------
    def _emit_result0(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)

        def gen():
            yield [()]

        return self._traced(stats, gen())

    def _scan_chunks(self, table, predicates, hint):
        """Batched heap scan with buffer-pool readahead.

        A row-limit hint disables readahead: a bounded query may stop
        mid-table, and prefetching past the stopping page would charge
        reads the row executor never performs. Page-I/O parity with the
        row path is a harder invariant than prefetch throughput.
        """
        params = self.params
        size = self._chunk_size(hint)
        readahead = self.readahead if hint is None else 0
        check = _predicate(predicates)

        def gen():
            scan = table.scan(readahead=readahead)
            chunk: list[tuple] = []
            try:
                if check is not None:
                    for row in scan:
                        if check(row, params):
                            chunk.append(row)
                            if len(chunk) >= size:
                                yield chunk
                                chunk = []
                else:
                    for row in scan:
                        chunk.append(row)
                        if len(chunk) >= size:
                            yield chunk
                            chunk = []
                if chunk:
                    yield chunk
            finally:
                scan.close()

        return gen()

    def _emit_seq_scan(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        table = self.catalog.get(node.table)
        return self._traced(
            stats, self._scan_chunks(table, node.filters, hint)
        )

    def _emit_pk_lookup(self, node, env, parent, hint):
        params = self.params
        table = self.catalog.get(node.table)
        key = tuple(fn((), params) for fn in node.key_fns)
        if all(isinstance(k, int) for k in key):
            stats = self._node(node.name, node.detail, parent)
            check = _predicate(node.filters)

            def gen():
                row = table.lookup(key)
                if row is None:
                    return
                if check is None or check(row, params):
                    yield [row]

            return self._traced(stats, gen())
        # Same degradation as the row executor: a non-integer parameter can
        # never match a B+Tree key, so scan and apply the pin predicates.
        stats = self._node("Seq Scan", f"on {node.table}", parent)
        predicates = list(node.pin_fns) + list(node.filters)
        return self._traced(stats, self._scan_chunks(table, predicates, hint))

    def _emit_cte_scan(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        params = self.params
        check = _predicate(node.filters)
        size = self._chunk_size(hint)

        def gen():
            rows = env[node.cte_name]
            if check is not None:
                chunk = []
                for row in rows:
                    if check(row, params):
                        chunk.append(row)
                        if len(chunk) >= size:
                            yield chunk
                            chunk = []
                if chunk:
                    yield chunk
            else:
                for start in range(0, len(rows), size):
                    yield rows[start : start + size]

        return self._traced(stats, gen())

    def _emit_subquery_scan(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        params = self.params
        check = _predicate(node.filters)
        inner = self._emit_query(
            node.subplan, env, stats, hint if check is None else None
        )

        def gen():
            try:
                if check is None:
                    # Pass-through: the same chunk objects flow upward.
                    yield from inner
                else:
                    for chunk in inner:
                        out = [row for row in chunk if check(row, params)]
                        if out:
                            yield out
            finally:
                inner.close()

        return self._traced(stats, gen())

    # -- joins -----------------------------------------------------------
    def _emit_inl(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        if stats is not None:
            stats.loops = 0
        left = self._emit(node.left, env, stats, None)
        table = self.catalog.get(node.table)
        params = self.params
        key_fns = node.key_fns
        check = _predicate(node.filters)

        def gen():
            probe_cache: dict = {}
            lookup = table.lookup
            try:
                for chunk in left:
                    if stats is not None:
                        stats.loops += len(chunk)
                    out = []
                    for left_row in chunk:
                        key = tuple(fn(left_row, params) for fn in key_fns)
                        if any(not isinstance(k, int) for k in key):
                            continue
                        if key in probe_cache:
                            match = probe_cache[key]
                        else:
                            match = lookup(key)
                            probe_cache[key] = match
                        if match is None:
                            continue
                        row = left_row + match
                        if check is None or check(row, params):
                            out.append(row)
                    if out:
                        yield out
            finally:
                left.close()

        return self._traced(stats, gen())

    def _build_buckets(self, right, right_key):
        params = self.params
        buckets: dict = {}
        for chunk in right:
            for row in chunk:
                key = right_key(row, params)
                if key is None:
                    continue
                buckets.setdefault(key, []).append(row)
        return buckets

    def _emit_hash_join(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        left = self._emit(node.left, env, stats, None)
        right = self._emit(node.right, env, stats, None)
        params = self.params
        left_key = node.left_key
        check = _predicate(node.filters)

        def gen():
            try:
                buckets = self._build_buckets(right, node.right_key)
                for chunk in left:
                    out = []
                    for row in chunk:
                        key = left_key(row, params)
                        if key is None:
                            continue
                        matches = buckets.get(key)
                        if not matches:
                            continue
                        if check is not None:
                            for match in matches:
                                joined = row + match
                                if check(joined, params):
                                    out.append(joined)
                        else:
                            for match in matches:
                                out.append(row + match)
                    if out:
                        yield out
            finally:
                left.close()
                right.close()

        return self._traced(stats, gen())

    def _emit_nested_loop(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        left = self._emit(node.left, env, stats, None)
        right = self._emit(node.right, env, stats, None)
        params = self.params
        check = _predicate(node.filters)
        size = self.batch_size

        def gen():
            try:
                right_rows: list[tuple] = []
                for chunk in right:
                    right_rows.extend(chunk)
                for chunk in left:
                    out = []
                    for left_row in chunk:
                        for right_row in right_rows:
                            row = left_row + right_row
                            if check is None or check(row, params):
                                out.append(row)
                        if len(out) >= size:
                            yield out
                            out = []
                    if out:
                        yield out
            finally:
                left.close()
                right.close()

        return self._traced(stats, gen())

    # -- row pipeline -----------------------------------------------------
    def _emit_filter(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats, None)
        params = self.params
        check = _predicate(node.predicates)

        def gen():
            try:
                if check is None:
                    yield from child
                    return
                for chunk in child:
                    out = [row for row in chunk if check(row, params)]
                    if out:
                        yield out
            finally:
                child.close()

        return self._traced(stats, gen())

    def _expand_srfs(self, row, srf_fns):
        """Evaluate this row's SRF arguments, with the row path's checks."""
        arrays = []
        max_len = 0
        for fn in srf_fns:
            value = fn(row, self.params)
            if value is None:
                value = []
            elif not isinstance(value, (list, tuple)):
                raise SQLTypeError(f"UNNEST expects an array, got {value!r}")
            arrays.append(value)
            if len(value) > max_len:
                max_len = len(value)
        return arrays, max_len

    def _emit_unnest(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats, None)
        srf_fns = node.srf_fns
        size = self.batch_size

        def gen():
            try:
                out: list[tuple] = []
                for chunk in child:
                    for row in chunk:
                        arrays, max_len = self._expand_srfs(row, srf_fns)
                        if len(arrays) == 1:
                            out.extend(row + (v,) for v in arrays[0])
                        else:
                            for j in range(max_len):
                                out.append(
                                    row
                                    + tuple(
                                        arr[j] if j < len(arr) else None
                                        for arr in arrays
                                    )
                                )
                        if len(out) >= size:
                            yield out
                            out = []
                if out:
                    yield out
            finally:
                child.close()

        return self._traced(stats, gen())

    def _emit_window(self, node, env, parent, hint):  # pragma: no cover
        raise SQLError(
            "WindowAgg has no batch implementation; plan should be row-mode"
        )

    def _emit_project(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        specs = node.key_specs
        ints_only = specs is None or all(isinstance(s, int) for s in specs)
        child_node = node.child
        if (
            isinstance(child_node, phys.Unnest)
            and getattr(child_node, "srf_positions", None)
            and ints_only
        ):
            return self._traced(
                stats,
                self._fused_unnest_project(node, child_node, env, stats),
            )
        if isinstance(child_node, phys.Filter) and specs is None:
            return self._traced(
                stats,
                self._fused_filter_project(node, child_node, env, stats),
            )
        child = self._emit(child_node, env, stats, hint)
        params = self.params
        item_fns = node.item_fns
        simple_cols = getattr(node, "simple_cols", None)

        def gen():
            try:
                if specs is None:
                    if simple_cols is not None:
                        for chunk in child:
                            yield [
                                tuple(row[i] for i in simple_cols)
                                for row in chunk
                            ]
                    else:
                        for chunk in child:
                            yield [
                                tuple(fn(row, params) for fn in item_fns)
                                for row in chunk
                            ]
                else:
                    for chunk in child:
                        out = []
                        for row in chunk:
                            output = tuple(
                                fn(row, params) for fn in item_fns
                            )
                            key = tuple(
                                output[s] if isinstance(s, int) else s(row, params)
                                for s in specs
                            )
                            out.append((output, key))
                        yield out
            finally:
                child.close()

        return self._traced(stats, gen())

    def _fused_filter_project(self, node, fnode, env, stats):
        """Filter + Project in one pass per batch. The Filter node stays in
        the trace (rows = survivors) but its kernel cost is the Project's."""
        fstats = self._node(fnode.name, fnode.detail, stats)
        child = self._emit(fnode.child, env, fstats, None)
        params = self.params
        check = _predicate(fnode.predicates)
        item_fns = node.item_fns

        def gen():
            try:
                for chunk in child:
                    kept = [row for row in chunk if check(row, params)]
                    if fstats is not None:
                        fstats.rows += len(kept)
                    if kept:
                        yield [
                            tuple(fn(row, params) for fn in item_fns)
                            for row in kept
                        ]
            finally:
                child.close()
                _sync_fused(fstats)

        return gen()

    def _fused_unnest_project(self, node, unode, env, stats):
        """The array-expansion kernel (slice + FLOOR projection, Codes 2-4).

        Non-SRF select items only reference pre-expansion columns, so they
        are evaluated once per *input* row; SRF items are array elements
        taken column-wise. Output rows are identical to Unnest-then-Project
        (shorter arrays pad with NULL, empty arrays emit nothing).
        """
        ustats = self._node(unode.name, unode.detail, stats)
        child = self._emit(unode.child, env, ustats, None)
        params = self.params
        srf_fns = unode.srf_fns
        srf_of = {pos: k for k, pos in enumerate(unode.srf_positions)}
        item_fns = node.item_fns
        specs = node.key_specs
        size = self.batch_size
        n_items = len(item_fns)
        single = None
        if len(srf_of) == 1 and len(srf_fns) == 1:
            single = next(iter(srf_of))  # the lone SRF's item position

        def gen():
            try:
                out: list = []
                for chunk in child:
                    for row in chunk:
                        arrays, max_len = self._expand_srfs(row, srf_fns)
                        if not max_len:
                            continue
                        base = [None] * n_items
                        for i, fn in enumerate(item_fns):
                            if i not in srf_of:
                                base[i] = fn(row, params)
                        if ustats is not None:
                            ustats.rows += max_len
                        if single is not None:
                            before = tuple(base[:single])
                            after = tuple(base[single + 1 :])
                            out.extend(
                                before + (v,) + after for v in arrays[0]
                            )
                        else:
                            for j in range(max_len):
                                output = list(base)
                                for pos, k in srf_of.items():
                                    arr = arrays[k]
                                    output[pos] = (
                                        arr[j] if j < len(arr) else None
                                    )
                                out.append(tuple(output))
                        if len(out) >= size:
                            yield self._keyed(out, specs)
                            out = []
                if out:
                    yield self._keyed(out, specs)
            finally:
                child.close()
                _sync_fused(ustats)

        return gen()

    def _keyed(self, rows, specs):
        """Attach integer-spec sort keys to a chunk of output rows."""
        if specs is None:
            return rows
        return [
            (row, tuple(row[s] for s in specs)) for row in rows
        ]

    # -- aggregation ------------------------------------------------------
    def _emit_aggregate(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        spec = getattr(node, "simple_spec", None)
        if spec is not None:
            gen = self._streaming_aggregate(node, spec, env, stats)
        else:
            gen = self._generic_aggregate(node, env, stats)
        return self._traced(stats, gen)

    def _streaming_aggregate(self, node, spec, env, stats):
        """Fold rows into per-group accumulators as batches arrive.

        When the input is a HashJoin this is the fused hub-intersection
        kernel: probe results feed the accumulators directly and the join
        output is never materialized.
        """
        params = self.params
        group_fns = node.group_fns
        key_specs = node.key_specs  # all ints (simple_spec contract)
        size = self.batch_size

        first_needed = any(entry[0] == "first" for entry in spec)
        agg_items = []  # (slot, arg_fn or None for COUNT(*), step fn)
        finalizers = []
        init = []
        for slot, entry in enumerate(spec):
            kind = entry[0]
            if kind == "first":
                gfn = entry[1]
                init.append(None)

                def fin(accs, first, _fn=gfn):
                    return _fn(first, params)

            elif kind == "count*":
                init.append(0)
                agg_items.append((slot, None, None))

                def fin(accs, first, _s=slot):
                    return accs[_s]

            else:
                name, arg_fn = entry[1], entry[2]
                init.append(0 if name == "count" else None)
                agg_items.append((slot, arg_fn, _make_step(name)))
                if name == "avg":
                    def fin(accs, first, _s=slot):
                        acc = accs[_s]
                        return None if acc is None else acc[0] / acc[1]
                else:
                    def fin(accs, first, _s=slot):
                        return accs[_s]

            finalizers.append(fin)

        def feed(row, groups):
            if group_fns:
                key = _hashable(
                    tuple(fn(row, params) for fn in group_fns)
                )
            else:
                key = ()
            state = groups.get(key)
            if state is None:
                state = groups[key] = (
                    [row] if first_needed else [],
                    list(init),
                )
            accs = state[1]
            for slot, arg_fn, step in agg_items:
                if arg_fn is None:
                    accs[slot] += 1
                else:
                    accs[slot] = step(accs[slot], arg_fn(row, params))

        def finalize(groups):
            if not groups and not group_fns:
                groups[()] = ([], list(init))  # scalar agg over no rows
            out = []
            for _key, (first, accs) in groups.items():
                row = tuple(fin(accs, first) for fin in finalizers)
                if key_specs is None:
                    out.append(row)
                else:
                    out.append((row, tuple(row[s] for s in key_specs)))
                if len(out) >= size:
                    yield out
                    out = []
            if out:
                yield out

        if isinstance(node.child, phys.HashJoin):
            return self._fused_join_aggregate(node.child, env, stats, feed, finalize)

        child = self._emit(node.child, env, stats, None)

        def gen():
            groups: dict = {}
            try:
                for chunk in child:
                    for row in chunk:
                        feed(row, groups)
            finally:
                child.close()
            yield from finalize(groups)

        return gen()

    def _fused_join_aggregate(self, jnode, env, stats, feed, finalize):
        """Hub intersection: HashJoin probe feeding aggregate accumulators."""
        jstats = self._node(jnode.name, jnode.detail, stats)
        left = self._emit(jnode.left, env, jstats, None)
        right = self._emit(jnode.right, env, jstats, None)
        params = self.params
        left_key = jnode.left_key
        check = _predicate(jnode.filters)

        def gen():
            groups: dict = {}
            joined = 0
            try:
                buckets = self._build_buckets(right, jnode.right_key)
                for chunk in left:
                    for row in chunk:
                        key = left_key(row, params)
                        if key is None:
                            continue
                        matches = buckets.get(key)
                        if not matches:
                            continue
                        for match in matches:
                            out = row + match
                            if check is not None and not check(out, params):
                                continue
                            joined += 1
                            feed(out, groups)
            finally:
                left.close()
                right.close()
                if jstats is not None:
                    jstats.rows = joined
                _sync_fused(jstats)
            yield from finalize(groups)

        return gen()

    def _generic_aggregate(self, node, env, stats):
        """Materializing fallback: exactly the row executor's algorithm,
        fed by batches (HAVING, DISTINCT aggregates, array_agg, ...)."""
        child = self._emit(node.child, env, stats, None)
        params = self.params
        size = self.batch_size

        def gen():
            rows: list[tuple] = []
            try:
                for chunk in child:
                    rows.extend(chunk)
            finally:
                child.close()
            if node.group_fns:
                groups: dict = {}
                for row in rows:
                    key = _hashable(
                        tuple(fn(row, params) for fn in node.group_fns)
                    )
                    groups.setdefault(key, []).append(row)
                group_list = list(groups.values())
            else:
                group_list = [rows]  # one group, possibly empty
            out = []
            for group_rows in group_list:
                if (
                    node.having_fn is not None
                    and node.having_fn(group_rows, params) is not True
                ):
                    continue
                output = tuple(
                    fn(group_rows, params) for fn in node.item_fns
                )
                if node.key_specs is None:
                    out.append(output)
                else:
                    key = tuple(
                        output[s]
                        if isinstance(s, int)
                        else s(group_rows, params)
                        for s in node.key_specs
                    )
                    out.append((output, key))
                if len(out) >= size:
                    yield out
                    out = []
            if out:
                yield out

        return gen()

    def _emit_distinct(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats, None)

        def gen():
            seen = set()
            try:
                if node.keyed:
                    for chunk in child:
                        out = []
                        for row, key in chunk:
                            h = _hashable(row)
                            if h not in seen:
                                seen.add(h)
                                out.append((row, key))
                        if out:
                            yield out
                else:
                    for chunk in child:
                        out = []
                        for row in chunk:
                            h = _hashable(row)
                            if h not in seen:
                                seen.add(h)
                                out.append(row)
                        if out:
                            yield out
            finally:
                child.close()

        return self._traced(stats, gen())

    # -- ordering / limiting ----------------------------------------------
    def _emit_sort(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats, None)
        params = self.params
        size = self.batch_size

        def gen():
            rows: list[tuple] = []
            keys: list[tuple] = []
            try:
                if node.keyed:
                    for chunk in child:
                        for row, key in chunk:
                            rows.append(row)
                            keys.append(key)
                else:
                    key_fns = node.key_fns
                    for chunk in child:
                        for row in chunk:
                            rows.append(row)
                            keys.append(
                                tuple(fn(row, params) for fn in key_fns)
                            )
            finally:
                child.close()
            ordered = _sort_rows(
                rows, len(node.descending), keys, node.descending
            )
            for start in range(0, len(ordered), size):
                yield ordered[start : start + size]

        return self._traced(stats, gen())

    def _emit_topk(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats, None)
        params = self.params
        limit = self._const_int(node.limit_fn)
        offset = (
            self._const_int(node.offset_fn)
            if node.offset_fn is not None
            else 0
        )
        descending = node.descending
        keep = offset + limit
        size = self.batch_size

        def gen():
            # Entries are (composite_key, input_seq, row): the explicit
            # sequence number reproduces nsmallest's stability exactly (and
            # guarantees rows are never compared), while the bounded merge
            # keeps at most keep + batch_size entries alive at once.
            best: list = []
            seq = 0
            try:
                if node.keyed:
                    for chunk in child:
                        entries = [
                            (composite_key(key, descending), s, row)
                            for s, (row, key) in enumerate(chunk, seq)
                        ]
                        seq += len(chunk)
                        best = heapq.nsmallest(keep, best + entries)
                else:
                    key_fns = node.key_fns
                    for chunk in child:
                        entries = [
                            (
                                composite_key(
                                    tuple(fn(row, params) for fn in key_fns),
                                    descending,
                                ),
                                s,
                                row,
                            )
                            for s, row in enumerate(chunk, seq)
                        ]
                        seq += len(chunk)
                        best = heapq.nsmallest(keep, best + entries)
            finally:
                child.close()
            out = [row for _key, _seq, row in best[offset:]]
            for start in range(0, len(out), size):
                yield out[start : start + size]

        return self._traced(stats, gen())

    def _emit_limit(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        limit = (
            self._const_int(node.limit_fn)
            if node.limit_fn is not None
            else None
        )
        offset = (
            self._const_int(node.offset_fn)
            if node.offset_fn is not None
            else 0
        )
        child_hint = None if limit is None else offset + limit
        child = self._emit(node.child, env, stats, child_hint)

        def gen():
            skip = offset
            remaining = limit
            try:
                if remaining == 0:
                    return
                for chunk in child:
                    if skip:
                        if len(chunk) <= skip:
                            skip -= len(chunk)
                            continue
                        chunk = chunk[skip:]
                        skip = 0
                    if remaining is None:
                        yield chunk
                        continue
                    if len(chunk) >= remaining:
                        yield chunk[:remaining]
                        return
                    remaining -= len(chunk)
                    yield chunk
            finally:
                child.close()

        return self._traced(stats, gen())

    def _emit_union(self, node, env, parent, hint):
        stats = self._node(node.name, node.detail, parent)
        left = self._emit(node.left, env, stats, None)
        right = self._emit(node.right, env, stats, None)

        def gen():
            try:
                if node.op == "UNION":
                    seen = set()
                    for source in (left, right):
                        for chunk in source:
                            out = []
                            for row in chunk:
                                key = _hashable(row)
                                if key not in seen:
                                    seen.add(key)
                                    out.append(row)
                            if out:
                                yield out
                else:  # UNION ALL
                    yield from left
                    yield from right
            finally:
                left.close()
                right.close()

        return self._traced(stats, gen())

    _EMIT = {
        phys.Result0: _emit_result0,
        phys.SeqScan: _emit_seq_scan,
        phys.PkLookup: _emit_pk_lookup,
        phys.CteScan: _emit_cte_scan,
        phys.SubqueryScan: _emit_subquery_scan,
        phys.IndexNestedLoop: _emit_inl,
        phys.HashJoin: _emit_hash_join,
        phys.NestedLoop: _emit_nested_loop,
        phys.Filter: _emit_filter,
        phys.Unnest: _emit_unnest,
        phys.Window: _emit_window,
        phys.Project: _emit_project,
        phys.Aggregate: _emit_aggregate,
        phys.Distinct: _emit_distinct,
        phys.Sort: _emit_sort,
        phys.TopK: _emit_topk,
        phys.Limit: _emit_limit,
        phys.Union: _emit_union,
    }
