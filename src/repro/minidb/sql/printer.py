"""AST -> SQL text rendering.

Used for debugging/EXPLAIN-style introspection and, importantly, for the
parser round-trip property test: ``parse(render(parse(sql)))`` must yield
the original AST, which pins down both the parser and this printer.
"""

from __future__ import annotations

from repro.errors import SQLError
from repro.minidb.sql import ast

_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 4, "<>": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5, "||": 5,
    "*": 6, "/": 6, "%": 6,
}


def render_expr(expr: ast.Expr, parent_precedence: int = 0) -> str:
    if isinstance(expr, ast.Literal):
        value = expr.value
        if value is None:
            return "NULL"
        if value is True:
            return "TRUE"
        if value is False:
            return "FALSE"
        if isinstance(value, str):
            return "'" + value.replace("'", "''") + "'"
        return repr(value)
    if isinstance(expr, ast.Param):
        return f"${expr.index}"
    if isinstance(expr, ast.ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, ast.Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, ast.BinaryOp):
        precedence = _PRECEDENCE[expr.op]
        left = render_expr(expr.left, precedence)
        right = render_expr(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if precedence < parent_precedence else text
    if isinstance(expr, ast.UnaryOp):
        operand = render_expr(expr.operand, 7)
        return f"NOT {operand}" if expr.op == "NOT" else f"-{operand}"
    if isinstance(expr, ast.IsNull):
        base = render_expr(expr.operand, 4)
        return f"{base} IS {'NOT ' if expr.negated else ''}NULL"
    if isinstance(expr, ast.InList):
        base = render_expr(expr.operand, 4)
        items = ", ".join(render_expr(i) for i in expr.items)
        return f"{base} {'NOT ' if expr.negated else ''}IN ({items})"
    if isinstance(expr, ast.FuncCall):
        if expr.star:
            inner = "*"
        else:
            inner = ", ".join(render_expr(a) for a in expr.args)
            if expr.distinct:
                inner = f"DISTINCT {inner}"
            if expr.agg_order_by:
                inner += " ORDER BY " + _render_order(expr.agg_order_by)
        return f"{expr.name.upper()}({inner})"
    if isinstance(expr, ast.WindowFunc):
        over = []
        if expr.partition_by:
            over.append(
                "PARTITION BY " + ", ".join(render_expr(e) for e in expr.partition_by)
            )
        if expr.order_by:
            over.append("ORDER BY " + _render_order(expr.order_by))
        return f"{expr.name.upper()}() OVER ({' '.join(over)})"
    if isinstance(expr, ast.ArraySlice):
        low = render_expr(expr.low) if expr.low is not None else ""
        high = render_expr(expr.high) if expr.high is not None else ""
        return f"{render_expr(expr.base, 7)}[{low}:{high}]"
    if isinstance(expr, ast.ArrayIndex):
        return f"{render_expr(expr.base, 7)}[{render_expr(expr.index)}]"
    if isinstance(expr, ast.ArrayLiteral):
        return "ARRAY[" + ", ".join(render_expr(i) for i in expr.items) + "]"
    if isinstance(expr, ast.CaseExpr):
        parts = ["CASE"]
        for cond, result in expr.whens:
            parts.append(f"WHEN {render_expr(cond)} THEN {render_expr(result)}")
        if expr.default is not None:
            parts.append(f"ELSE {render_expr(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    raise SQLError(f"cannot render {type(expr).__name__}")


def _render_order(items) -> str:
    return ", ".join(
        render_expr(item.expr) + (" DESC" if item.descending else "")
        for item in items
    )


def _render_from(item) -> str:
    if isinstance(item, ast.TableRef):
        return f"{item.name} {item.alias}" if item.alias else item.name
    if isinstance(item, ast.SubqueryRef):
        return f"({render_query(item.query)}) {item.alias}"
    if isinstance(item, ast.Join):
        left = _render_from(item.left)
        right = _render_from(item.right)
        if item.condition is None:
            return f"{left} CROSS JOIN {right}"
        return f"{left} JOIN {right} ON {render_expr(item.condition)}"
    raise SQLError(f"cannot render FROM item {type(item).__name__}")


def _render_core(core: ast.SelectCore) -> str:
    parts = ["SELECT"]
    if core.distinct:
        parts.append("DISTINCT")
    items = []
    for item in core.items:
        text = render_expr(item.expr)
        if item.alias and not (
            isinstance(item.expr, ast.Star)
        ):
            text += f" AS {item.alias}"
        items.append(text)
    parts.append(", ".join(items))
    if core.from_items:
        parts.append("FROM " + ", ".join(_render_from(i) for i in core.from_items))
    if core.where is not None:
        parts.append("WHERE " + render_expr(core.where))
    if core.group_by:
        parts.append("GROUP BY " + ", ".join(render_expr(e) for e in core.group_by))
    if core.having is not None:
        parts.append("HAVING " + render_expr(core.having))
    return " ".join(parts)


def render_query(query: ast.Query) -> str:
    parts = []
    if query.ctes:
        ctes = ", ".join(
            f"{name} AS ({render_query(sub)})" for name, sub in query.ctes
        )
        parts.append(f"WITH {ctes}")
    pieces = []
    for core in query.cores:
        if isinstance(core, ast.Query):
            pieces.append(f"({render_query(core)})")
        else:
            pieces.append(_render_core(core))
    body = pieces[0]
    for op, piece in zip(query.set_ops, pieces[1:]):
        body += f" {op} {piece}"
    parts.append(body)
    if query.order_by:
        parts.append("ORDER BY " + _render_order(query.order_by))
    if query.limit is not None:
        parts.append("LIMIT " + render_expr(query.limit))
    if query.offset is not None:
        parts.append("OFFSET " + render_expr(query.offset))
    return " ".join(parts)


def render(stmt) -> str:
    """Render any parsed statement back to SQL text."""
    if isinstance(stmt, ast.Query):
        return render_query(stmt)
    if isinstance(stmt, ast.Explain):
        analyze = "ANALYZE " if stmt.analyze else ""
        return f"EXPLAIN {analyze}" + render(stmt.statement)
    if isinstance(stmt, ast.CreateTable):
        columns = ", ".join(f"{c.name} {c.type_name}" for c in stmt.columns)
        pk = ""
        if stmt.primary_key:
            pk = ", PRIMARY KEY (" + ", ".join(stmt.primary_key) + ")"
        ine = "IF NOT EXISTS " if stmt.if_not_exists else ""
        storage = (
            f" STORAGE = {stmt.storage.upper()}" if stmt.storage != "row" else ""
        )
        return f"CREATE TABLE {ine}{stmt.name} ({columns}{pk}){storage}"
    if isinstance(stmt, ast.DropTable):
        ie = "IF EXISTS " if stmt.if_exists else ""
        return f"DROP TABLE {ie}{stmt.name}"
    if isinstance(stmt, ast.Insert):
        columns = f" ({', '.join(stmt.columns)})" if stmt.columns else ""
        if stmt.select is not None:
            return f"INSERT INTO {stmt.table}{columns} {render_query(stmt.select)}"
        rows = ", ".join(
            "(" + ", ".join(render_expr(v) for v in row) + ")" for row in stmt.rows
        )
        return f"INSERT INTO {stmt.table}{columns} VALUES {rows}"
    if isinstance(stmt, ast.Update):
        sets = ", ".join(
            f"{col} = {render_expr(expr)}" for col, expr in stmt.assignments
        )
        where = f" WHERE {render_expr(stmt.where)}" if stmt.where is not None else ""
        return f"UPDATE {stmt.table} SET {sets}{where}"
    if isinstance(stmt, ast.Delete):
        where = f" WHERE {render_expr(stmt.where)}" if stmt.where is not None else ""
        return f"DELETE FROM {stmt.table}{where}"
    if isinstance(stmt, ast.Vacuum):
        return f"VACUUM {stmt.table}"
    raise SQLError(f"cannot render {type(stmt).__name__}")
