"""Logical-to-physical planner: lowers a parsed statement into a plan tree.

This is the planning half of what used to be a fused plan+execute monolith
in ``executor.py``. Planning is pure — no pages are read — and produces a
:class:`~repro.minidb.sql.plan.Plan` whose expressions are compiled to
``fn(ctx, params)`` closures with **deferred** parameter binding, so one
plan serves every parameter vector (the prepared-statement contract).

The access-path heuristics implement the three paths PTLDB's claims rest
on, in this order of preference:

* **primary-key pushdown** (:class:`PkLookup`) — conjuncts pinning every PK
  column of a table to a constant or parameter become a single B+Tree
  point lookup ("PTLDB needs to access exactly two rows" per v2v query);
* **index nested-loop join** (:class:`IndexNestedLoop`) — joining a derived
  relation against a base table on its full primary key probes at most one
  row per outer row (the optimized kNN/OTM queries);
* **hash join**, then a nested-loop cross product, for everything else.

Comma joins are reordered derived-first (CTEs and subqueries before base
tables) so the big label-side table ends up on the probed side — this is
what makes ``FROM knn_ea n1bb, n1`` touch only ``|n1|`` rows of ``knn_ea``,
as the paper requires.
"""

from __future__ import annotations

from repro.errors import SQLError, SQLNameError, SQLSyntaxError
from repro.minidb.values import is_array_type
from repro.minidb.sql import ast
from repro.minidb.sql import plan as phys
from repro.minidb.sql.functions import (
    AGGREGATE_FUNCTIONS,
    SET_RETURNING,
    get_scalar,
    is_aggregate,
)
from repro.minidb.sql.npbatch import np as _np
from repro.minidb.sql.printer import render_expr


# ---------------------------------------------------------------------------
# Expression helpers (shared with the executor)
# ---------------------------------------------------------------------------
def _flatten_and(expr: ast.Expr | None) -> list[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _contains_aggregate(expr) -> bool:
    if isinstance(expr, ast.FuncCall):
        if is_aggregate(expr.name):
            return True
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.IsNull):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.InList):
        return _contains_aggregate(expr.operand) or any(
            _contains_aggregate(i) for i in expr.items
        )
    if isinstance(expr, (ast.ArraySlice, ast.ArrayIndex)):
        inner = [expr.base]
        if isinstance(expr, ast.ArraySlice):
            inner += [e for e in (expr.low, expr.high) if e is not None]
        else:
            inner.append(expr.index)
        return any(_contains_aggregate(e) for e in inner)
    if isinstance(expr, ast.CaseExpr):
        parts = [e for pair in expr.whens for e in pair]
        if expr.default is not None:
            parts.append(expr.default)
        return any(_contains_aggregate(p) for p in parts)
    if isinstance(expr, ast.ArrayLiteral):
        return any(_contains_aggregate(i) for i in expr.items)
    return False


def _contains_srf(expr) -> bool:
    """Top-level set-returning call only: nested UNNEST is a compile error."""
    if isinstance(expr, ast.FuncCall) and expr.name in SET_RETURNING:
        return True
    return False


def _is_true(value) -> bool:
    return value is True


def _cmp(op: str, a, b):
    if a is None or b is None:
        return None
    if op == "=":
        return a == b
    if op == "<>":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise SQLError(f"unknown comparison {op}")


def _arith(op: str, a, b):
    if a is None or b is None:
        return None
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if isinstance(a, int) and isinstance(b, int):
            if b == 0:
                raise SQLError("division by zero")
            quotient = a // b
            if quotient < 0 and quotient * b != a:
                quotient += 1  # PostgreSQL truncates toward zero
            return quotient
        if b == 0:
            raise SQLError("division by zero")
        return a / b
    if op == "%":
        if b == 0:
            raise SQLError("division by zero")
        return a - b * int(a / b) if isinstance(a, int) and isinstance(b, int) else a % b
    if op == "||":
        if isinstance(a, (list, tuple)) or isinstance(b, (list, tuple)):
            left = list(a) if isinstance(a, (list, tuple)) else [a]
            right = list(b) if isinstance(b, (list, tuple)) else [b]
            return left + right
        return str(a) + str(b)
    raise SQLError(f"unknown operator {op}")


def _logic_and(a, b):
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def _logic_or(a, b):
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def _sort_rows(rows, key_fn_count: int, keys: list[tuple], descending: list[bool]):
    """Stable multi-key sort with NULLS LAST, honoring per-key direction.

    *rows* and *keys* are parallel lists; returns rows reordered.
    """
    order = list(range(len(rows)))
    for key_index in range(key_fn_count - 1, -1, -1):
        desc = descending[key_index]

        def sort_key(i, _k=key_index, _d=desc):
            value = keys[i][_k]
            if value is None:
                return (1, 0)
            return (0, _Reversed(value) if _d else value)

        order.sort(key=sort_key)
    return [rows[i] for i in order]


class _Reversed:
    """Wrapper inverting comparisons, for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return self.value == other.value


def composite_key(key: tuple, descending: list[bool]) -> tuple:
    """One totally-ordered sort key (NULLS LAST, per-key direction) — the
    single-pass equivalent of :func:`_sort_rows`, used by Top-K."""
    return tuple(
        (1, 0) if value is None else (0, _Reversed(value) if desc else value)
        for value, desc in zip(key, descending)
    )


def _hashable(row: tuple) -> tuple:
    return tuple(tuple(v) if isinstance(v, list) else v for v in row)


# ---------------------------------------------------------------------------
# numpy operand/comparison specs
# ---------------------------------------------------------------------------
# A spec is a small tuple tree the batch executor can evaluate over whole
# column batches (see repro.minidb.sql.npbatch): ("col", i), ("param", i),
# ("const", v), ("neg", spec), ("bin", op, a, b) with op in + - *,
# ("div", a, b), ("floor", spec), ("maxv"/"minv", spec, ...) for
# GREATEST/LEAST, and ("cmp", op, a, b). The division kernel reproduces
# SQL truncation toward zero exactly (numpy floors; the kernel adjusts)
# and refuses zero divisors so division-by-zero errors keep their row-path
# evaluation order. Specs are advisory: a None spec (or a runtime type
# the kernel rejects) falls back to the compiled closure with identical
# results.
_NP_CMP_OPS = ("=", "<>", "<", "<=", ">", ">=")


def _np_operand(expr, schema):
    if isinstance(expr, ast.Literal):
        value = expr.value
        if isinstance(value, int) and not isinstance(value, bool):
            return ("const", value)
        return None
    if isinstance(expr, ast.Param):
        return ("param", expr.index - 1)
    if isinstance(expr, ast.ColumnRef):
        try:
            return ("col", _resolve(schema, expr))
        except SQLError:
            return None
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _np_operand(expr.operand, schema)
        return None if inner is None else ("neg", inner)
    if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-", "*", "/"):
        left = _np_operand(expr.left, schema)
        right = _np_operand(expr.right, schema)
        if left is None or right is None:
            return None
        if expr.op == "/":
            return ("div", left, right)
        return ("bin", expr.op, left, right)
    if isinstance(expr, ast.FuncCall):
        name = expr.name.lower()
        if name == "floor" and len(expr.args) == 1:
            inner = _np_operand(expr.args[0], schema)
            return None if inner is None else ("floor", inner)
        if name in ("greatest", "least") and expr.args:
            parts = [_np_operand(arg, schema) for arg in expr.args]
            if any(part is None for part in parts):
                return None
            return ("maxv" if name == "greatest" else "minv", *parts)
    return None


def _np_cmp(conj, schema):
    """Comparison spec for one WHERE conjunct, or None."""
    if isinstance(conj, ast.BinaryOp) and conj.op in _NP_CMP_OPS:
        left = _np_operand(conj.left, schema)
        right = _np_operand(conj.right, schema)
        if left is not None and right is not None:
            return ("cmp", conj.op, left, right)
    return None


def _spec_cols(spec, out: set) -> None:
    """Collect every ``("col", i)`` index referenced by an np-spec tree."""
    kind = spec[0]
    if kind == "col":
        out.add(spec[1])
    elif kind in ("neg", "floor"):
        _spec_cols(spec[1], out)
    elif kind == "div":
        _spec_cols(spec[1], out)
        _spec_cols(spec[2], out)
    elif kind in ("bin", "cmp"):
        _spec_cols(spec[2], out)
        _spec_cols(spec[3], out)
    elif kind in ("maxv", "minv"):
        for part in spec[1:]:
            _spec_cols(part, out)


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------
def _resolve(schema, ref: ast.ColumnRef) -> int:
    matches = [
        i
        for i, (qual, name) in enumerate(schema)
        if name == ref.name and (ref.table is None or qual == ref.table)
    ]
    if not matches:
        raise SQLNameError(
            f"column {ref.table + '.' if ref.table else ''}{ref.name} not found"
        )
    if len(matches) > 1:
        # Defense in depth: the analyzer reports SEM003 for this before
        # execution; this path fires only with analysis opted out.
        raise SQLNameError(f"ambiguous column reference {ref.name!r}")
    return matches[0]


def compile_expr(expr, schema, grouped: bool, strict_names: bool = False):
    """Compile *expr* into ``fn(ctx, params)``.

    ``ctx`` is a row tuple, or the group's row list when ``grouped``.
    Parameters are *deferred*: the closure indexes into the vector passed at
    execution time, so compiled plans are parameter-independent and
    cacheable. A short vector is caught up front by the executor via the
    plan's ``param_indices``.
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda _ctx, _params, _v=value: _v
    if isinstance(expr, ast.Param):
        idx = expr.index - 1
        return lambda _ctx, params, _i=idx: params[_i]
    if isinstance(expr, ast.ColumnRef):
        idx = _resolve(schema, expr)
        if grouped:
            return lambda rows, _params, _i=idx: rows[0][_i] if rows else None
        return lambda row, _params, _i=idx: row[_i]
    if isinstance(expr, ast.BinaryOp):
        left = compile_expr(expr.left, schema, grouped, strict_names)
        right = compile_expr(expr.right, schema, grouped, strict_names)
        op = expr.op
        if op == "AND":
            return lambda ctx, params: _logic_and(left(ctx, params), right(ctx, params))
        if op == "OR":
            return lambda ctx, params: _logic_or(left(ctx, params), right(ctx, params))
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return lambda ctx, params, _op=op: _cmp(
                _op, left(ctx, params), right(ctx, params)
            )
        return lambda ctx, params, _op=op: _arith(
            _op, left(ctx, params), right(ctx, params)
        )
    if isinstance(expr, ast.UnaryOp):
        operand = compile_expr(expr.operand, schema, grouped, strict_names)
        if expr.op == "-":
            def _neg(ctx, params):
                value = operand(ctx, params)
                return None if value is None else -value

            return _neg
        if expr.op == "NOT":
            def _not(ctx, params):
                value = operand(ctx, params)
                return None if value is None else not value

            return _not
        raise SQLError(f"unknown unary operator {expr.op}")
    if isinstance(expr, ast.IsNull):
        operand = compile_expr(expr.operand, schema, grouped, strict_names)
        if expr.negated:
            return lambda ctx, params: operand(ctx, params) is not None
        return lambda ctx, params: operand(ctx, params) is None
    if isinstance(expr, ast.InList):
        operand = compile_expr(expr.operand, schema, grouped, strict_names)
        item_fns = [
            compile_expr(i, schema, grouped, strict_names) for i in expr.items
        ]
        negated = expr.negated

        def _in(ctx, params):
            value = operand(ctx, params)
            if value is None:
                return None
            hit = any(value == fn(ctx, params) for fn in item_fns)
            return (not hit) if negated else hit

        return _in
    if isinstance(expr, ast.ArraySlice):
        base = compile_expr(expr.base, schema, grouped, strict_names)
        low = (
            compile_expr(expr.low, schema, grouped, strict_names)
            if expr.low is not None
            else None
        )
        high = (
            compile_expr(expr.high, schema, grouped, strict_names)
            if expr.high is not None
            else None
        )

        def _slice(ctx, params):
            arr = base(ctx, params)
            if arr is None:
                return None
            lo = low(ctx, params) if low is not None else 1
            hi = high(ctx, params) if high is not None else len(arr)
            if lo is None or hi is None:
                return None
            lo = max(lo, 1)
            if isinstance(arr, list):
                return arr[lo - 1 : hi]
            if _np is not None and isinstance(arr, _np.ndarray):
                # np_decode batch cells: keep the (zero-copy) array view;
                # row-path cells are always lists, so row semantics hold.
                return arr[lo - 1 : hi]
            return list(arr[lo - 1 : hi])

        return _slice
    if isinstance(expr, ast.ArrayIndex):
        base = compile_expr(expr.base, schema, grouped, strict_names)
        index = compile_expr(expr.index, schema, grouped, strict_names)

        def _index(ctx, params):
            arr = base(ctx, params)
            i = index(ctx, params)
            if arr is None or i is None:
                return None
            if not 1 <= i <= len(arr):
                return None  # PostgreSQL: out-of-range subscript is NULL
            return arr[i - 1]

        return _index
    if isinstance(expr, ast.ArrayLiteral):
        item_fns = [
            compile_expr(i, schema, grouped, strict_names) for i in expr.items
        ]
        return lambda ctx, params: [fn(ctx, params) for fn in item_fns]
    if isinstance(expr, ast.CaseExpr):
        when_fns = [
            (
                compile_expr(cond, schema, grouped, strict_names),
                compile_expr(result, schema, grouped, strict_names),
            )
            for cond, result in expr.whens
        ]
        default_fn = (
            compile_expr(expr.default, schema, grouped, strict_names)
            if expr.default is not None
            else None
        )

        def _case(ctx, params):
            for cond_fn, result_fn in when_fns:
                if _is_true(cond_fn(ctx, params)):
                    return result_fn(ctx, params)
            return default_fn(ctx, params) if default_fn is not None else None

        return _case
    if isinstance(expr, ast.FuncCall):
        if is_aggregate(expr.name):
            return _compile_aggregate(expr, schema, grouped)
        if expr.name in SET_RETURNING:
            raise SQLSyntaxError(
                "UNNEST is only allowed as a top-level select item"
            )
        fn = get_scalar(expr.name)
        arg_fns = [
            compile_expr(a, schema, grouped, strict_names) for a in expr.args
        ]
        return lambda ctx, params, _f=fn: _f(*[a(ctx, params) for a in arg_fns])
    if isinstance(expr, ast.WindowFunc):
        raise SQLSyntaxError(
            "window functions are only allowed as top-level select items"
        )
    if isinstance(expr, ast.Star):
        raise SQLSyntaxError("* is only allowed in the select list")
    raise SQLError(f"cannot compile {type(expr).__name__}")


def _compile_aggregate(expr: ast.FuncCall, schema, grouped: bool):
    if not grouped:
        raise SQLSyntaxError(
            f"aggregate {expr.name}() used outside of aggregation context"
        )
    agg = AGGREGATE_FUNCTIONS[expr.name]
    if expr.star:
        if expr.name != "count":
            raise SQLSyntaxError(f"{expr.name}(*) is not valid")
        return lambda rows, _params: len(rows)
    if len(expr.args) != 1:
        raise SQLSyntaxError(f"{expr.name}() takes exactly one argument")
    arg_fn = compile_expr(expr.args[0], schema, grouped=False)
    order_fns = [
        compile_expr(item.expr, schema, grouped=False)
        for item in expr.agg_order_by
    ]
    descending = [item.descending for item in expr.agg_order_by]
    distinct = expr.distinct

    def _agg(rows, params):
        use_rows = rows
        if order_fns:
            keys = [tuple(fn(r, params) for fn in order_fns) for r in rows]
            use_rows = _sort_rows(list(rows), len(order_fns), keys, descending)
        values = [arg_fn(r, params) for r in use_rows]
        if distinct:
            seen = set()
            deduped = []
            for v in values:
                key = tuple(v) if isinstance(v, list) else v
                if key not in seen:
                    seen.add(key)
                    deduped.append(v)
            values = deduped
        return agg(values)

    return _agg


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------
def plan_statement(stmt, catalog) -> phys.Plan:
    """Lower one parsed statement into an executable physical plan."""
    planner = Planner(catalog)
    node = planner.plan(stmt)
    planner.finalize_np_decode()
    plan = phys.Plan(node, ast.param_indices(stmt))
    plan.batchable = phys.batch_capable(plan)
    phys.annotate_parallel(plan)
    return plan


class Planner:
    def __init__(self, catalog):
        self.catalog = catalog
        #: CTE name -> {"scan", "out_arr", "uses"}: candidates for the
        #: cross-CTE np_decode analysis (see _register_cte). Lives for one
        #: statement; finalize_np_decode resolves it after planning.
        self._cte_np: dict = {}

    # -- statements -----------------------------------------------------
    def plan(self, stmt):
        if isinstance(stmt, ast.Explain):
            inner = phys.Plan(
                self.plan(stmt.statement), ast.param_indices(stmt.statement)
            )
            return phys.ExplainPlan(stmt.analyze, inner)
        if isinstance(stmt, ast.Query):
            return self.plan_query(stmt, {})
        if isinstance(stmt, ast.CreateTable):
            return phys.CreateTablePlan(stmt)
        if isinstance(stmt, ast.DropTable):
            return phys.DropTablePlan(stmt.name, stmt.if_exists, ast_ref=stmt)
        if isinstance(stmt, ast.Insert):
            return self._plan_insert(stmt)
        if isinstance(stmt, ast.Delete):
            return self._plan_delete(stmt)
        if isinstance(stmt, ast.Update):
            return self._plan_update(stmt)
        if isinstance(stmt, ast.Vacuum):
            return phys.VacuumPlan(stmt.table, ast_ref=stmt)
        raise SQLError(f"cannot execute {type(stmt).__name__}")

    def _plan_insert(self, stmt: ast.Insert):
        table = self.catalog.get(stmt.table)
        schema = table.schema
        if stmt.columns:
            positions = [schema.column_index(c) for c in stmt.columns]
        else:
            positions = list(range(len(schema.columns)))
        select = None
        row_fns = []
        if stmt.select is not None:
            select = self.plan_query(stmt.select, {})
        else:
            row_fns = [
                [compile_expr(e, [], grouped=False) for e in row]
                for row in stmt.rows
            ]
        return phys.InsertPlan(
            stmt.table, positions, len(schema.columns), row_fns, select,
            ast_ref=stmt,
        )

    def _plan_delete(self, stmt: ast.Delete):
        table = self.catalog.get(stmt.table)
        schema = [(stmt.table, n) for n in table.schema.column_names]
        where_fn = (
            compile_expr(stmt.where, schema, grouped=False)
            if stmt.where is not None
            else None
        )
        return phys.DeletePlan(stmt.table, where_fn, ast_ref=stmt)

    def _plan_update(self, stmt: ast.Update):
        table = self.catalog.get(stmt.table)
        schema = [(stmt.table, n) for n in table.schema.column_names]
        positions = [
            table.schema.column_index(col) for col, _ in stmt.assignments
        ]
        value_fns = [
            compile_expr(expr, schema, grouped=False)
            for _, expr in stmt.assignments
        ]
        where_fn = (
            compile_expr(stmt.where, schema, grouped=False)
            if stmt.where is not None
            else None
        )
        return phys.UpdatePlan(stmt.table, positions, value_fns, where_fn, ast_ref=stmt)

    # -- queries --------------------------------------------------------
    def plan_query(self, query: ast.Query, env: dict) -> phys.QueryPlan:
        """Plan one query. ``env`` maps visible CTE names to their output
        column lists (plan-time only; rows exist only at execution)."""
        env = dict(env)
        ctes = []
        for name, cte_query in query.ctes:
            sub = self.plan_query(cte_query, env)
            ctes.append((name, sub))
            env[name] = sub.columns
            self._register_cte(name, sub)

        if len(query.cores) == 1 and isinstance(query.cores[0], ast.SelectCore):
            node, columns = self._plan_single(query, query.cores[0], env)
            return phys.QueryPlan(ctes, node, columns, ast_ref=query)

        # Set operation (or single parenthesized sub-query).
        parts = []
        for core in query.cores:
            if isinstance(core, ast.Query):
                parts.append(self.plan_query(core, env))
            else:
                bare = ast.Query(cores=(core,))
                node, columns = self._plan_single(bare, core, env)
                parts.append(phys.QueryPlan([], node, columns, ast_ref=core))
        width = len(parts[0].columns)
        for part in parts[1:]:
            if len(part.columns) != width:
                # Defense in depth: the analyzer rejects this statically
                # (TYP004) before any operand produces rows.
                raise SQLError("UNION operands have different column counts")
        node = parts[0]
        for op, part in zip(query.set_ops, parts[1:]):
            node = phys.Union(node, part, op)
        columns = parts[0].columns
        if query.order_by:
            schema = [(None, name) for name in columns]
            key_fns = [
                self._order_key_fn(item.expr, schema, columns)
                for item in query.order_by
            ]
            node = self._plan_order_limit(
                node, query, keyed=False, key_fns=key_fns
            )
        else:
            node = self._plan_order_limit(node, query, keyed=False, key_fns=None)
        return phys.QueryPlan(ctes, node, columns, ast_ref=query)

    def _order_key_fn(self, expr, schema, columns):
        """ORDER BY over set-operation output: position, name, or expr."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            idx = expr.value - 1
            return lambda row, _params, _i=idx: row[_i]
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for i, name in enumerate(columns):
                if name == expr.name:
                    return lambda row, _params, _i=i: row[_i]
        return compile_expr(expr, schema, grouped=False)

    def _plan_order_limit(self, node, query: ast.Query, keyed, key_fns):
        limit_fn = (
            compile_expr(query.limit, [], grouped=False)
            if query.limit is not None
            else None
        )
        offset_fn = (
            compile_expr(query.offset, [], grouped=False)
            if query.offset is not None
            else None
        )
        if query.order_by:
            descending = [item.descending for item in query.order_by]
            if limit_fn is not None:
                # The paper's kNN hot case: ORDER BY + LIMIT k keeps a
                # bounded heap instead of sorting everything.
                return phys.TopK(
                    node, descending, keyed, key_fns, limit_fn, offset_fn
                )
            node = phys.Sort(node, descending, keyed, key_fns)
            if offset_fn is not None:
                node = phys.Limit(node, None, offset_fn)
            return node
        if limit_fn is not None or offset_fn is not None:
            return phys.Limit(node, limit_fn, offset_fn)
        return node

    # -- single SELECT core ---------------------------------------------
    def _plan_single(self, query: ast.Query, core: ast.SelectCore, env: dict):
        conjuncts = _flatten_and(core.where)
        used: set[int] = set()
        node, schema = self._plan_from(core.from_items, env, conjuncts, used)

        # Residual WHERE predicates not pushed into a scan or join.
        residual = [c for i, c in enumerate(conjuncts) if i not in used]
        if residual:
            predicates = [
                compile_expr(c, schema, grouped=False) for c in residual
            ]
            node = phys.Filter(node, predicates, _predicate_detail(residual))
            node.filter_specs = [_np_cmp(c, schema) for c in residual]

        items = self._expand_stars(core.items, schema)
        items, schema, node = self._plan_srfs(items, schema, node)
        items, schema, node = self._plan_windows(items, schema, node)

        columns = [_output_name(item) for item in items]
        grouped = bool(core.group_by) or any(
            _contains_aggregate(item.expr) for item in items
        )
        order_items = query.order_by if len(query.cores) == 1 else ()

        if grouped:
            group_fns = [
                self._group_key_fn(expr, schema, items) for expr in core.group_by
            ]
            item_fns = [
                compile_expr(it.expr, schema, grouped=True) for it in items
            ]
            having_fn = (
                compile_expr(core.having, schema, grouped=True)
                if core.having is not None
                else None
            )
            key_specs = [
                self._grouped_order_key(it.expr, schema, items)
                for it in order_items
            ] or None
            node = phys.Aggregate(
                node, group_fns, item_fns, having_fn, key_specs,
                len(core.group_by),
            )
            node.simple_spec = self._simple_agg_spec(
                items, schema, having_fn, key_specs
            )
            if node.simple_spec is not None:
                node.np_spec = self._np_agg_spec(
                    items, schema, core.group_by, key_specs
                )
        else:
            item_fns = [
                compile_expr(it.expr, schema, grouped=False) for it in items
            ]
            key_specs = [
                self._order_key_for_core(it.expr, schema, items)
                for it in order_items
            ] or None
            node = phys.Project(node, item_fns, key_specs)
            node.simple_cols = self._simple_cols(items, schema)

        if core.distinct:
            node = phys.Distinct(node, keyed=bool(order_items))

        if len(query.cores) == 1:
            node = self._plan_order_limit(node, query, keyed=True, key_fns=None)
        return node, columns

    def _order_key_for_core(self, expr, schema, items):
        """Order key in a non-grouped core: alias, position, or expression.

        Returns an int (index into the output row) or ``fn(row, params)``
        over the input schema."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            return expr.value - 1  # positional: index into output row
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for i, item in enumerate(items):
                if _output_name(item) == expr.name:
                    # Prefer the already-computed output if the name is an
                    # alias not present in the input schema.
                    if not _name_in_schema(schema, expr.name):
                        return i
        idx = _match_output_expr(expr, items)
        if idx is not None:
            return idx
        return compile_expr(expr, schema, grouped=False)

    def _grouped_order_key(self, expr, schema, items):
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            return expr.value - 1
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for i, item in enumerate(items):
                if _output_name(item) == expr.name:
                    return i
        idx = _match_output_expr(expr, items)
        if idx is not None:
            return idx
        return compile_expr(expr, schema, grouped=True)

    def _group_key_fn(self, expr, schema, items):
        # GROUP BY may name a select alias (PostgreSQL extension).
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            if not _name_in_schema(schema, expr.name):
                for item in items:
                    if _output_name(item) == expr.name:
                        return compile_expr(item.expr, schema, grouped=False)
        return compile_expr(expr, schema, grouped=False)

    # -- batch-kernel metadata ------------------------------------------
    def _simple_agg_spec(self, items, schema, having_fn, key_specs):
        """Streaming-accumulator recipe for the batch executor, or None.

        Each select item lowers to one of

        * ``("first", grouped_fn)`` — aggregate-free; every supported
          aggregate-free expression only reads the group's first row, so
          the accumulator keeps one row per group instead of all of them;
        * ``("agg", name, arg_fn)`` — a bare MIN/MAX/SUM/COUNT/AVG over a
          per-row expression, folded incrementally with the exact NULL
          semantics of the :mod:`functions` aggregates;
        * ``("count*", None)`` — COUNT(*).

        HAVING needs the full group, as do DISTINCT/ORDER BY aggregates,
        aggregates nested inside expressions, and non-integer sort-key
        specs — any of those returns None and the batch executor falls
        back to materializing group row lists (still batched, identical
        semantics, just slower).
        """
        if having_fn is not None:
            return None
        if key_specs is not None and not all(
            isinstance(s, int) for s in key_specs
        ):
            return None
        spec = []
        for item in items:
            entry = self._simple_agg_item(item.expr, schema)
            if entry is None:
                return None
            spec.append(entry)
        return spec

    def _simple_agg_item(self, expr, schema):
        if not _contains_aggregate(expr):
            if _contains_srf(expr):
                return None
            try:
                return ("first", compile_expr(expr, schema, grouped=True))
            except SQLError:
                return None
        if not (isinstance(expr, ast.FuncCall) and is_aggregate(expr.name)):
            return None  # aggregate nested inside a larger expression
        if expr.star:
            return ("count*", None) if expr.name == "count" else None
        if expr.distinct or expr.agg_order_by:
            return None
        if expr.name not in ("min", "max", "sum", "count", "avg"):
            return None
        if len(expr.args) != 1:
            return None
        arg = expr.args[0]
        if _contains_aggregate(arg) or _contains_srf(arg):
            return None
        try:
            return ("agg", expr.name, compile_expr(arg, schema, grouped=False))
        except SQLError:
            return None

    def _np_agg_spec(self, items, schema, group_by, key_specs):
        """Whole-column aggregation recipe for the numpy kernel, or None.

        Stricter than :meth:`_simple_agg_spec` (which must already have
        accepted the query): group keys and aggregate-free items must be
        plain columns, and only MIN/MAX/COUNT/COUNT(*) lower — SUM/AVG stay
        on the streaming accumulators (int64 overflow and float-division
        semantics are not worth replicating in the kernel). Returns
        ``(group_cols, item_specs)`` with item specs ``("first", col)``,
        ``("count*",)`` or ``("agg", name, operand_spec)``.
        """
        if len(group_by) > 1:
            return None
        group_cols = []
        for expr in group_by:
            if not isinstance(expr, ast.ColumnRef):
                return None
            try:
                group_cols.append(_resolve(schema, expr))
            except SQLError:
                return None
        spec = []
        for item in items:
            expr = item.expr
            if not _contains_aggregate(expr):
                if not isinstance(expr, ast.ColumnRef):
                    return None
                try:
                    spec.append(("first", _resolve(schema, expr)))
                except SQLError:
                    return None
                continue
            if not (isinstance(expr, ast.FuncCall) and is_aggregate(expr.name)):
                return None
            if expr.star:
                if expr.name != "count":
                    return None
                spec.append(("count*",))
                continue
            if expr.name not in ("min", "max", "count") or len(expr.args) != 1:
                return None
            operand = _np_operand(expr.args[0], schema)
            if operand is None:
                return None
            spec.append(("agg", expr.name, operand))
        return tuple(group_cols), spec

    def _simple_cols(self, items, schema):
        """Input-column index per select item when all are plain columns."""
        cols = []
        for item in items:
            if not isinstance(item.expr, ast.ColumnRef):
                return None
            try:
                cols.append(_resolve(schema, item.expr))
            except SQLError:
                return None
        return cols

    # -- select-list machinery ------------------------------------------
    def _expand_stars(self, items, schema):
        out = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                table = item.expr.table
                matched = False
                for qual, name in schema:
                    if table is None or qual == table:
                        out.append(
                            ast.SelectItem(ast.ColumnRef(qual, name), alias=name)
                        )
                        matched = True
                if not matched:
                    raise SQLNameError(f"no columns match {table or ''}.*")
            else:
                out.append(item)
        return out

    def _plan_srfs(self, items, schema, node):
        srf_positions = [
            i for i, item in enumerate(items) if _contains_srf(item.expr)
        ]
        if not srf_positions:
            return items, schema, node
        srf_fns = []
        for i in srf_positions:
            expr = items[i].expr
            if not (
                isinstance(expr, ast.FuncCall) and expr.name in SET_RETURNING
            ):
                raise SQLSyntaxError(
                    "UNNEST must be the whole select expression in minidb"
                )
            if len(expr.args) != 1:
                raise SQLSyntaxError("UNNEST takes exactly one argument")
            srf_fns.append(compile_expr(expr.args[0], schema, grouped=False))

        new_schema = list(schema)
        new_items = list(items)
        for i in srf_positions:
            synth = f"__srf_{i}"
            new_schema.append((None, synth))
            new_items[i] = ast.SelectItem(
                ast.ColumnRef(None, synth), alias=items[i].alias or "unnest"
            )
        unnest = phys.Unnest(node, srf_fns)
        unnest.srf_positions = list(srf_positions)
        self._mark_np_decode(node, items, srf_positions, schema)
        return new_items, new_schema, unnest

    def _mark_np_decode(self, node, items, srf_positions, schema):
        """Let an UNNEST-feeding columnar scan decode arrays as ndarrays.

        Safe only when the array cells cannot reach any consumer that
        expects Python lists: every SRF argument must be a plain column
        reference (or an array slice over one), and every other select
        item plus every scan filter may touch scalar columns only. The
        check is conservative — failing it just keeps the
        (always-correct) list decode.

        A :class:`~repro.minidb.sql.plan.CteScan` source defers to the
        cross-CTE analysis instead: the scan itself decodes nothing, but
        proving that THIS use of the CTE only touches its array columns
        through UNNEST lets :meth:`finalize_np_decode` flip the flag on
        the scan that produced the CTE's rows.
        """
        if isinstance(node, phys.CteScan):
            self._mark_cte_use(node, items, srf_positions, schema)
            return
        arr = self._scan_np_arrays(node)
        if arr is None:
            return
        if self._items_np_safe(items, srf_positions, schema, arr):
            node.np_decode = True

    def _scan_np_arrays(self, node):
        """Output positions a scan could fill with ndarray cells, or None.

        The positions are the scanned columnar table's integer-array
        columns (offset by ``np_probe_base`` for an INL probe). None means
        the node is no candidate: wrong node/storage kind, no array
        columns, or key/filter machinery that would have to evaluate
        Python-list semantics on the array cells.
        """
        if not isinstance(
            node, (phys.SeqScan, phys.PkLookup, phys.IndexNestedLoop)
        ):
            return None
        try:
            table = self.catalog.get(node.table)
        except SQLError:
            return None
        tschema = table.schema
        if tschema.storage != "columnar":
            return None
        base = node.np_probe_base
        arr = {
            base + i
            for i, col in enumerate(tschema.columns)
            if is_array_type(col.type_tag)
        }
        if not arr:
            return None
        if any(
            tschema.column_index(c) + base in arr
            for c in getattr(node, "pk", ())
        ):
            return None
        filters = getattr(node, "filters", None) or []
        specs = node.filter_specs or []
        if len(specs) != len(filters) or any(s is None for s in specs):
            return None
        cols: set = set()
        for spec in specs:
            _spec_cols(spec, cols)
        if cols & arr:
            return None
        return arr

    def _items_np_safe(self, items, srf_positions, schema, arr):
        """True when select items confine *arr* positions to UNNEST args."""
        for i, item in enumerate(items):
            if i in srf_positions:
                if self._srf_arg_col(item.expr.args[0], schema, arr) is None:
                    return False
                continue
            for ref in ast.walk(item.expr):
                if not isinstance(ref, ast.ColumnRef):
                    continue
                try:
                    if _resolve(schema, ref) in arr:
                        return False
                except SQLError:
                    return False  # unresolvable (inner scope): conservative
        return True

    def _srf_arg_col(self, expr, schema, arr):
        """Input column an UNNEST argument reads, when ndarray-safe.

        Plain column references and array slices over one (with bounds
        free of array columns) evaluate identically on list and ndarray
        cells — the compiled slice closure preserves the ndarray view.
        Anything else returns None.
        """
        if isinstance(expr, ast.ColumnRef):
            try:
                return _resolve(schema, expr)
            except SQLError:
                return None
        if isinstance(expr, ast.ArraySlice) and isinstance(
            expr.base, ast.ColumnRef
        ):
            for bound in (expr.low, expr.high):
                if bound is None:
                    continue
                for ref in ast.walk(bound):
                    if not isinstance(ref, ast.ColumnRef):
                        continue
                    try:
                        if _resolve(schema, ref) in arr:
                            return None
                    except SQLError:
                        return None
            try:
                return _resolve(schema, expr.base)
            except SQLError:
                return None
        return None

    # -- cross-CTE np_decode ---------------------------------------------
    # The kNN/OTM plans probe the grouped label tables through an index
    # nested-loop whose rows materialize into a CTE; the UNNESTs then read
    # from CteScans, not from the probing scan itself. The analysis below
    # re-creates the direct-scan guarantee across that boundary: a CTE
    # whose rows come straight from a columnar scan (via a column-picking
    # Project) may carry ndarray cells iff EVERY scan of the CTE touches
    # those positions only as UNNEST arguments.

    def _register_cte(self, name, sub):
        """Record *name* as an np_decode candidate if its plan qualifies."""
        if name in self._cte_np:
            # Shadowed CTE name: use attribution would be ambiguous, so
            # neither definition participates.
            self._cte_np[name]["scan"] = None
            return
        info = {"scan": None, "out_arr": frozenset(), "uses": []}
        self._cte_np[name] = info
        root = sub.root
        if (
            not isinstance(root, phys.Project)
            or root.simple_cols is None
            or root.key_specs is not None
        ):
            return
        scan = root.child
        arr = self._scan_np_arrays(scan)
        if arr is None:
            return
        out_arr = frozenset(
            out_i
            for out_i, col_i in enumerate(root.simple_cols)
            if col_i in arr
        )
        if not out_arr:
            # The projection drops every array column before anything
            # downstream sees the rows: always safe, and the scan still
            # skips the list materialization.
            scan.np_decode = True
            return
        info["scan"] = scan
        info["out_arr"] = out_arr

    def _mark_cte_use(self, node, items, srf_positions, schema):
        """Upgrade one recorded CteScan use to "safe" if provably so."""
        info = self._cte_np.get(node.cte_name)
        if info is None or info["scan"] is None:
            return
        record = next((r for r in info["uses"] if r[0] is node), None)
        if record is None:
            return
        out_arr = info["out_arr"]
        filters = node.filters or []
        specs = node.filter_specs or []
        if len(specs) != len(filters) or any(s is None for s in specs):
            return
        cols: set = set()
        for spec in specs:
            _spec_cols(spec, cols)
        if cols & out_arr:
            return
        if not self._items_np_safe(items, srf_positions, schema, out_arr):
            return
        record[1] = True

    def finalize_np_decode(self):
        """Flip np_decode on CTE-producing scans once all uses are known.

        Called by :func:`plan_statement` after the whole statement is
        planned. A use that never reached :meth:`_mark_cte_use` (a join
        source, a SELECT without SRFs) stays unsafe and vetoes the flag —
        conservative by construction.
        """
        for info in self._cte_np.values():
            scan = info["scan"]
            if scan is None or not info["uses"]:
                continue
            if all(safe for _node, safe in info["uses"]):
                scan.np_decode = True

    def _plan_windows(self, items, schema, node):
        win_positions = [
            i
            for i, item in enumerate(items)
            if isinstance(item.expr, ast.WindowFunc)
        ]
        if not win_positions:
            return items, schema, node
        new_schema = list(schema)
        new_items = list(items)
        specs = []
        for i in win_positions:
            win = items[i].expr
            if win.name != "row_number":
                raise SQLError(f"unsupported window function {win.name!r}")
            specs.append(
                phys.WindowSpec(
                    [
                        compile_expr(e, schema, grouped=False)
                        for e in win.partition_by
                    ],
                    [
                        compile_expr(it.expr, schema, grouped=False)
                        for it in win.order_by
                    ],
                    [it.descending for it in win.order_by],
                )
            )
            synth = f"__win_{i}"
            new_schema.append((None, synth))
            new_items[i] = ast.SelectItem(
                ast.ColumnRef(None, synth),
                alias=items[i].alias or "row_number",
            )
        return new_items, new_schema, phys.Window(node, specs)

    # -- FROM clause ----------------------------------------------------
    def _plan_from(self, from_items, env, conjuncts, used):
        if not from_items:
            return phys.Result0(), []
        sources = []  # (item, on_conjuncts)
        for item in from_items:
            self._flatten_joins(item, sources)
        # Join-order heuristic: derived relations (CTEs, subqueries) first so
        # base tables can be probed by index nested-loop instead of scanned —
        # this is what makes "FROM knn_ea n1bb, n1" touch only |n1| rows of
        # knn_ea, as the paper requires. Comma joins only (ON pins order).
        if len(sources) > 1 and all(not on for _, on in sources):
            def _derived(source):
                item = source[0]
                if isinstance(item, ast.SubqueryRef):
                    return True
                return isinstance(item, ast.TableRef) and item.name in env

            small = [s for s in sources if _derived(s)]
            large = [s for s in sources if not _derived(s)]
            sources = small + large
        node, schema = self._plan_source(sources[0], env, conjuncts, used)
        for source in sources[1:]:
            node, schema = self._plan_join(
                node, schema, source, env, conjuncts, used
            )
        return node, schema

    def _flatten_joins(self, item, out, on_conjuncts=None):
        if isinstance(item, ast.Join):
            self._flatten_joins(item.left, out)
            self._flatten_joins(item.right, out, _flatten_and(item.condition))
            return
        out.append((item, on_conjuncts or []))

    def _plan_source(self, source, env, conjuncts, used):
        item, on_conjuncts = source
        all_conj = list(enumerate(conjuncts))
        if isinstance(item, ast.SubqueryRef):
            subplan = self.plan_query(item.query, env)
            schema = [(item.alias, n) for n in subplan.columns]
            filters, specs, _ = self._source_filters(
                schema, all_conj, on_conjuncts, used
            )
            node = phys.SubqueryScan(item.alias, subplan, filters, ast_ref=item)
            node.filter_specs = specs
            return node, schema
        alias = item.alias or item.name
        if item.name in env:
            schema = [(alias, n) for n in env[item.name]]
            filters, specs, _ = self._source_filters(
                schema, all_conj, on_conjuncts, used
            )
            node = phys.CteScan(item.name, alias, filters, ast_ref=item)
            node.filter_specs = specs
            info = self._cte_np.get(item.name)
            if info is not None and info["scan"] is not None:
                # Every scan of an np_decode candidate starts out unsafe;
                # _mark_np_decode upgrades the ones it can prove harmless.
                info["uses"].append([node, False])
            return node, schema
        table = self.catalog.get(item.name)
        schema = [(alias, n) for n in table.schema.column_names]
        probe = self._pk_probe(table.schema.primary_key, alias, all_conj, used)
        if probe is not None:
            found, consumed = probe
            pk = table.schema.primary_key
            key_fns = [
                compile_expr(found[col], [], grouped=False) for col in pk
            ]
            # Pin predicates, recompiled against the row schema: the runtime
            # fallback path (non-integer parameter) scans and applies these.
            pin_fns = [
                compile_expr(conjuncts[idx], schema, grouped=False)
                for idx in consumed
            ]
            filters, specs, _ = self._source_filters(
                schema, all_conj, on_conjuncts, used
            )
            node = phys.PkLookup(
                item.name, alias, pk, key_fns, pin_fns, filters, ast_ref=item
            )
            node.filter_specs = specs
            return node, schema
        filters, specs, pushed = self._source_filters(
            schema, all_conj, on_conjuncts, used
        )
        node = phys.SeqScan(item.name, alias, filters, ast_ref=item)
        node.filter_specs = specs
        node.zone_eq_fn = self._zone_eq_fn(table, alias, pushed)
        return node, schema

    def _zone_eq_fn(self, table, alias, pushed):
        """Compile the zone-map skip key for a columnar seq scan, or None.

        Looks for an equality conjunct pinning the table's scalar zone
        column (hub) to a constant/parameter. Such a conjunct references
        only this source, so ``_source_filters`` always pushed it into the
        scan's own filters — skipping a page can therefore only skip rows
        the filter would reject anyway, on either executor.
        """
        schema_obj = table.schema
        zone = schema_obj.zone_info()
        if zone is None or zone[1]:  # array zone columns: no scalar equality
            return None
        zone_col = schema_obj.columns[zone[0]].name
        for conj in pushed:
            if not (isinstance(conj, ast.BinaryOp) and conj.op == "="):
                continue
            for col_side, const_side in (
                (conj.left, conj.right),
                (conj.right, conj.left),
            ):
                if (
                    isinstance(col_side, ast.ColumnRef)
                    and col_side.name == zone_col
                    and col_side.table in (None, alias)
                    and self._is_constant(const_side)
                ):
                    return compile_expr(const_side, [], grouped=False)
        return None

    def _source_filters(self, schema, all_conj, on_conjuncts, used):
        """Push down single-source filters (WHERE, then mandatory ON).

        Returns ``(predicates, specs, exprs)`` — compiled closures, parallel
        numpy comparison specs (entries may be None), and the conjunct ASTs
        actually claimed by this source.
        """
        predicates, specs, exprs = self._filters(schema, all_conj, used)
        on_preds, on_specs, on_exprs = self._filters(
            schema, list(enumerate(on_conjuncts, start=-1000)), set(),
            always=True,
        )
        return predicates + on_preds, specs + on_specs, exprs + on_exprs

    def _filters(self, schema, indexed_conjuncts, used, always=False):
        predicates = []
        specs = []
        exprs = []
        for idx, conj in indexed_conjuncts:
            if not always and idx in used:
                continue
            try:
                fn = compile_expr(conj, schema, grouped=False, strict_names=True)
            except SQLNameError:
                continue
            predicates.append(fn)
            specs.append(_np_cmp(conj, schema))
            exprs.append(conj)
            if not always:
                used.add(idx)
        return predicates, specs, exprs

    def _pk_probe(self, pk, alias, indexed_conjuncts, used):
        """If conjuncts pin every PK column to a constant, claim them.

        Static classification only — a parameter's runtime value is not
        inspected here. Non-integer *literals* are rejected (they can never
        match an integer key), matching what the analyzer used to prove
        symbolically; a non-integer *parameter* degrades at execution.
        """
        if not pk:
            return None
        found = {}
        consumed = []
        for idx, conj in indexed_conjuncts:
            if idx in used:
                continue
            pin = self._pk_pin(conj, alias, pk)
            if pin is not None and pin[0] not in found:
                found[pin[0]] = pin[1]
                consumed.append(idx)
        if set(found) != set(pk):
            return None
        for col in pk:
            value = found[col]
            if isinstance(value, ast.Literal) and not isinstance(value.value, int):
                return None
        used.update(consumed)
        return found, consumed

    def _pk_pin(self, conj, alias, pk):
        if not (isinstance(conj, ast.BinaryOp) and conj.op == "="):
            return None
        for col_side, const_side in (
            (conj.left, conj.right),
            (conj.right, conj.left),
        ):
            if (
                isinstance(col_side, ast.ColumnRef)
                and col_side.name in pk
                and col_side.table in (None, alias)
                and self._is_constant(const_side)
            ):
                return col_side.name, const_side
        return None

    def _is_constant(self, expr) -> bool:
        if isinstance(expr, (ast.Literal, ast.Param)):
            return True
        if isinstance(expr, ast.UnaryOp):
            return self._is_constant(expr.operand)
        if isinstance(expr, ast.BinaryOp):
            return self._is_constant(expr.left) and self._is_constant(expr.right)
        if isinstance(expr, ast.FuncCall) and not is_aggregate(expr.name):
            return all(self._is_constant(a) for a in expr.args)
        return False

    def _plan_join(self, left_node, left_schema, source, env, conjuncts, used):
        item, on_conjuncts = source
        candidates = [
            (i, c) for i, c in enumerate(conjuncts) if i not in used
        ] + [(None, c) for c in on_conjuncts]

        # --- index nested-loop join against a base table's primary key ----
        if isinstance(item, ast.TableRef) and item.name not in env:
            table = self.catalog.get(item.name)
            alias = item.alias or item.name
            pk = table.schema.primary_key
            if pk:
                pins: dict = {}
                pin_exprs: dict = {}
                consumed = []
                for idx, conj in candidates:
                    pin = self._inl_pin(conj, alias, pk, left_schema)
                    if pin is not None and pin[0] not in pins:
                        pins[pin[0]] = pin[1]
                        pin_exprs[pin[0]] = pin[2]
                        consumed.append(idx)
                if set(pins) == set(pk):
                    key_fns = [pins[col] for col in pk]
                    for idx in consumed:
                        if idx is not None:
                            used.add(idx)
                    schema = left_schema + [
                        (alias, n) for n in table.schema.column_names
                    ]
                    filters, specs = self._post_join_filters(
                        schema, conjuncts, used, on_conjuncts
                    )
                    node = phys.IndexNestedLoop(
                        left_node, item.name, alias, pk, key_fns, filters,
                        ast_ref=item,
                    )
                    node.filter_specs = specs
                    node.np_probe_base = len(left_schema)
                    key_specs = [
                        _np_operand(pin_exprs[col], left_schema) for col in pk
                    ]
                    if all(spec is not None for spec in key_specs):
                        node.np_key_specs = key_specs
                    return node, schema

        # --- plan the right side, then hash or cross join -------------------
        right_node, right_schema = self._plan_source(
            (item, []), env, conjuncts, used
        )
        schema = left_schema + right_schema
        hash_pair = None
        for idx, conj in candidates:
            if idx in used:
                continue
            pair = self._equi_pair(conj, left_schema, right_schema)
            if pair is not None:
                hash_pair = (idx, pair)
                break
        if hash_pair is not None:
            idx, (left_fn, right_fn, left_expr, right_expr) = hash_pair
            if idx is not None:
                used.add(idx)
            filters, specs = self._post_join_filters(
                schema, conjuncts, used, on_conjuncts
            )
            node = phys.HashJoin(
                left_node, right_node, left_fn, right_fn, filters
            )
            node.filter_specs = specs
            left_spec = _np_operand(left_expr, left_schema)
            right_spec = _np_operand(right_expr, right_schema)
            if (
                left_spec is not None
                and right_spec is not None
                and left_spec[0] == "col"
                and right_spec[0] == "col"
            ):
                node.np_left_col = left_spec[1]
                node.np_right_col = right_spec[1]
            return node, schema
        filters, specs = self._post_join_filters(
            schema, conjuncts, used, on_conjuncts
        )
        node = phys.NestedLoop(left_node, right_node, filters)
        node.filter_specs = specs
        return node, schema

    def _post_join_filters(self, schema, conjuncts, used, on_conjuncts):
        predicates, specs, _ = self._filters(
            schema, list(enumerate(conjuncts)), used
        )
        # ON conjuncts are mandatory on the joined schema (re-checking a
        # conjunct already used to drive the join is harmless).
        predicates += [
            compile_expr(conj, schema, grouped=False) for conj in on_conjuncts
        ]
        specs += [_np_cmp(conj, schema) for conj in on_conjuncts]
        return predicates, specs

    def _inl_pin(self, conj, alias, pk, left_schema):
        if not (isinstance(conj, ast.BinaryOp) and conj.op == "="):
            return None
        for col_side, other in ((conj.left, conj.right), (conj.right, conj.left)):
            if (
                isinstance(col_side, ast.ColumnRef)
                and col_side.name in pk
                and col_side.table == alias
            ):
                try:
                    fn = compile_expr(
                        other, left_schema, grouped=False, strict_names=True
                    )
                except SQLNameError:
                    continue
                return col_side.name, fn, other
        return None

    def _equi_pair(self, conj, left_schema, right_schema):
        if not (isinstance(conj, ast.BinaryOp) and conj.op == "="):
            return None
        for a, b in ((conj.left, conj.right), (conj.right, conj.left)):
            try:
                left_fn = compile_expr(
                    a, left_schema, grouped=False, strict_names=True
                )
            except SQLNameError:
                continue
            try:
                right_fn = compile_expr(
                    b, right_schema, grouped=False, strict_names=True
                )
            except SQLNameError:
                continue
            # Ensure sides do not also resolve on the opposite schema in a
            # way that makes the conjunct single-sided; good enough here.
            return left_fn, right_fn, a, b
        return None


def _match_output_expr(expr, items):
    """Index of a select item structurally identical to *expr*, or None.

    ``ORDER BY MIN(ta)`` where ``MIN(ta)`` is also a select item can sort on
    the already-computed output value instead of re-evaluating the aggregate
    per sort key. Expressions are compared by rendered SQL text (the printer
    is deterministic), which is sound because every supported expression is
    deterministic over its input rows. Plain column / positional references
    are handled by the callers' earlier rules; this match covers compound
    expressions only.
    """
    if isinstance(expr, (ast.ColumnRef, ast.Literal)):
        return None
    try:
        rendered = render_expr(expr)
    except SQLError:
        return None
    for i, item in enumerate(items):
        try:
            if render_expr(item.expr) == rendered:
                return i
        except SQLError:
            continue
    return None


def _name_in_schema(schema, name) -> bool:
    return any(col_name == name for _, col_name in schema)


def _output_name(item: ast.SelectItem) -> str:
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FuncCall):
        return expr.name
    if isinstance(expr, ast.WindowFunc):
        return expr.name
    return "?column?"


def _predicate_detail(conjuncts) -> str:
    try:
        return "(" + " AND ".join(render_expr(c) for c in conjuncts) + ")"
    except SQLError:  # pragma: no cover - cosmetic only
        return ""
