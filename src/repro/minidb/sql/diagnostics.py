"""Source positions, spans and diagnostic rendering for the SQL front-end.

Every token carries its byte offset plus a 1-based ``line``/``col``; AST
nodes carry ``(start, end)`` offset spans. A :class:`Diagnostic` combines a
stable code (``SEM002``, ``TYP001``, ``APL001``, ...), a severity, a message
and a span, and renders with a caret excerpt of the offending source::

    SEM002 error: column "nope" does not exist (line 1:8)
      SELECT nope FROM t
             ^^^^
"""

from __future__ import annotations

from dataclasses import dataclass, field

ERROR = "error"
WARNING = "warning"


def line_col(sql: str, offset: int) -> tuple[int, int]:
    """1-based (line, column) of *offset* in *sql*."""
    offset = max(0, min(offset, len(sql)))
    prefix = sql[:offset]
    line = prefix.count("\n") + 1
    last_nl = prefix.rfind("\n")
    col = offset - last_nl  # works for last_nl == -1 too (col = offset + 1)
    return line, col


def caret_excerpt(sql: str, start: int, end: int | None = None) -> str:
    """The source line containing *start* with a caret run underneath."""
    start = max(0, min(start, len(sql)))
    line_start = sql.rfind("\n", 0, start) + 1
    line_end = sql.find("\n", start)
    if line_end == -1:
        line_end = len(sql)
    text = sql[line_start:line_end]
    if end is None or end <= start:
        end = start + 1
    width = max(1, min(end, line_end) - start)
    pad = " " * (start - line_start)
    return f"  {text}\n  {pad}{'^' * width}"


@dataclass(frozen=True)
class Span:
    """Half-open ``[start, end)`` byte range into the original SQL text."""

    start: int
    end: int

    @classmethod
    def of(cls, node) -> "Span | None":
        raw = getattr(node, "span", None)
        if raw is None:
            return None
        if isinstance(raw, Span):
            return raw
        return cls(raw[0], raw[1])


@dataclass
class Diagnostic:
    """One analyzer or linter finding."""

    code: str  # stable: SEM*, TYP*, AGG*, WIN*, SRF*, APL*
    severity: str  # ERROR | WARNING
    message: str
    span: Span | None = None
    hint: str | None = None

    def render(self, sql: str | None = None) -> str:
        """Multi-line human form: header plus caret excerpt when possible."""
        where = ""
        if self.span is not None and sql is not None:
            line, col = line_col(sql, self.span.start)
            where = f" (line {line}:{col})"
        out = f"{self.code} {self.severity}: {self.message}{where}"
        if self.span is not None and sql is not None:
            out += "\n" + caret_excerpt(sql, self.span.start, self.span.end)
        if self.hint:
            out += f"\n  hint: {self.hint}"
        return out


@dataclass
class DiagnosticSink:
    """Accumulator shared by the analysis passes."""

    items: list[Diagnostic] = field(default_factory=list)

    def error(self, code: str, message: str, node=None, hint: str | None = None) -> None:
        self.items.append(
            Diagnostic(code, ERROR, message, Span.of(node), hint)
        )

    def warning(self, code: str, message: str, node=None, hint: str | None = None) -> None:
        self.items.append(
            Diagnostic(code, WARNING, message, Span.of(node), hint)
        )

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.items if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.items if d.severity == WARNING]
