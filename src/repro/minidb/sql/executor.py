"""SQL execution engine.

Evaluates parsed statements against the catalog. The planner is intentionally
rule-based, but it implements the three access paths that matter for PTLDB's
claims:

* **primary-key pushdown** — ``WHERE v = $1`` on a table becomes a single
  B+Tree point lookup (the paper: "PTLDB needs to access exactly two rows"
  per v2v query);
* **index nested-loop join** — joining a small derived relation against a
  table on its full primary key fetches at most one row per probe (the
  paper: "the optimized EA-kNN query will always access at most
  ``|Lout|/|V|`` rows from the ``knn_ea`` DB table");
* **hash join** — any other equi-join.

Set-returning ``UNNEST`` in the select list expands rows in parallel, padding
with NULL, exactly like PostgreSQL's parallel unnesting that Code 1 relies
on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLError, SQLNameError, SQLSyntaxError, SQLTypeError
from repro.minidb.metrics import NULL_SCOPE, TraceCollector, render_plan
from repro.minidb.sql import ast
from repro.minidb.sql.functions import (
    AGGREGATE_FUNCTIONS,
    SET_RETURNING,
    get_scalar,
    is_aggregate,
)


@dataclass
class Relation:
    """A materialized intermediate result."""

    columns: list[tuple[str | None, str]]  # (qualifier, name)
    rows: list[tuple]

    def requalify(self, alias: str) -> "Relation":
        return Relation([(alias, name) for _, name in self.columns], self.rows)


@dataclass
class Result:
    """Statement result returned to the caller."""

    columns: list[str]
    rows: list[tuple]
    trace: object | None = None  # QueryTrace, attached by Database.execute

    def scalar(self):
        """Single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SQLError(
                f"scalar() on a {len(self.rows)}x{len(self.columns)} result"
            )
        return self.rows[0][0]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)


# ---------------------------------------------------------------------------
# Expression helpers
# ---------------------------------------------------------------------------
def _flatten_and(expr: ast.Expr | None) -> list[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _contains_aggregate(expr) -> bool:
    if isinstance(expr, ast.FuncCall):
        if is_aggregate(expr.name):
            return True
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.IsNull):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.InList):
        return _contains_aggregate(expr.operand) or any(
            _contains_aggregate(i) for i in expr.items
        )
    if isinstance(expr, (ast.ArraySlice, ast.ArrayIndex)):
        inner = [expr.base]
        if isinstance(expr, ast.ArraySlice):
            inner += [e for e in (expr.low, expr.high) if e is not None]
        else:
            inner.append(expr.index)
        return any(_contains_aggregate(e) for e in inner)
    if isinstance(expr, ast.CaseExpr):
        parts = [e for pair in expr.whens for e in pair]
        if expr.default is not None:
            parts.append(expr.default)
        return any(_contains_aggregate(p) for p in parts)
    if isinstance(expr, ast.ArrayLiteral):
        return any(_contains_aggregate(i) for i in expr.items)
    return False


def _contains_srf(expr) -> bool:
    if isinstance(expr, ast.FuncCall) and expr.name in SET_RETURNING:
        return True
    return False


def _is_true(value) -> bool:
    return value is True


def _cmp(op: str, a, b):
    if a is None or b is None:
        return None
    if op == "=":
        return a == b
    if op == "<>":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise SQLError(f"unknown comparison {op}")


def _arith(op: str, a, b):
    if a is None or b is None:
        return None
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if isinstance(a, int) and isinstance(b, int):
            if b == 0:
                raise SQLError("division by zero")
            quotient = a // b
            if quotient < 0 and quotient * b != a:
                quotient += 1  # PostgreSQL truncates toward zero
            return quotient
        if b == 0:
            raise SQLError("division by zero")
        return a / b
    if op == "%":
        if b == 0:
            raise SQLError("division by zero")
        return a - b * int(a / b) if isinstance(a, int) and isinstance(b, int) else a % b
    if op == "||":
        if isinstance(a, (list, tuple)) or isinstance(b, (list, tuple)):
            left = list(a) if isinstance(a, (list, tuple)) else [a]
            right = list(b) if isinstance(b, (list, tuple)) else [b]
            return left + right
        return str(a) + str(b)
    raise SQLError(f"unknown operator {op}")


def _logic_and(a, b):
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def _logic_or(a, b):
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def _sort_rows(rows, key_fn_count: int, keys: list[tuple], descending: list[bool]):
    """Stable multi-key sort with NULLS LAST, honoring per-key direction.

    *rows* and *keys* are parallel lists; returns rows reordered.
    """
    order = list(range(len(rows)))
    for key_index in range(key_fn_count - 1, -1, -1):
        desc = descending[key_index]

        def sort_key(i, _k=key_index, _d=desc):
            value = keys[i][_k]
            if value is None:
                return (1, 0)
            return (0, _Reversed(value) if _d else value)

        order.sort(key=sort_key)
    return [rows[i] for i in order]


class _Reversed:
    """Wrapper inverting comparisons, for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return self.value == other.value


def _hashable(row: tuple) -> tuple:
    return tuple(tuple(v) if isinstance(v, list) else v for v in row)


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------
class Executor:
    def __init__(self, catalog, params: tuple = (), collector: TraceCollector | None = None):
        self.catalog = catalog
        self.params = params
        self.collector = collector

    def _op(self, name: str, detail: str = ""):
        """Operator scope: a context manager collecting lifecycle stats.

        Returns a no-op scope when no collector is attached, so the
        executor body reads the same either way.
        """
        if self.collector is not None:
            return self.collector.operator(name, detail)
        return NULL_SCOPE

    # -- entry points ---------------------------------------------------
    def execute(self, stmt) -> Result:
        if isinstance(stmt, ast.Explain):
            collector = TraceCollector(getattr(self.catalog, "pool", None))
            Executor(self.catalog, self.params, collector=collector).execute(
                stmt.statement
            )
            lines = render_plan(collector.roots, analyze=stmt.analyze)
            return Result(["plan"], [(line,) for line in lines])
        if isinstance(stmt, ast.Query):
            rel = self.run_query(stmt, {})
            return Result([name for _, name in rel.columns], rel.rows)
        if isinstance(stmt, ast.CreateTable):
            return self._exec_create(stmt)
        if isinstance(stmt, ast.DropTable):
            self.catalog.drop_table(stmt.name, if_exists=stmt.if_exists)
            return Result([], [])
        if isinstance(stmt, ast.Insert):
            return self._exec_insert(stmt)
        if isinstance(stmt, ast.Delete):
            return self._exec_delete(stmt)
        if isinstance(stmt, ast.Update):
            return self._exec_update(stmt)
        if isinstance(stmt, ast.Vacuum):
            table = self.catalog.get(stmt.table)
            with self._op("Vacuum", stmt.table) as node:
                live = table.vacuum()
                node.rows = live
            return Result(["rows"], [(live,)])
        raise SQLError(f"cannot execute {type(stmt).__name__}")

    # -- DDL / DML ------------------------------------------------------
    def _exec_create(self, stmt: ast.CreateTable) -> Result:
        from repro.minidb.catalog import TableSchema
        from repro.minidb.values import Column, type_from_name

        columns = [Column(c.name, type_from_name(c.type_name)) for c in stmt.columns]
        schema = TableSchema(stmt.name, columns, stmt.primary_key)
        self.catalog.create_table(schema, if_not_exists=stmt.if_not_exists)
        return Result([], [])

    def _exec_insert(self, stmt: ast.Insert) -> Result:
        table = self.catalog.get(stmt.table)
        schema = table.schema
        if stmt.columns:
            positions = [schema.column_index(c) for c in stmt.columns]
        else:
            positions = list(range(len(schema.columns)))
        count = 0
        if stmt.select is not None:
            rel = self.run_query(stmt.select, {})
            source_rows = rel.rows
        else:
            const_fn = lambda e: self._compile(e, [], grouped=False)  # noqa: E731
            source_rows = [
                tuple(const_fn(e)(()) for e in row) for row in stmt.rows
            ]
        with self._op("Insert", f"on {stmt.table}") as node:
            for source in source_rows:
                if len(source) != len(positions):
                    raise SQLError(
                        f"INSERT expects {len(positions)} values, got {len(source)}"
                    )
                row = [None] * len(schema.columns)
                for pos, value in zip(positions, source):
                    row[pos] = value
                table.insert(tuple(row))
                count += 1
            node.rows = count
        return Result(["count"], [(count,)])

    def _exec_delete(self, stmt: ast.Delete) -> Result:
        table = self.catalog.get(stmt.table)
        with self._op("Delete", f"on {stmt.table}") as node:
            victims = self._matching_rows(table, stmt.table, stmt.where)
            for rid, row in victims:
                table.delete_row(rid, row)
            node.rows = len(victims)
        return Result(["count"], [(len(victims),)])

    def _exec_update(self, stmt: ast.Update) -> Result:
        table = self.catalog.get(stmt.table)
        schema = [(stmt.table, name) for name in table.schema.column_names]
        positions = [table.schema.column_index(col) for col, _ in stmt.assignments]
        value_fns = [
            self._compile(expr, schema, grouped=False)
            for _, expr in stmt.assignments
        ]
        with self._op("Update", f"on {stmt.table}") as node:
            victims = self._matching_rows(table, stmt.table, stmt.where)
            # Non-transactional: a failing reinsert (e.g. a duplicate key)
            # aborts mid-way, like a storage engine without WAL would.
            for rid, row in victims:
                new_row = list(row)
                for position, fn in zip(positions, value_fns):
                    new_row[position] = fn(row)
                table.update_row(rid, row, tuple(new_row))
            node.rows = len(victims)
        return Result(["count"], [(len(victims),)])

    def _matching_rows(self, table, alias: str, where):
        from repro.minidb.values import decode_record

        schema = [(alias, name) for name in table.schema.column_names]
        predicate = None
        if where is not None:
            predicate = self._compile(where, schema, grouped=False)
        matches = []
        for rid, raw in table.heap.scan():
            row = decode_record(table.schema.types, raw)
            if predicate is None or _is_true(predicate(row)):
                matches.append((rid, row))
        return matches

    # -- queries -------------------------------------------------------
    def run_query(self, query: ast.Query, env: dict) -> Relation:
        env = dict(env)
        for name, cte_query in query.ctes:
            with self._op("CTE", name) as node:
                env[name] = self.run_query(cte_query, env)
                node.rows = len(env[name].rows)

        if len(query.cores) == 1 and isinstance(query.cores[0], ast.SelectCore):
            return self._run_single(query, query.cores[0], env)

        # Set operation (or single parenthesized sub-query).
        parts: list[Relation] = []
        for core in query.cores:
            if isinstance(core, ast.Query):
                parts.append(self.run_query(core, env))
            else:
                parts.append(
                    self._run_single(
                        ast.Query(cores=(core,)), core, env
                    )
                )
        width = len(parts[0].columns)
        rows = list(parts[0].rows)
        for op, part in zip(query.set_ops, parts[1:]):
            with self._op(op.title()) as node:
                if len(part.columns) != width:
                    # Defense in depth: the analyzer rejects this statically
                    # (TYP004) before any operand produces rows.
                    raise SQLError("UNION operands have different column counts")
                rows.extend(part.rows)
                if op == "UNION":
                    seen = set()
                    deduped = []
                    for row in rows:
                        key = _hashable(row)
                        if key not in seen:
                            seen.add(key)
                            deduped.append(row)
                    rows = deduped
                node.rows = len(rows)
        columns = parts[0].columns
        if query.order_by:
            with self._op("Sort", f"({len(query.order_by)} keys)") as node:
                schema = [(None, name) for _, name in columns]
                key_fns = []
                descending = []
                for item in query.order_by:
                    key_fns.append(self._order_key_fn(item.expr, schema, columns))
                    descending.append(item.descending)
                keys = [tuple(fn(row) for fn in key_fns) for row in rows]
                rows = _sort_rows(rows, len(key_fns), keys, descending)
                node.rows = len(rows)
        rows = self._apply_limit(rows, query)
        return Relation([(None, name) for _, name in columns], rows)

    def _order_key_fn(self, expr, schema, columns):
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            idx = expr.value - 1
            return lambda row, _i=idx: row[_i]
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for i, (_, name) in enumerate(columns):
                if name == expr.name:
                    return lambda row, _i=i: row[_i]
        return self._compile(expr, schema, grouped=False)

    def _apply_limit(self, rows, query: ast.Query):
        offset = 0
        if query.offset is not None:
            offset = self._const(query.offset)
        if query.limit is not None:
            limit = self._const(query.limit)
            return rows[offset : offset + limit]
        return rows[offset:] if offset else rows

    def _const(self, expr):
        value = self._compile(expr, [], grouped=False)(())
        if not isinstance(value, int) or value < 0:
            raise SQLError(f"LIMIT/OFFSET must be a non-negative integer, got {value!r}")
        return value

    # -- single SELECT core ----------------------------------------------
    def _run_single(self, query: ast.Query, core: ast.SelectCore, env: dict) -> Relation:
        conjuncts = _flatten_and(core.where)
        used: set[int] = set()
        schema, rows = self._run_from(core.from_items, env, conjuncts, used)

        # Residual WHERE predicates.
        residual = [c for i, c in enumerate(conjuncts) if i not in used]
        if residual:
            predicates = [self._compile(c, schema, grouped=False) for c in residual]
            rows = [r for r in rows if all(_is_true(p(r)) for p in predicates)]

        items = self._expand_stars(core.items, schema)

        # Set-returning functions (UNNEST) in the select list.
        items, schema, rows = self._expand_srfs(items, schema, rows)

        # Window functions.
        items, schema, rows = self._compute_windows(items, schema, rows)

        out_columns = [(None, self._output_name(item)) for item in items]

        grouped = bool(core.group_by) or any(
            _contains_aggregate(item.expr) for item in items
        )
        order_items = query.order_by if len(query.cores) == 1 else ()

        if grouped:
            op_name, op_detail = (
                ("GroupAggregate", f"({len(core.group_by)} keys)")
                if core.group_by
                else ("Aggregate", "")
            )
            with self._op(op_name, op_detail) as node:
                out_rows, key_rows = self._run_grouped(
                    core, items, schema, rows, order_items
                )
                node.rows = len(out_rows)
        else:
            item_fns = [self._compile(it.expr, schema, grouped=False) for it in items]
            out_rows = [tuple(fn(row) for fn in item_fns) for row in rows]
            key_rows = None
            if order_items:
                key_fns = [
                    self._order_key_for_core(it.expr, schema, items, out_columns)
                    for it in order_items
                ]
                key_rows = [
                    tuple(
                        fn(row) if callable(fn) else out_rows[i][fn]
                        for fn in key_fns
                    )
                    for i, row in enumerate(rows)
                ]

        if core.distinct:
            pairs = []
            seen = set()
            for i, row in enumerate(out_rows):
                key = _hashable(row)
                if key not in seen:
                    seen.add(key)
                    pairs.append((row, key_rows[i] if key_rows else None))
            out_rows = [p[0] for p in pairs]
            key_rows = [p[1] for p in pairs] if order_items else None

        if order_items and key_rows is not None:
            with self._op("Sort", f"({len(order_items)} keys)") as node:
                descending = [it.descending for it in order_items]
                out_rows = _sort_rows(
                    out_rows, len(order_items), key_rows, descending
                )
                node.rows = len(out_rows)

        if len(query.cores) == 1:
            out_rows = self._apply_limit(out_rows, query)
        return Relation(out_columns, out_rows)

    def _order_key_for_core(self, expr, schema, items, out_columns):
        """Order key in a non-grouped core: alias, position, or expression."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            return expr.value - 1  # positional: index into output row
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for i, item in enumerate(items):
                if self._output_name(item) == expr.name:
                    # Prefer the already-computed output if the name is an
                    # alias not present in the input schema.
                    if not self._name_in_schema(schema, expr.name):
                        return i
        return self._compile(expr, schema, grouped=False)

    @staticmethod
    def _name_in_schema(schema, name) -> bool:
        return any(col_name == name for _, col_name in schema)

    # -- grouping ---------------------------------------------------------
    def _run_grouped(self, core, items, schema, rows, order_items):
        group_fns = [
            self._group_key_fn(expr, schema, items) for expr in core.group_by
        ]
        groups: dict = {}
        for row in rows:
            key = _hashable(tuple(fn(row) for fn in group_fns))
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [row]
            else:
                bucket.append(row)
        if not core.group_by:
            # Aggregation over the whole input: exactly one group, possibly
            # empty (SELECT MIN(x) FROM nothing -> one NULL row).
            group_list = [rows]
        else:
            group_list = list(groups.values())

        item_fns = [self._compile(it.expr, schema, grouped=True) for it in items]
        having_fn = None
        if core.having is not None:
            having_fn = self._compile(core.having, schema, grouped=True)

        out_rows = []
        key_rows = [] if order_items else None
        order_fns = None
        if order_items:
            order_fns = [
                self._grouped_order_key(it.expr, schema, items)
                for it in order_items
            ]
        for group_rows in group_list:
            if having_fn is not None and not _is_true(having_fn(group_rows)):
                continue
            out = tuple(fn(group_rows) for fn in item_fns)
            out_rows.append(out)
            if order_fns is not None:
                keys = []
                for fn in order_fns:
                    if callable(fn):
                        keys.append(fn(group_rows))
                    else:
                        keys.append(out[fn])
                key_rows.append(tuple(keys))
        return out_rows, key_rows

    def _group_key_fn(self, expr, schema, items):
        # GROUP BY may name a select alias (PostgreSQL extension).
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            if not self._name_in_schema(schema, expr.name):
                for item in items:
                    if self._output_name(item) == expr.name:
                        return self._compile(item.expr, schema, grouped=False)
        return self._compile(expr, schema, grouped=False)

    def _grouped_order_key(self, expr, schema, items):
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            return expr.value - 1
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for i, item in enumerate(items):
                if self._output_name(item) == expr.name:
                    return i
        return self._compile(expr, schema, grouped=True)

    # -- select-list machinery ---------------------------------------------
    @staticmethod
    def _output_name(item: ast.SelectItem) -> str:
        if item.alias:
            return item.alias
        expr = item.expr
        if isinstance(expr, ast.ColumnRef):
            return expr.name
        if isinstance(expr, ast.FuncCall):
            return expr.name
        if isinstance(expr, ast.WindowFunc):
            return expr.name
        return "?column?"

    def _expand_stars(self, items, schema):
        out = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                table = item.expr.table
                matched = False
                for qual, name in schema:
                    if table is None or qual == table:
                        out.append(
                            ast.SelectItem(ast.ColumnRef(qual, name), alias=name)
                        )
                        matched = True
                if not matched:
                    raise SQLNameError(f"no columns match {table or ''}.*")
            else:
                out.append(item)
        return out

    def _expand_srfs(self, items, schema, rows):
        srf_positions = [
            i for i, item in enumerate(items) if _contains_srf(item.expr)
        ]
        if not srf_positions:
            return items, schema, rows
        with self._op("ProjectSet", f"(UNNEST x {len(srf_positions)})") as node:
            # Compile each SRF argument; non-SRF items stay as-is but will be
            # evaluated against the extended rows (original columns preserved).
            srf_fns = {}
            for i in srf_positions:
                expr = items[i].expr
                if not (
                    isinstance(expr, ast.FuncCall) and expr.name in SET_RETURNING
                ):
                    raise SQLSyntaxError(
                        "UNNEST must be the whole select expression in minidb"
                    )
                if len(expr.args) != 1:
                    raise SQLSyntaxError("UNNEST takes exactly one argument")
                srf_fns[i] = self._compile(expr.args[0], schema, grouped=False)

            new_schema = list(schema)
            synth_names = {}
            for i in srf_positions:
                synth = f"__srf_{i}"
                synth_names[i] = synth
                new_schema.append((None, synth))

            new_rows = []
            for row in rows:
                arrays = {}
                max_len = 0
                for i, fn in srf_fns.items():
                    value = fn(row)
                    if value is None:
                        value = []
                    elif not isinstance(value, (list, tuple)):
                        raise SQLTypeError(
                            f"UNNEST expects an array, got {value!r}"
                        )
                    arrays[i] = value
                    max_len = max(max_len, len(value))
                for j in range(max_len):
                    extra = tuple(
                        arrays[i][j] if j < len(arrays[i]) else None
                        for i in srf_positions
                    )
                    new_rows.append(row + extra)
            node.rows = len(new_rows)

        new_items = []
        for i, item in enumerate(items):
            if i in srf_positions:
                ref = ast.ColumnRef(None, synth_names[i])
                new_items.append(
                    ast.SelectItem(ref, alias=item.alias or "unnest")
                )
            else:
                new_items.append(item)
        return new_items, new_schema, new_rows

    def _compute_windows(self, items, schema, rows):
        win_positions = [
            i for i, item in enumerate(items) if isinstance(item.expr, ast.WindowFunc)
        ]
        if not win_positions:
            return items, schema, rows
        with self._op("WindowAgg") as node:
            new_schema = list(schema)
            extras: list[list] = [[] for _ in rows]
            new_items = list(items)
            for i in win_positions:
                win = items[i].expr
                if win.name != "row_number":
                    raise SQLError(f"unsupported window function {win.name!r}")
                part_fns = [
                    self._compile(e, schema, grouped=False)
                    for e in win.partition_by
                ]
                order_fns = [
                    self._compile(it.expr, schema, grouped=False)
                    for it in win.order_by
                ]
                descending = [it.descending for it in win.order_by]
                # Stable sort indices within partitions.
                indexed = list(range(len(rows)))
                keys = [
                    tuple(fn(rows[idx]) for fn in order_fns) for idx in indexed
                ]
                ordered = _sort_rows(indexed, len(order_fns), keys, descending)
                counters: dict = {}
                numbers = [0] * len(rows)
                for idx in ordered:
                    part = _hashable(tuple(fn(rows[idx]) for fn in part_fns))
                    counters[part] = counters.get(part, 0) + 1
                    numbers[idx] = counters[part]
                synth = f"__win_{i}"
                new_schema.append((None, synth))
                for row_idx in range(len(rows)):
                    extras[row_idx].append(numbers[row_idx])
                new_items[i] = ast.SelectItem(
                    ast.ColumnRef(None, synth),
                    alias=items[i].alias or "row_number",
                )
            new_rows = [row + tuple(extra) for row, extra in zip(rows, extras)]
            node.rows = len(new_rows)
        return new_items, new_schema, new_rows

    # -- FROM clause --------------------------------------------------------
    def _run_from(self, from_items, env, conjuncts, used):
        if not from_items:
            return [], [()]
        sources = []  # (item, on_conjuncts)
        for item in from_items:
            self._flatten_joins(item, sources)
        # Join-order heuristic: derived relations (CTEs, subqueries) first so
        # base tables can be probed by index nested-loop instead of scanned —
        # this is what makes "FROM knn_ea n1bb, n1" touch only |n1| rows of
        # knn_ea, as the paper requires. Comma joins only (ON pins order).
        if len(sources) > 1 and all(not on for _, on in sources):
            def _derived(source):
                item = source[0]
                if isinstance(item, ast.SubqueryRef):
                    return True
                return isinstance(item, ast.TableRef) and item.name in env

            small = [s for s in sources if _derived(s)]
            large = [s for s in sources if not _derived(s)]
            sources = small + large
        schema, rows = self._load_source(sources[0], env, conjuncts, used)
        for source in sources[1:]:
            schema, rows = self._join(schema, rows, source, env, conjuncts, used)
        return schema, rows

    def _flatten_joins(self, item, out, on_conjuncts=None):
        if isinstance(item, ast.Join):
            self._flatten_joins(item.left, out)
            self._flatten_joins(
                item.right, out, _flatten_and(item.condition)
            )
            return
        out.append((item, on_conjuncts or []))

    def _load_source(self, source, env, conjuncts, used):
        item, on_conjuncts = source
        all_conj = list(enumerate(conjuncts))
        if isinstance(item, ast.SubqueryRef):
            with self._op("Subquery Scan", item.alias) as node:
                rel = self.run_query(item.query, env)
                rel = rel.requalify(item.alias)
                schema, rows = rel.columns, rel.rows
                rows = self._filter_source(
                    schema, rows, all_conj, on_conjuncts, used
                )
                node.rows = len(rows)
            return schema, rows
        alias = item.alias or item.name
        if item.name in env:
            with self._op("CTE Scan", f"on {item.name}") as node:
                rel = env[item.name].requalify(alias)
                schema, rows = rel.columns, rel.rows
                rows = self._filter_source(
                    schema, rows, all_conj, on_conjuncts, used
                )
                node.rows = len(rows)
            return schema, rows
        table = self.catalog.get(item.name)
        schema = [(alias, n) for n in table.schema.column_names]
        key = self._pk_probe(table, alias, all_conj, used)
        if key is not None:
            with self._op(
                "Index Scan",
                f"using {item.name}_pkey on {item.name} (point lookup)",
            ) as node:
                row = table.lookup(key)
                rows = [row] if row is not None else []
                rows = self._filter_source(
                    schema, rows, all_conj, on_conjuncts, used
                )
                node.rows = len(rows)
        else:
            with self._op("Seq Scan", f"on {item.name}") as node:
                rows = list(table.scan())
                rows = self._filter_source(
                    schema, rows, all_conj, on_conjuncts, used
                )
                node.rows = len(rows)
        return schema, rows

    def _filter_source(self, schema, rows, all_conj, on_conjuncts, used):
        """Push down single-source filters (WHERE, then mandatory ON)."""
        rows = self._apply_filters(schema, rows, all_conj, used)
        return self._apply_filters(
            schema, rows, list(enumerate(on_conjuncts, start=-1000)), set(),
            always=True,
        )

    def _pk_probe(self, table, alias, indexed_conjuncts, used):
        """If conjuncts pin every PK column to a constant, return the key."""
        pk = table.schema.primary_key
        if not pk:
            return None
        found = {}
        consumed = []
        for idx, conj in indexed_conjuncts:
            if idx in used:
                continue
            pin = self._pk_pin(conj, alias, pk)
            if pin is not None and pin[0] not in found:
                found[pin[0]] = pin[1]
                consumed.append(idx)
        if set(found) != set(pk):
            return None
        key = []
        for col in pk:
            value = self._compile(found[col], [], grouped=False)(())
            if value is None or not isinstance(value, int):
                return None
            key.append(value)
        used.update(consumed)
        return tuple(key)

    def _pk_pin(self, conj, alias, pk):
        if not (isinstance(conj, ast.BinaryOp) and conj.op == "="):
            return None
        for col_side, const_side in ((conj.left, conj.right), (conj.right, conj.left)):
            if (
                isinstance(col_side, ast.ColumnRef)
                and col_side.name in pk
                and col_side.table in (None, alias)
                and self._is_constant(const_side)
            ):
                return col_side.name, const_side
        return None

    def _is_constant(self, expr) -> bool:
        if isinstance(expr, (ast.Literal, ast.Param)):
            return True
        if isinstance(expr, ast.UnaryOp):
            return self._is_constant(expr.operand)
        if isinstance(expr, ast.BinaryOp):
            return self._is_constant(expr.left) and self._is_constant(expr.right)
        if isinstance(expr, ast.FuncCall) and not is_aggregate(expr.name):
            return all(self._is_constant(a) for a in expr.args)
        return False

    def _apply_filters(self, schema, rows, indexed_conjuncts, used, always=False):
        predicates = []
        for idx, conj in indexed_conjuncts:
            if not always and idx in used:
                continue
            try:
                fn = self._compile(conj, schema, grouped=False, strict_names=True)
            except SQLNameError:
                continue
            predicates.append(fn)
            if not always:
                used.add(idx)
        if not predicates:
            return rows
        return [r for r in rows if all(_is_true(p(r)) for p in predicates)]

    def _join(self, left_schema, left_rows, source, env, conjuncts, used):
        item, on_conjuncts = source
        candidates = [
            (i, c) for i, c in enumerate(conjuncts) if i not in used
        ] + [(None, c) for c in on_conjuncts]

        # --- index nested-loop join against a base table's primary key ----
        if isinstance(item, ast.TableRef) and item.name not in env:
            table = self.catalog.get(item.name)
            alias = item.alias or item.name
            pk = table.schema.primary_key
            if pk:
                pins: dict = {}
                consumed = []
                for idx, conj in candidates:
                    pin = self._inl_pin(conj, alias, pk, left_schema)
                    if pin is not None and pin[0] not in pins:
                        pins[pin[0]] = pin[1]
                        consumed.append(idx)
                if set(pins) == set(pk):
                    with self._op(
                        "Index Nested Loop",
                        f"probe {item.name} by primary key ({', '.join(pk)})",
                    ) as node:
                        key_fns = [pins[col] for col in pk]
                        right_schema = [
                            (alias, n) for n in table.schema.column_names
                        ]
                        joined = []
                        probe_cache: dict = {}  # duplicate probes hit memory
                        for row in left_rows:
                            key = tuple(fn(row) for fn in key_fns)
                            if any(not isinstance(k, int) for k in key):
                                continue
                            if key in probe_cache:
                                match = probe_cache[key]
                            else:
                                match = table.lookup(key)
                                probe_cache[key] = match
                            if match is not None:
                                joined.append(row + match)
                        for idx in consumed:
                            if idx is not None:
                                used.add(idx)
                        schema = left_schema + right_schema
                        rows = self._apply_post_join_filters(
                            schema, joined, conjuncts, used, on_conjuncts
                        )
                        node.rows = len(rows)
                        node.loops = len(left_rows)
                    return schema, rows

        # --- materialize right side ---------------------------------------
        right_schema, right_rows = self._load_source(
            (item, []), env, conjuncts, used
        )
        schema = left_schema + right_schema

        # --- hash join ------------------------------------------------------
        hash_pair = None
        for idx, conj in candidates:
            if idx in used:
                continue
            pair = self._equi_pair(conj, left_schema, right_schema)
            if pair is not None:
                hash_pair = (idx, pair)
                break
        if hash_pair is not None:
            with self._op("Hash Join") as node:
                idx, (left_fn, right_fn) = hash_pair
                buckets: dict = {}
                for row in right_rows:
                    key = right_fn(row)
                    if key is None:
                        continue
                    buckets.setdefault(key, []).append(row)
                joined = []
                for row in left_rows:
                    key = left_fn(row)
                    if key is None:
                        continue
                    for right in buckets.get(key, ()):
                        joined.append(row + right)
                if idx is not None:
                    used.add(idx)
                rows = self._apply_post_join_filters(
                    schema, joined, conjuncts, used, on_conjuncts
                )
                node.rows = len(rows)
            return schema, rows

        # --- nested loop (cross product) -----------------------------------
        with self._op("Nested Loop", "(cross product)") as node:
            joined = [l + r for l in left_rows for r in right_rows]
            rows = self._apply_post_join_filters(
                schema, joined, conjuncts, used, on_conjuncts
            )
            node.rows = len(rows)
        return schema, rows

    def _apply_post_join_filters(self, schema, rows, conjuncts, used, on_conjuncts):
        rows = self._apply_filters(
            schema, rows, list(enumerate(conjuncts)), used
        )
        # ON conjuncts are mandatory on the joined schema (re-checking a
        # conjunct already used to drive the join is harmless).
        predicates = [
            self._compile(conj, schema, grouped=False) for conj in on_conjuncts
        ]
        if predicates:
            rows = [r for r in rows if all(_is_true(p(r)) for p in predicates)]
        return rows

    def _inl_pin(self, conj, alias, pk, left_schema):
        if not (isinstance(conj, ast.BinaryOp) and conj.op == "="):
            return None
        for col_side, other in ((conj.left, conj.right), (conj.right, conj.left)):
            if (
                isinstance(col_side, ast.ColumnRef)
                and col_side.name in pk
                and col_side.table == alias
            ):
                try:
                    fn = self._compile(other, left_schema, grouped=False, strict_names=True)
                except SQLNameError:
                    continue
                return col_side.name, fn
        return None

    def _equi_pair(self, conj, left_schema, right_schema):
        if not (isinstance(conj, ast.BinaryOp) and conj.op == "="):
            return None
        for a, b in ((conj.left, conj.right), (conj.right, conj.left)):
            try:
                left_fn = self._compile(a, left_schema, grouped=False, strict_names=True)
            except SQLNameError:
                continue
            try:
                right_fn = self._compile(b, right_schema, grouped=False, strict_names=True)
            except SQLNameError:
                continue
            # Ensure sides do not also resolve on the opposite schema in a
            # way that makes the conjunct single-sided; good enough here.
            return left_fn, right_fn
        return None

    # -- expression compilation ---------------------------------------------
    def _resolve(self, schema, ref: ast.ColumnRef) -> int:
        matches = [
            i
            for i, (qual, name) in enumerate(schema)
            if name == ref.name and (ref.table is None or qual == ref.table)
        ]
        if not matches:
            raise SQLNameError(
                f"column {ref.table + '.' if ref.table else ''}{ref.name} not found"
            )
        if len(matches) > 1:
            # Defense in depth: the analyzer reports SEM003 for this before
            # execution; this path fires only with analysis opted out.
            raise SQLNameError(f"ambiguous column reference {ref.name!r}")
        return matches[0]

    def _compile(self, expr, schema, grouped: bool, strict_names: bool = False):
        """Compile *expr* into ``fn(row)`` (or ``fn(group_rows)`` if grouped)."""
        params = self.params

        if isinstance(expr, ast.Literal):
            value = expr.value
            return (lambda _ctx, _v=value: _v)
        if isinstance(expr, ast.Param):
            if not 1 <= expr.index <= len(params):
                raise SQLError(
                    f"parameter ${expr.index} not supplied "
                    f"({len(params)} parameters given)"
                )
            value = params[expr.index - 1]
            return (lambda _ctx, _v=value: _v)
        if isinstance(expr, ast.ColumnRef):
            idx = self._resolve(schema, expr)
            if grouped:
                return lambda rows, _i=idx: rows[0][_i] if rows else None
            return lambda row, _i=idx: row[_i]
        if isinstance(expr, ast.BinaryOp):
            left = self._compile(expr.left, schema, grouped, strict_names)
            right = self._compile(expr.right, schema, grouped, strict_names)
            op = expr.op
            if op == "AND":
                return lambda ctx: _logic_and(left(ctx), right(ctx))
            if op == "OR":
                return lambda ctx: _logic_or(left(ctx), right(ctx))
            if op in ("=", "<>", "<", "<=", ">", ">="):
                return lambda ctx, _op=op: _cmp(_op, left(ctx), right(ctx))
            return lambda ctx, _op=op: _arith(_op, left(ctx), right(ctx))
        if isinstance(expr, ast.UnaryOp):
            operand = self._compile(expr.operand, schema, grouped, strict_names)
            if expr.op == "-":
                return lambda ctx: None if operand(ctx) is None else -operand(ctx)
            if expr.op == "NOT":
                def _not(ctx):
                    value = operand(ctx)
                    return None if value is None else not value
                return _not
            raise SQLError(f"unknown unary operator {expr.op}")
        if isinstance(expr, ast.IsNull):
            operand = self._compile(expr.operand, schema, grouped, strict_names)
            if expr.negated:
                return lambda ctx: operand(ctx) is not None
            return lambda ctx: operand(ctx) is None
        if isinstance(expr, ast.InList):
            operand = self._compile(expr.operand, schema, grouped, strict_names)
            item_fns = [
                self._compile(i, schema, grouped, strict_names) for i in expr.items
            ]
            negated = expr.negated

            def _in(ctx):
                value = operand(ctx)
                if value is None:
                    return None
                hit = any(value == fn(ctx) for fn in item_fns)
                return (not hit) if negated else hit

            return _in
        if isinstance(expr, ast.ArraySlice):
            base = self._compile(expr.base, schema, grouped, strict_names)
            low = (
                self._compile(expr.low, schema, grouped, strict_names)
                if expr.low is not None
                else None
            )
            high = (
                self._compile(expr.high, schema, grouped, strict_names)
                if expr.high is not None
                else None
            )

            def _slice(ctx):
                arr = base(ctx)
                if arr is None:
                    return None
                lo = low(ctx) if low is not None else 1
                hi = high(ctx) if high is not None else len(arr)
                if lo is None or hi is None:
                    return None
                lo = max(lo, 1)
                return list(arr[lo - 1 : hi])

            return _slice
        if isinstance(expr, ast.ArrayIndex):
            base = self._compile(expr.base, schema, grouped, strict_names)
            index = self._compile(expr.index, schema, grouped, strict_names)

            def _index(ctx):
                arr = base(ctx)
                i = index(ctx)
                if arr is None or i is None:
                    return None
                if not 1 <= i <= len(arr):
                    return None  # PostgreSQL: out-of-range subscript is NULL
                return arr[i - 1]

            return _index
        if isinstance(expr, ast.ArrayLiteral):
            item_fns = [
                self._compile(i, schema, grouped, strict_names) for i in expr.items
            ]
            return lambda ctx: [fn(ctx) for fn in item_fns]
        if isinstance(expr, ast.CaseExpr):
            when_fns = [
                (
                    self._compile(cond, schema, grouped, strict_names),
                    self._compile(result, schema, grouped, strict_names),
                )
                for cond, result in expr.whens
            ]
            default_fn = (
                self._compile(expr.default, schema, grouped, strict_names)
                if expr.default is not None
                else None
            )

            def _case(ctx):
                for cond_fn, result_fn in when_fns:
                    if _is_true(cond_fn(ctx)):
                        return result_fn(ctx)
                return default_fn(ctx) if default_fn is not None else None

            return _case
        if isinstance(expr, ast.FuncCall):
            if is_aggregate(expr.name):
                return self._compile_aggregate(expr, schema, grouped)
            if expr.name in SET_RETURNING:
                raise SQLSyntaxError(
                    "UNNEST is only allowed as a top-level select item"
                )
            fn = get_scalar(expr.name)
            arg_fns = [
                self._compile(a, schema, grouped, strict_names) for a in expr.args
            ]
            return lambda ctx, _f=fn: _f(*[a(ctx) for a in arg_fns])
        if isinstance(expr, ast.WindowFunc):
            raise SQLSyntaxError(
                "window functions are only allowed as top-level select items"
            )
        if isinstance(expr, ast.Star):
            raise SQLSyntaxError("* is only allowed in the select list")
        raise SQLError(f"cannot compile {type(expr).__name__}")

    def _compile_aggregate(self, expr: ast.FuncCall, schema, grouped: bool):
        if not grouped:
            raise SQLSyntaxError(
                f"aggregate {expr.name}() used outside of aggregation context"
            )
        agg = AGGREGATE_FUNCTIONS[expr.name]
        if expr.star:
            if expr.name != "count":
                raise SQLSyntaxError(f"{expr.name}(*) is not valid")
            return lambda rows: len(rows)
        if len(expr.args) != 1:
            raise SQLSyntaxError(f"{expr.name}() takes exactly one argument")
        arg_fn = self._compile(expr.args[0], schema, grouped=False)
        order_fns = [
            self._compile(item.expr, schema, grouped=False)
            for item in expr.agg_order_by
        ]
        descending = [item.descending for item in expr.agg_order_by]
        distinct = expr.distinct

        def _agg(rows):
            use_rows = rows
            if order_fns:
                keys = [tuple(fn(r) for fn in order_fns) for r in rows]
                use_rows = _sort_rows(list(rows), len(order_fns), keys, descending)
            values = [arg_fn(r) for r in use_rows]
            if distinct:
                seen = set()
                deduped = []
                for v in values:
                    key = tuple(v) if isinstance(v, list) else v
                    if key not in seen:
                        seen.add(key)
                        deduped.append(v)
                values = deduped
            return agg(values)

        return _agg
