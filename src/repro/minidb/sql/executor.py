"""Streaming interpreter for physical plans.

The executor does no planning: it receives a
:class:`~repro.minidb.sql.plan.Plan` (from the planner, usually via the
engine's plan cache) and interprets each node as a generator. Rows stream
between operators one pull at a time; the only operators that materialize
their input are the blocking ones — Sort/Top-K, WindowAgg, Aggregate, the
hash-join build side and the nested-loop inner side — plus CTEs, which are
materialized once per execution as the paper's Codes 3-4 require.

Tracing wraps each operator's generator: every pull is timed and buffer/disk
counter deltas are attributed to the operator whose ``next()`` triggered the
I/O. Parent windows strictly contain child windows, so inclusive totals nest
correctly and ``EXPLAIN ANALYZE`` renders the same tree shape as the static
``EXPLAIN`` (which renders from the plan without executing anything).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.errors import SQLError, SQLTypeError
from repro.minidb.metrics import NULL_SCOPE, TraceCollector, render_plan
from repro.minidb.sql import plan as phys
from repro.minidb.sql.planner import (
    _hashable,
    _sort_rows,
    composite_key,
    plan_statement,
)


@dataclass
class Result:
    """Statement result returned to the caller."""

    columns: list[str]
    rows: list[tuple]
    trace: object = field(default=None, compare=False)

    def scalar(self):
        """Single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SQLError(
                f"scalar() on a {len(self.rows)}x{len(self.columns)} result"
            )
        return self.rows[0][0]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)


_DONE = object()


def _traced_gen(stats, gen, collector):
    """Wrap *gen* so each pull's time and I/O land on *stats*.

    Counter deltas are measured around every ``next()``: child operators
    pulled inside that window accumulate into their own stats too, so a
    parent's counters are inclusive of its children (the ``self_*``
    properties on OperatorStats subtract them back out).
    """
    # Per-thread views when available, so concurrent sessions' I/O never
    # bleeds into this statement's operator tree.
    pool_stats = collector.pool_stats
    disk_stats = collector.disk_stats
    try:
        while True:
            pool_before = (
                pool_stats.snapshot() if pool_stats is not None else None
            )
            disk_before = (
                disk_stats.snapshot() if disk_stats is not None else None
            )
            started = time.perf_counter()
            try:
                row = next(gen, _DONE)
            finally:
                stats.time_ms += (time.perf_counter() - started) * 1000.0
                if pool_before is not None:
                    delta = pool_stats.delta(pool_before)
                    stats.pool_hits += delta.hits
                    stats.pool_misses += delta.misses
                if disk_before is not None:
                    delta = disk_stats.delta(disk_before)
                    stats.page_reads += delta.reads
                    stats.io_ms += delta.simulated_read_ms
            if row is _DONE:
                return
            stats.rows += 1
            yield row
    finally:
        # Deterministic shutdown: whether this wrapper is exhausted or
        # closed early (LIMIT/Top-K above), closing the wrapped generator
        # propagates GeneratorExit down the whole operator chain so scans
        # release their buffer-pool pins immediately instead of waiting
        # for garbage collection.
        gen.close()


class Executor:
    """Interprets physical plans against a catalog."""

    def __init__(self, catalog, params: tuple = (), collector=None):
        self.catalog = catalog
        self.params = tuple(params)
        self.collector = collector

    # -- public entry points --------------------------------------------
    def execute(self, stmt) -> Result:
        """Compatibility shim: plan *stmt* ad hoc, then run it."""
        return self.run(plan_statement(stmt, self.catalog))

    def run(self, plan: phys.Plan) -> Result:
        for index in plan.param_indices:
            if not 1 <= index <= len(self.params):
                raise SQLError(
                    f"parameter ${index} not supplied "
                    f"({len(self.params)} parameters given)"
                )
        node = plan.statement
        if isinstance(node, phys.ExplainPlan):
            return self._run_explain(node)
        if isinstance(node, phys.QueryPlan):
            rows = list(self._emit_query(node, {}, None))
            return Result(list(node.columns), rows)
        if isinstance(node, phys.CreateTablePlan):
            return self._run_create(node)
        if isinstance(node, phys.DropTablePlan):
            self.catalog.drop_table(node.table, if_exists=node.if_exists)
            return Result([], [])
        if isinstance(node, phys.InsertPlan):
            return self._run_insert(node)
        if isinstance(node, phys.DeletePlan):
            return self._run_delete(node)
        if isinstance(node, phys.UpdatePlan):
            return self._run_update(node)
        if isinstance(node, phys.VacuumPlan):
            return self._run_vacuum(node)
        raise SQLError(f"cannot execute {type(node).__name__}")

    # -- tracing helpers -------------------------------------------------
    def _node(self, name, detail="", parent=None):
        if self.collector is None:
            return None
        return self.collector.node(name, detail, parent)

    def _traced(self, stats, gen):
        if stats is None:
            return gen
        return _traced_gen(stats, gen, self.collector)

    def _op(self, name, detail=""):
        """Legacy scope API, still used for DML/Vacuum statements."""
        if self.collector is None:
            return NULL_SCOPE
        return self.collector.operator(name, detail)

    # -- utility statements ----------------------------------------------
    def _run_explain(self, node: phys.ExplainPlan) -> Result:
        if not node.analyze:
            lines = phys.explain_lines(node.inner)
            return Result(["plan"], [(line,) for line in lines])
        collector = TraceCollector(getattr(self.catalog, "pool", None))
        Executor(self.catalog, self.params, collector=collector).run(node.inner)
        lines = render_plan(collector.roots, analyze=True)
        return Result(["plan"], [(line,) for line in lines])

    def _run_create(self, node: phys.CreateTablePlan) -> Result:
        from repro.minidb.catalog import TableSchema
        from repro.minidb.values import Column, type_from_name

        stmt = node.stmt
        columns = [
            Column(c.name, type_from_name(c.type_name)) for c in stmt.columns
        ]
        schema = TableSchema(
            stmt.name, columns, stmt.primary_key, storage=stmt.storage
        )
        self.catalog.create_table(schema, if_not_exists=stmt.if_not_exists)
        return Result([], [])

    def _run_vacuum(self, node: phys.VacuumPlan) -> Result:
        table = self.catalog.get(node.table)
        with self._op("Vacuum", node.table) as op:
            live = table.vacuum()
            op.rows = live
        return Result(["rows"], [(live,)])

    # -- DML --------------------------------------------------------------
    def _run_insert(self, node: phys.InsertPlan) -> Result:
        table = self.catalog.get(node.table)
        params = self.params
        if node.select is not None:
            source_rows = list(self._emit_query(node.select, {}, None))
        else:
            source_rows = [
                tuple(fn((), params) for fn in fns) for fns in node.row_fns
            ]
        count = 0
        with self._op("Insert", f"on {node.table}") as op:
            for source in source_rows:
                if len(source) != len(node.positions):
                    raise SQLError(
                        f"INSERT expects {len(node.positions)} values, "
                        f"got {len(source)}"
                    )
                row = [None] * node.width
                for position, value in zip(node.positions, source):
                    row[position] = value
                table.insert(tuple(row))
                count += 1
            op.rows = count
        return Result(["count"], [(count,)])

    def _run_delete(self, node: phys.DeletePlan) -> Result:
        table = self.catalog.get(node.table)
        with self._op("Delete", f"on {node.table}") as op:
            victims = self._matching_rows(table, node.where_fn)
            for rid, row in victims:
                table.delete_row(rid, row)
            op.rows = len(victims)
        return Result(["count"], [(len(victims),)])

    def _run_update(self, node: phys.UpdatePlan) -> Result:
        table = self.catalog.get(node.table)
        params = self.params
        with self._op("Update", f"on {node.table}") as op:
            victims = self._matching_rows(table, node.where_fn)
            for rid, row in victims:
                new_row = list(row)
                for position, fn in zip(node.positions, node.value_fns):
                    new_row[position] = fn(row, params)  # sees the old row
                table.update_row(rid, row, tuple(new_row))
            op.rows = len(victims)
        return Result(["count"], [(len(victims),)])

    def _matching_rows(self, table, where_fn):
        params = self.params
        matches = []
        for rid, raw in table.heap.scan():
            row = table.decode(raw)
            if where_fn is None or where_fn(row, params) is True:
                matches.append((rid, row))
        return matches

    # -- query interpretation ---------------------------------------------
    def _emit_query(self, qplan: phys.QueryPlan, env: dict, parent):
        """Materialize CTEs (once, lazily, on first pull), then stream the
        root operator. CTE work runs inside this generator's enclosing trace
        window, so I/O attribution stays exact."""
        env = dict(env)

        def gen():
            for name, sub in qplan.ctes:
                stats = self._node("CTE", name, parent)
                env[name] = list(
                    self._traced(stats, self._emit_query(sub, env, stats))
                )
            yield from self._emit(qplan.root, env, parent)

        return gen()

    def _emit(self, node, env, parent):
        if isinstance(node, phys.QueryPlan):
            return self._emit_query(node, env, parent)
        return self._EMIT[type(node)](self, node, env, parent)

    # -- scans -----------------------------------------------------------
    def _emit_result0(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)

        def gen():
            yield ()

        return self._traced(stats, gen())

    def _emit_seq_scan(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        table = self.catalog.get(node.table)
        params = self.params
        filters = node.filters
        zone_eq = phys.zone_key(node, params)

        def gen():
            for row in table.scan(zone_eq=zone_eq):
                if all(p(row, params) is True for p in filters):
                    yield row

        return self._traced(stats, gen())

    def _emit_pk_lookup(self, node, env, parent):
        params = self.params
        table = self.catalog.get(node.table)
        key = tuple(fn((), params) for fn in node.key_fns)
        if all(isinstance(k, int) for k in key):
            stats = self._node(node.name, node.detail, parent)
            filters = node.filters

            def gen():
                row = table.lookup(key)
                if row is None:
                    return
                if all(p(row, params) is True for p in filters):
                    yield row

            return self._traced(stats, gen())
        # A parameter bound to a non-integer can never match a B+Tree key:
        # degrade to a scan applying the pin predicates (the plan said Index
        # Scan; the trace tells the truth).
        stats = self._node("Seq Scan", f"on {node.table}", parent)
        predicates = list(node.pin_fns) + list(node.filters)

        def scan_gen():
            for row in table.scan():
                if all(p(row, params) is True for p in predicates):
                    yield row

        return self._traced(stats, scan_gen())

    def _emit_cte_scan(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        params = self.params
        filters = node.filters

        def gen():
            # env is read inside the generator: the enclosing query's CTE
            # loop has populated it by the time the first row is pulled.
            for row in env[node.cte_name]:
                if all(p(row, params) is True for p in filters):
                    yield row

        return self._traced(stats, gen())

    def _emit_subquery_scan(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        inner = self._emit_query(node.subplan, env, stats)
        params = self.params
        filters = node.filters

        def gen():
            for row in inner:
                if all(p(row, params) is True for p in filters):
                    yield row

        return self._traced(stats, gen())

    # -- joins -----------------------------------------------------------
    def _emit_inl(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        if stats is not None:
            stats.loops = 0
        left = self._emit(node.left, env, stats)
        table = self.catalog.get(node.table)
        params = self.params
        key_fns = node.key_fns
        filters = node.filters

        def gen():
            probe_cache: dict = {}
            for left_row in left:
                if stats is not None:
                    stats.loops += 1
                key = tuple(fn(left_row, params) for fn in key_fns)
                if any(not isinstance(k, int) for k in key):
                    continue
                if key in probe_cache:
                    match = probe_cache[key]
                else:
                    match = table.lookup(key)
                    probe_cache[key] = match
                if match is None:
                    continue
                row = left_row + match
                if all(p(row, params) is True for p in filters):
                    yield row

        return self._traced(stats, gen())

    def _emit_hash_join(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        left = self._emit(node.left, env, stats)
        right = self._emit(node.right, env, stats)
        params = self.params
        left_key = node.left_key
        right_key = node.right_key
        filters = node.filters

        def gen():
            buckets: dict = {}
            for row in right:  # build side
                key = right_key(row, params)
                if key is None:
                    continue
                buckets.setdefault(key, []).append(row)
            for row in left:  # probe side
                key = left_key(row, params)
                if key is None:
                    continue
                for match in buckets.get(key, ()):
                    out = row + match
                    if all(p(out, params) is True for p in filters):
                        yield out

        return self._traced(stats, gen())

    def _emit_nested_loop(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        left = self._emit(node.left, env, stats)
        right = self._emit(node.right, env, stats)
        params = self.params
        filters = node.filters

        def gen():
            right_rows = list(right)
            for left_row in left:
                for right_row in right_rows:
                    out = left_row + right_row
                    if all(p(out, params) is True for p in filters):
                        yield out

        return self._traced(stats, gen())

    # -- row pipeline ------------------------------------------------------
    def _emit_filter(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats)
        params = self.params
        predicates = node.predicates

        def gen():
            for row in child:
                if all(p(row, params) is True for p in predicates):
                    yield row

        return self._traced(stats, gen())

    def _emit_unnest(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats)
        params = self.params
        srf_fns = node.srf_fns

        def gen():
            for row in child:
                arrays = []
                max_len = 0
                for fn in srf_fns:
                    value = fn(row, params)
                    if value is None:
                        value = []
                    elif not isinstance(value, (list, tuple)):
                        raise SQLTypeError(
                            f"UNNEST expects an array, got {value!r}"
                        )
                    arrays.append(value)
                    max_len = max(max_len, len(value))
                for j in range(max_len):
                    yield row + tuple(
                        arr[j] if j < len(arr) else None for arr in arrays
                    )

        return self._traced(stats, gen())

    def _emit_window(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats)
        params = self.params

        def gen():
            rows = list(child)
            extras = [[] for _ in rows]
            for spec in node.specs:
                indexed = list(range(len(rows)))
                keys = [
                    tuple(fn(rows[i], params) for fn in spec.order_fns)
                    for i in indexed
                ]
                ordered = _sort_rows(
                    indexed, len(spec.order_fns), keys, spec.descending
                )
                counters: dict = {}
                numbers = [0] * len(rows)
                for i in ordered:
                    part = _hashable(
                        tuple(fn(rows[i], params) for fn in spec.part_fns)
                    )
                    counters[part] = counters.get(part, 0) + 1
                    numbers[i] = counters[part]
                for i in range(len(rows)):
                    extras[i].append(numbers[i])
            for row, extra in zip(rows, extras):
                yield row + tuple(extra)

        return self._traced(stats, gen())

    def _emit_project(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats)
        params = self.params
        item_fns = node.item_fns
        specs = node.key_specs

        def gen():
            if specs is None:
                for row in child:
                    yield tuple(fn(row, params) for fn in item_fns)
            else:
                for row in child:
                    out = tuple(fn(row, params) for fn in item_fns)
                    key = tuple(
                        out[s] if isinstance(s, int) else s(row, params)
                        for s in specs
                    )
                    yield (out, key)

        return self._traced(stats, gen())

    def _emit_aggregate(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats)
        params = self.params

        def gen():
            rows = list(child)
            if node.group_fns:
                groups: dict = {}
                for row in rows:
                    key = _hashable(
                        tuple(fn(row, params) for fn in node.group_fns)
                    )
                    groups.setdefault(key, []).append(row)
                group_list = list(groups.values())
            else:
                group_list = [rows]  # one group, possibly empty
            for group_rows in group_list:
                if (
                    node.having_fn is not None
                    and node.having_fn(group_rows, params) is not True
                ):
                    continue
                out = tuple(fn(group_rows, params) for fn in node.item_fns)
                if node.key_specs is None:
                    yield out
                else:
                    key = tuple(
                        out[s] if isinstance(s, int) else s(group_rows, params)
                        for s in node.key_specs
                    )
                    yield (out, key)

        return self._traced(stats, gen())

    def _emit_distinct(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats)

        def gen():
            seen = set()
            if node.keyed:
                for row, key in child:
                    h = _hashable(row)
                    if h not in seen:
                        seen.add(h)
                        yield (row, key)
            else:
                for row in child:
                    h = _hashable(row)
                    if h not in seen:
                        seen.add(h)
                        yield row

        return self._traced(stats, gen())

    def _emit_sort(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats)
        params = self.params

        def gen():
            if node.keyed:
                pairs = list(child)
                rows = [pair[0] for pair in pairs]
                keys = [pair[1] for pair in pairs]
            else:
                rows = list(child)
                keys = [
                    tuple(fn(row, params) for fn in node.key_fns)
                    for row in rows
                ]
            yield from _sort_rows(
                rows, len(node.descending), keys, node.descending
            )

        return self._traced(stats, gen())

    def _emit_topk(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats)
        params = self.params
        limit = self._const_int(node.limit_fn)
        offset = (
            self._const_int(node.offset_fn)
            if node.offset_fn is not None
            else 0
        )
        descending = node.descending

        def gen():
            if node.keyed:
                entries = (
                    (composite_key(key, descending), row) for row, key in child
                )
            else:
                entries = (
                    (
                        composite_key(
                            tuple(fn(row, params) for fn in node.key_fns),
                            descending,
                        ),
                        row,
                    )
                    for row in child
                )
            # nsmallest is stable (documented as equivalent to a sorted()
            # prefix), so ties keep input order exactly like the full Sort.
            try:
                best = heapq.nsmallest(
                    offset + limit, entries, key=lambda e: e[0]
                )
            finally:
                # nsmallest(0, ...) never touches the stream: close the
                # child explicitly so scan pins are released either way.
                child.close()
            for _key, row in best[offset:]:
                yield row

        return self._traced(stats, gen())

    def _emit_limit(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        child = self._emit(node.child, env, stats)
        limit = (
            self._const_int(node.limit_fn)
            if node.limit_fn is not None
            else None
        )
        offset = (
            self._const_int(node.offset_fn)
            if node.offset_fn is not None
            else 0
        )

        def gen():
            # An early return below (limit satisfied) abandons the child
            # mid-stream; the explicit close releases any pins a suspended
            # scan still holds, without waiting for garbage collection.
            try:
                iterator = iter(child)
                for _ in range(offset):
                    if next(iterator, _DONE) is _DONE:
                        return
                if limit is None:
                    yield from iterator
                    return
                count = 0
                while count < limit:
                    row = next(iterator, _DONE)
                    if row is _DONE:
                        return
                    yield row
                    count += 1
            finally:
                child.close()

        return self._traced(stats, gen())

    def _const_int(self, fn):
        value = fn((), self.params)
        if not isinstance(value, int) or value < 0:
            raise SQLError(
                f"LIMIT/OFFSET must be a non-negative integer, got {value!r}"
            )
        return value

    def _emit_union(self, node, env, parent):
        stats = self._node(node.name, node.detail, parent)
        left = self._emit(node.left, env, stats)
        right = self._emit(node.right, env, stats)

        def gen():
            if node.op == "UNION":
                seen = set()
                for row in left:
                    key = _hashable(row)
                    if key not in seen:
                        seen.add(key)
                        yield row
                for row in right:
                    key = _hashable(row)
                    if key not in seen:
                        seen.add(key)
                        yield row
            else:  # UNION ALL
                yield from left
                yield from right

        return self._traced(stats, gen())

    _EMIT = {
        phys.Result0: _emit_result0,
        phys.SeqScan: _emit_seq_scan,
        phys.PkLookup: _emit_pk_lookup,
        phys.CteScan: _emit_cte_scan,
        phys.SubqueryScan: _emit_subquery_scan,
        phys.IndexNestedLoop: _emit_inl,
        phys.HashJoin: _emit_hash_join,
        phys.NestedLoop: _emit_nested_loop,
        phys.Filter: _emit_filter,
        phys.Unnest: _emit_unnest,
        phys.Window: _emit_window,
        phys.Project: _emit_project,
        phys.Aggregate: _emit_aggregate,
        phys.Distinct: _emit_distinct,
        phys.Sort: _emit_sort,
        phys.TopK: _emit_topk,
        phys.Limit: _emit_limit,
        phys.Union: _emit_union,
    }
