"""Physical plan tree: the contract between the planner and the executor.

The planner (:mod:`repro.minidb.sql.planner`) lowers an analyzed AST into a
tree of the node classes below; the executor interprets that tree as a
pipeline of streaming generators. Nothing in this module touches storage —
a plan is a pure description with every column reference resolved to a slot
and every expression compiled to a ``fn(ctx, params)`` closure, so the same
plan object can be cached and re-executed with different parameter vectors
(prepared statements).

Each node carries:

* ``name`` / ``detail`` — the operator label, identical to what the runtime
  trace shows, so ``EXPLAIN`` (static, via :func:`explain_lines`) and
  ``EXPLAIN ANALYZE`` (runtime, via the trace tree) render the same shape;
* ``ast_ref`` — the AST node the operator was lowered from, used by the
  analyzer to attach diagnostics spans to plan-derived access paths.

The access-path story (the paper's Codes 1-4) is readable straight off the
node types: :class:`PkLookup` is a single B+Tree point lookup ("exactly two
rows" per v2v query), :class:`IndexNestedLoop` probes a table by its full
primary key once per outer row ("at most ``|Lout|/|V|`` rows" per kNN
query), and :class:`SeqScan` is the full-scan fallback the label tables
must never take.
"""

from __future__ import annotations


class PlanNode:
    """Base class for physical operators."""

    name = "?"
    detail = ""
    ast_ref = None
    #: :class:`ParallelRegion` rooted at this node, set by
    #: :func:`annotate_parallel` on batchable plans. The batch executor
    #: replaces an annotated subtree with a morsel-parallel Gather when a
    #: worker pool is available; the row executor ignores it.
    parallel_region = None
    #: numpy comparison specs parallel to the node's ``filters`` list (an
    #: entry is ``None`` when a predicate has no array form). Set by the
    #: planner on filtering nodes; the batch executor evaluates present
    #: specs as boolean masks over column batches instead of calling the
    #: row closure per tuple. Purely an evaluation strategy — results are
    #: identical either way.
    filter_specs = None

    #: Scans only (SeqScan / PkLookup / IndexNestedLoop): decode columnar
    #: integer-array cells straight to int64 ndarrays for the batch
    #: executor's UNNEST column kernels. Set by the planner only when it
    #: proves nothing but UNNEST ever touches those cells (select items,
    #: filters and sort keys all reference scalar columns); the row
    #: executor ignores the flag and decodes lists as always.
    np_decode = False

    #: First output position the scanned table's columns occupy: 0 for a
    #: plain scan, the left input's width for an IndexNestedLoop probe
    #: (set by the planner). Lets np_decode analyses locate array cells
    #: in the node's output schema without re-deriving the join shape.
    np_probe_base = 0

    def children(self):
        """Child operators in display order (sub-plans included)."""
        return ()

    @property
    def label(self) -> str:
        return f"{self.name} {self.detail}".rstrip()

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.label!r}>"


class QueryPlan:
    """One SELECT (or set operation): CTE sub-plans plus an operator tree.

    ``columns`` is the ordered list of output column names; the executor
    materializes each CTE once per execution, in definition order, before
    pulling from ``root``.
    """

    def __init__(self, ctes, root, columns, ast_ref=None):
        self.ctes = ctes  # list[(name, QueryPlan)]
        self.root = root
        self.columns = columns  # list[str]
        self.ast_ref = ast_ref


class Plan:
    """A fully planned statement, ready to execute (and to cache).

    ``param_indices`` lists every ``$n`` the statement references so the
    executor can reject a short parameter vector before producing rows.
    """

    def __init__(self, statement, param_indices=()):
        self.statement = statement  # QueryPlan or a DML/utility node
        self.param_indices = tuple(param_indices)
        #: True when every operator has a batch-mode implementation, so the
        #: vectorized executor may run this plan. Set by the planner via
        #: :func:`batch_capable`; the row executor ignores it.
        self.batchable = False


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------
class Result0(PlanNode):
    """Empty FROM clause: one zero-column row (PostgreSQL's Result)."""

    name = "Result"


class SeqScan(PlanNode):
    name = "Seq Scan"

    #: ``fn((), params)`` producing the zone-map skip key, set by the
    #: planner when the table is columnar and a pushed-down conjunct pins
    #: the zone column (hub) to a constant/parameter. Both executors apply
    #: it identically via :func:`zone_key`, so page-I/O accounting stays
    #: row/batch-identical; skipping is conservative (pages without valid
    #: zone maps are always read) and the filters still run.
    zone_eq_fn = None

    def __init__(self, table, alias, filters, ast_ref=None):
        self.table = table
        self.alias = alias
        self.filters = filters  # list[fn(row, params)]
        self.ast_ref = ast_ref
        self.detail = f"on {table}"


class PkLookup(PlanNode):
    """Point lookup: every PK column pinned to a constant/parameter.

    ``key_fns`` produce the key from the parameter vector. If a parameter
    turns out not to be an integer at runtime the executor degrades to a
    sequential scan applying ``pin_fns`` (the consumed pin predicates) plus
    ``filters`` — same rows, different access path, and the trace says so.
    """

    name = "Index Scan"

    def __init__(self, table, alias, pk, key_fns, pin_fns, filters, ast_ref=None):
        self.table = table
        self.alias = alias
        self.pk = pk
        self.key_fns = key_fns
        self.pin_fns = pin_fns
        self.filters = filters
        self.ast_ref = ast_ref
        self.detail = f"using {table}_pkey on {table} (point lookup)"


class CteScan(PlanNode):
    name = "CTE Scan"

    def __init__(self, cte_name, alias, filters, ast_ref=None):
        self.cte_name = cte_name
        self.alias = alias
        self.filters = filters
        self.ast_ref = ast_ref
        self.detail = f"on {cte_name}"


class SubqueryScan(PlanNode):
    name = "Subquery Scan"

    def __init__(self, alias, subplan, filters, ast_ref=None):
        self.alias = alias
        self.subplan = subplan  # QueryPlan
        self.filters = filters
        self.ast_ref = ast_ref
        self.detail = alias

    def children(self):
        return (self.subplan,)


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------
class IndexNestedLoop(PlanNode):
    """Probe a base table by its full primary key, once per outer row."""

    name = "Index Nested Loop"

    #: numpy operand specs parallel to ``key_fns`` (planner-set when every
    #: probe-key expression lowers to the spec grammar). The batch executor
    #: then computes all probe keys of a column batch with array kernels
    #: instead of calling the per-row closures; any runtime surprise (NULL
    #: parameter, zero divisor, non-int64 result) falls back to the row
    #: closures with identical keys.
    np_key_specs = None

    def __init__(self, left, table, alias, pk, key_fns, filters, ast_ref=None):
        self.left = left
        self.table = table
        self.alias = alias
        self.pk = pk
        self.key_fns = key_fns  # evaluated against the left row
        self.filters = filters  # post-join predicates on the joined schema
        self.ast_ref = ast_ref
        self.detail = f"probe {table} by primary key ({', '.join(pk)})"

    def children(self):
        return (self.left,)


class HashJoin(PlanNode):
    name = "Hash Join"

    #: Column index of the equi-join key on each side when the key is a
    #: plain column reference (planner-set); the batch executor then joins
    #: with sort + ``np.searchsorted`` over column batches.
    np_left_col = None
    np_right_col = None

    def __init__(self, left, right, left_key, right_key, filters):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.filters = filters

    def children(self):
        return (self.left, self.right)


class NestedLoop(PlanNode):
    name = "Nested Loop"
    detail = "(cross product)"

    def __init__(self, left, right, filters):
        self.left = left
        self.right = right
        self.filters = filters

    def children(self):
        return (self.left, self.right)


# ---------------------------------------------------------------------------
# Row pipeline
# ---------------------------------------------------------------------------
class Filter(PlanNode):
    name = "Filter"

    def __init__(self, child, predicates, detail=""):
        self.child = child
        self.predicates = predicates
        self.detail = detail

    def children(self):
        return (self.child,)


class Unnest(PlanNode):
    """Parallel set-returning expansion (PostgreSQL's ProjectSet)."""

    name = "ProjectSet"

    def __init__(self, child, srf_fns):
        self.child = child
        self.srf_fns = srf_fns
        self.detail = f"(UNNEST x {len(srf_fns)})"
        #: Select-item positions the SRF outputs land in (parallel to
        #: ``srf_fns``), set by the planner. The batch executor uses it to
        #: fuse a parent Project into the expansion loop: non-SRF items are
        #: evaluated once per *input* row instead of once per output row.
        self.srf_positions = None

    def children(self):
        return (self.child,)


class WindowSpec:
    """One row_number() column: partition keys plus an ordering."""

    __slots__ = ("part_fns", "order_fns", "descending")

    def __init__(self, part_fns, order_fns, descending):
        self.part_fns = part_fns
        self.order_fns = order_fns
        self.descending = descending


class Window(PlanNode):
    name = "WindowAgg"

    def __init__(self, child, specs):
        self.child = child
        self.specs = specs  # list[WindowSpec]

    def children(self):
        return (self.child,)


class Project(PlanNode):
    """Evaluate the select list.

    When ``key_specs`` is set (the query has ORDER BY), each output row is
    paired with its sort key so the Sort/TopK above never recomputes
    expressions. A spec is either an int (index into the output row — a
    positional or alias reference) or a ``fn(input_row, params)``.
    """

    name = "Project"

    def __init__(self, child, item_fns, key_specs=None):
        self.child = child
        self.item_fns = item_fns
        self.key_specs = key_specs
        #: Input-column index per item when every select item is a plain
        #: column reference (planner-set); lets the batch executor project
        #: by tuple indexing instead of calling one closure per item.
        self.simple_cols = None

    def children(self):
        return (self.child,)


class Aggregate(PlanNode):
    """Grouped evaluation; blocking. Same key_specs contract as Project,
    except callables receive the group's row list."""

    def __init__(self, child, group_fns, item_fns, having_fn, key_specs, group_key_count):
        self.child = child
        self.group_fns = group_fns
        self.item_fns = item_fns
        self.having_fn = having_fn
        self.key_specs = key_specs
        self.group_key_count = group_key_count
        #: Streaming-accumulator recipe set by the planner when every select
        #: item is a plain MIN/MAX/SUM/COUNT/AVG (or aggregate-free) and
        #: there is no HAVING: the batch executor then folds rows into
        #: per-group accumulators instead of materializing group row lists.
        self.simple_spec = None
        #: numpy grouping recipe ``(group_col_indices, items)`` set by the
        #: planner when the grouping keys are plain columns and every item
        #: is MIN/MAX/COUNT over a numpy-evaluable operand: the batch
        #: executor then aggregates whole column batches with
        #: ``np.unique`` + ``reduceat`` instead of a per-row Python fold.
        self.np_spec = None
        if group_key_count:
            self.name = "GroupAggregate"
            self.detail = f"({group_key_count} keys)"
        else:
            self.name = "Aggregate"

    def children(self):
        return (self.child,)


class Distinct(PlanNode):
    name = "Unique"

    def __init__(self, child, keyed):
        self.child = child
        self.keyed = keyed  # True when the stream is (row, sort_key) pairs

    def children(self):
        return (self.child,)


class Sort(PlanNode):
    """Full sort; blocking. ``keyed`` streams are (row, key) pairs from the
    operator below; otherwise ``key_fns`` compute keys from the row (the
    set-operation path, where ORDER BY applies to the combined output)."""

    name = "Sort"

    def __init__(self, child, descending, keyed, key_fns=None):
        self.child = child
        self.descending = descending
        self.keyed = keyed
        self.key_fns = key_fns
        self.detail = f"({len(descending)} keys)"

    def children(self):
        return (self.child,)


class TopK(PlanNode):
    """ORDER BY + LIMIT fused into a bounded heap (heapq.nsmallest): keeps
    offset+limit candidates instead of sorting the whole input."""

    name = "Top-K Sort"

    def __init__(self, child, descending, keyed, key_fns, limit_fn, offset_fn):
        self.child = child
        self.descending = descending
        self.keyed = keyed
        self.key_fns = key_fns
        self.limit_fn = limit_fn
        self.offset_fn = offset_fn
        self.detail = f"({len(descending)} keys)"

    def children(self):
        return (self.child,)


class Limit(PlanNode):
    name = "Limit"

    def __init__(self, child, limit_fn, offset_fn):
        self.child = child
        self.limit_fn = limit_fn
        self.offset_fn = offset_fn

    def children(self):
        return (self.child,)


class Union(PlanNode):
    """One binary set-operation step; chains left-deep. Children are
    :class:`QueryPlan` (parenthesized operands) or plain operator nodes."""

    def __init__(self, left, right, op):
        self.left = left
        self.right = right
        self.op = op  # "UNION" | "UNION ALL"
        self.name = op.title()

    def children(self):
        return (self.left, self.right)


# ---------------------------------------------------------------------------
# DML / utility statements
# ---------------------------------------------------------------------------
class CreateTablePlan(PlanNode):
    def __init__(self, stmt):
        self.stmt = stmt
        self.ast_ref = stmt


class DropTablePlan(PlanNode):
    def __init__(self, table, if_exists, ast_ref=None):
        self.table = table
        self.if_exists = if_exists
        self.ast_ref = ast_ref


class InsertPlan(PlanNode):
    name = "Insert"

    def __init__(self, table, positions, width, row_fns, select, ast_ref=None):
        self.table = table
        self.positions = positions  # target slot per supplied value
        self.width = width  # total columns in the table
        self.row_fns = row_fns  # list[list[fn]] for VALUES
        self.select = select  # QueryPlan for INSERT ... SELECT
        self.ast_ref = ast_ref
        self.detail = f"on {table}"


class DeletePlan(PlanNode):
    name = "Delete"

    def __init__(self, table, where_fn, ast_ref=None):
        self.table = table
        self.where_fn = where_fn
        self.ast_ref = ast_ref
        self.detail = f"on {table}"


class UpdatePlan(PlanNode):
    name = "Update"

    def __init__(self, table, positions, value_fns, where_fn, ast_ref=None):
        self.table = table
        self.positions = positions
        self.value_fns = value_fns
        self.where_fn = where_fn
        self.ast_ref = ast_ref
        self.detail = f"on {table}"


class VacuumPlan(PlanNode):
    name = "Vacuum"

    def __init__(self, table, ast_ref=None):
        self.table = table
        self.detail = table
        self.ast_ref = ast_ref


class ExplainPlan(PlanNode):
    """EXPLAIN renders ``inner`` statically (no execution, no I/O);
    EXPLAIN ANALYZE executes it under a fresh trace collector."""

    def __init__(self, analyze, inner):
        self.analyze = analyze
        self.inner = inner  # Plan


# ---------------------------------------------------------------------------
# Static rendering (EXPLAIN without ANALYZE)
# ---------------------------------------------------------------------------
def explain_lines(plan: Plan) -> list[str]:
    """Indented operator labels, mirroring the runtime trace tree shape."""
    lines: list[str] = []

    def visit(node, depth):
        if isinstance(node, QueryPlan):
            for name, sub in node.ctes:
                lines.append("  " * depth + f"CTE {name}")
                visit(sub, depth + 1)
            visit(node.root, depth)
            return
        if isinstance(node, (CreateTablePlan, DropTablePlan)):
            return  # DDL has no operator tree, matching the runtime trace
        lines.append("  " * depth + node.label)
        if isinstance(node, InsertPlan) and node.select is not None:
            visit(node.select, depth + 1)
        for child in node.children():
            visit(child, depth + 1)

    node = plan.statement
    if isinstance(node, ExplainPlan):
        node = node.inner.statement
    visit(node, 0)
    return lines


def zone_key(node, params) -> int | None:
    """Resolve a scan node's zone-map skip key for this execution.

    Returns ``None`` (no skipping) unless the node carries a ``zone_eq_fn``
    that yields a plain integer — any other runtime value means the
    equality can never use the integer zone bounds soundly, so the scan
    reads every page and lets the filters decide.
    """
    fn = getattr(node, "zone_eq_fn", None)
    if fn is None:
        return None
    value = fn((), params)
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


#: Operators with no batch-mode implementation: plans containing one run on
#: the row-at-a-time interpreter (the planner's documented fallback).
_ROW_ONLY = (Window,)


def batch_capable(plan: Plan) -> bool:
    """Whether the vectorized executor can run *plan*.

    Only SELECT statements qualify (DML and utility statements have no
    pull-based operator tree), and every operator in the tree — including
    CTE and subquery sub-plans — must have a batch implementation.
    ``EXPLAIN ANALYZE`` inherits the inner statement's capability, so its
    trace reflects the engine the statement itself would run on; plain
    ``EXPLAIN`` renders statically and stays on the row executor.
    """
    statement = plan.statement
    if isinstance(statement, ExplainPlan):
        return statement.analyze and batch_capable(statement.inner)
    if not isinstance(statement, QueryPlan):
        return False
    return not any(isinstance(node, _ROW_ONLY) for node in walk_plan(plan))


def walk_plan(plan: Plan):
    """Yield every operator node (descending into sub-plans), preorder."""

    def visit(node):
        if isinstance(node, QueryPlan):
            for _name, sub in node.ctes:
                yield from visit(sub)
            yield from visit(node.root)
            return
        if isinstance(node, ExplainPlan):
            yield node
            yield from visit(node.inner.statement)
            return
        yield node
        if isinstance(node, InsertPlan) and node.select is not None:
            yield from visit(node.select)
        for child in node.children():
            yield from visit(child)

    yield from visit(plan.statement)


# ---------------------------------------------------------------------------
# Morsel-parallel regions
# ---------------------------------------------------------------------------
class ParallelRegion:
    """One morsel-parallel subtree of a batchable plan.

    ``top`` is the highest node of the region — the subtree the executor
    hands to worker threads when a pool is available — and ``leaf`` is the
    driving scan whose pages (``SeqScan``) or rows (``CteScan``) are split
    into morsels. ``mode`` selects the gather protocol:

    * ``"rows"`` — workers emit row chunks; the coordinator concatenates
      them in morsel order. Because morsels partition the leaf in order and
      every region operator is row-local, that concatenation *is* the
      serial row stream, so operators above the region (Top-K, Sort,
      DISTINCT, generic aggregation, set ops) see identical input.
    * ``"agg"`` — ``top`` is a streaming Aggregate (``simple_spec`` set);
      workers emit per-morsel partial group states and the coordinator
      merges them in morsel order, which reproduces the serial group
      first-appearance order.

    ``group_item_pos`` maps each np-spec group column to its select-item
    position when per-morsel ``group_aggregate`` outputs can be merged
    value-wise (every group column appears as a plain ``first`` item and
    the spec contains no SUM/AVG, which the np grammar never lowers);
    ``None`` keeps workers on the accumulator path.

    ``expands`` is set when the chain contains an UNNEST: each leaf row
    then fans out into many region rows, so the executor's morselization
    floor (sized in *leaf* rows) is scaled down — a small CTE carrying
    arrays is far more work than its row count suggests.
    """

    __slots__ = ("top", "leaf", "mode", "group_item_pos", "expands")

    def __init__(self, top, leaf, mode, group_item_pos=None, expands=False):
        self.top = top
        self.leaf = leaf
        self.mode = mode
        self.group_item_pos = group_item_pos
        self.expands = expands


#: Scans whose input can be split into morsels.
_REGION_LEAVES = (SeqScan, CteScan)
#: Row-local operators a region chain may pass through. IndexNestedLoop
#: joins through its *left* input only (the probe side is a point lookup
#: per row, which parallelizes with the driving scan).
_REGION_PIPE = (Filter, Project, Unnest)


def _chain_child(node):
    """The next node down a region chain, or ``None`` at a chain break.

    A ``SubqueryScan`` continues the chain into its subplan when that
    subplan has no CTEs of its own: the scan's filters and projection are
    row-local, so a derived table is as morsel-safe as a ``Filter``.
    """
    if isinstance(node, _REGION_PIPE):
        return node.child
    if isinstance(node, IndexNestedLoop):
        return node.left
    if isinstance(node, SubqueryScan) and not node.subplan.ctes:
        return node.subplan.root
    return None


def _region_leaf(node):
    """The driving morsel scan of the chain under *node*, or ``None``."""
    while True:
        if isinstance(node, _REGION_LEAVES):
            return node
        node = _chain_child(node)
        if node is None:
            return None


def _region_expands(node):
    """Whether per-leaf-row work is multiplied on the way down to the leaf.

    True when the chain contains an UNNEST (each row fans out into one row
    per array element) or an index nested-loop join (each row pays a full
    point probe). Both make a region far heavier than its leaf row count
    suggests, which lowers the executor's morselization floor.
    """
    while True:
        if isinstance(node, (Unnest, IndexNestedLoop)):
            return True
        node = _chain_child(node)
        if node is None:
            return False


def _np_group_positions(node):
    """Item positions of the np-spec group columns, or ``None``.

    When every group column appears as a plain ``("first", col)`` item,
    a per-morsel ``group_aggregate`` output row carries its own group key
    at these positions, so partial outputs can be merged value-wise
    (MIN/MAX/COUNT re-aggregate exactly; the np grammar never lowers
    SUM/AVG, so no float reassociation can occur).
    """
    np_spec = getattr(node, "np_spec", None)
    if np_spec is None:
        return None
    group_cols, items = np_spec
    positions = []
    for gcol in group_cols:
        pos = next(
            (
                i
                for i, item in enumerate(items)
                if item[0] == "first" and item[1] == gcol
            ),
            None,
        )
        if pos is None:
            return None
        positions.append(pos)
    return tuple(positions)


def _try_region(node):
    """The maximal region topped at *node*, or ``None``."""
    if isinstance(node, Aggregate):
        # Absorb a streaming aggregate so workers pre-aggregate their
        # morsels (partition-wise aggregation). The fused join-aggregate
        # path (HashJoin child) stays serial: its build side is shared.
        if getattr(node, "simple_spec", None) is None or isinstance(
            node.child, (HashJoin, SubqueryScan)
        ):
            # No partial aggregation over a derived table either: the
            # chains that sit under one (probe/UNNEST fan-out) need very
            # fine morsels for balance, and at that grain a per-morsel
            # partial barely collapses any groups — the merge then costs
            # more than the serial aggregation it replaces (measured).
            # The subquery itself still parallelizes as a rows region.
            return None
        leaf = _region_leaf(node.child)
        if leaf is None:
            return None
        return ParallelRegion(
            node,
            leaf,
            "agg",
            _np_group_positions(node),
            expands=_region_expands(node.child),
        )
    if isinstance(
        node,
        _REGION_PIPE + (IndexNestedLoop, SubqueryScan) + _REGION_LEAVES,
    ):
        leaf = _region_leaf(node)
        if leaf is None:
            return None
        return ParallelRegion(node, leaf, "rows", expands=_region_expands(node))
    return None


def _annotate_node(node):
    if isinstance(node, QueryPlan):
        _annotate_query(node)
        return
    region = _try_region(node)
    if region is not None:
        # Annotate the region top only and stop descending: a region runs
        # whole inside each worker, so nested annotations cannot fire.
        node.parallel_region = region
        return
    for child in node.children():
        _annotate_node(child)


def _annotate_query(qplan: QueryPlan):
    for _name, sub in qplan.ctes:
        _annotate_query(sub)
    _annotate_node(qplan.root)


def annotate_parallel(plan: Plan) -> None:
    """Mark morsel-parallel regions on a batchable SELECT plan.

    Called by the planner right after ``batch_capable``; row-mode plans,
    DML and plain EXPLAIN are left untouched. Each region is a maximal
    leaf→Filter/Project/Unnest/IndexNestedLoop chain, optionally topped by
    a streaming Aggregate; everything above it executes serially on the
    coordinator over the gathered stream. Whether a region actually fans
    out is a run-time decision (worker pool present, no LIMIT hint, enough
    pages/rows to split) — the annotation only records where it is sound.
    """
    if not getattr(plan, "batchable", False):
        return
    node = plan.statement
    while isinstance(node, ExplainPlan):
        inner = node.inner
        node = inner.statement if isinstance(inner, Plan) else inner
    if isinstance(node, QueryPlan):
        _annotate_query(node)
