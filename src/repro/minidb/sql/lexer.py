"""SQL tokenizer.

Produces a flat token list consumed by the recursive-descent parser.
Keywords are case-insensitive; identifiers are lower-cased (PostgreSQL's
fold-to-lowercase behaviour). Supports ``--`` and ``/* ... */`` comments and
``$n`` positional parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "OFFSET",
    "AS", "AND", "OR", "NOT", "NULL", "IS", "IN", "BETWEEN", "LIKE",
    "UNION", "ALL", "DISTINCT", "WITH", "HAVING", "ASC", "DESC",
    "CREATE", "TABLE", "DROP", "INSERT", "INTO", "VALUES", "PRIMARY",
    "KEY", "IF", "EXISTS", "DELETE", "TRUE", "FALSE", "CASE", "WHEN",
    "THEN", "ELSE", "END", "OVER", "PARTITION", "ARRAY", "JOIN", "ON",
    "UPDATE", "SET", "VACUUM", "EXPLAIN", "ANALYZE",
    "INNER", "LEFT", "CROSS", "OUTER", "NULLS", "FIRST", "LAST",
}

# token kinds
IDENT = "IDENT"
KEYWORD = "KEYWORD"
NUMBER = "NUMBER"
STRING = "STRING"
PARAM = "PARAM"
OP = "OP"
EOF = "EOF"

_TWO_CHAR_OPS = {"<=", ">=", "<>", "!=", "||"}
_ONE_CHAR_OPS = set("+-*/%()[]{},;.:<>=")


@dataclass(frozen=True)
class Token:
    kind: str
    value: object
    pos: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.value!r})"


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise SQLSyntaxError(f"unterminated comment at offset {i}")
            i = end + 2
            continue
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    raise SQLSyntaxError(f"unterminated string at offset {i}")
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token(STRING, "".join(parts), i))
            i = j + 1
            continue
        if ch == "$":
            j = i + 1
            while j < n and sql[j].isdigit():
                j += 1
            if j == i + 1:
                raise SQLSyntaxError(f"bad parameter at offset {i}")
            tokens.append(Token(PARAM, int(sql[i + 1 : j]), i))
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and sql[j] in "+-":
                        j += 1
                else:
                    break
            text = sql[i:j]
            if seen_dot or seen_exp:
                tokens.append(Token(NUMBER, float(text), i))
            else:
                tokens.append(Token(NUMBER, int(text), i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KEYWORD, upper, i))
            else:
                tokens.append(Token(IDENT, word.lower(), i))
            i = j
            continue
        if ch == '"':  # quoted identifier (case preserved)
            j = sql.find('"', i + 1)
            if j == -1:
                raise SQLSyntaxError(f"unterminated quoted identifier at offset {i}")
            tokens.append(Token(IDENT, sql[i + 1 : j], i))
            i = j + 1
            continue
        two = sql[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(OP, two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(OP, ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(Token(EOF, None, n))
    return tokens
