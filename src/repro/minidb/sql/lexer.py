"""SQL tokenizer.

Produces a flat token list consumed by the recursive-descent parser.
Keywords are case-insensitive; identifiers are lower-cased (PostgreSQL's
fold-to-lowercase behaviour). Supports ``--`` and ``/* ... */`` comments and
``$n`` positional parameters.

Each token carries its byte offset (``pos``), the offset one past its last
character (``end``) and a 1-based ``line``/``col``, so parser and analyzer
diagnostics can point at the exact source location with a caret excerpt.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSyntaxError
from repro.minidb.sql.diagnostics import caret_excerpt, line_col

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "OFFSET",
    "AS", "AND", "OR", "NOT", "NULL", "IS", "IN", "BETWEEN", "LIKE",
    "UNION", "ALL", "DISTINCT", "WITH", "HAVING", "ASC", "DESC",
    "CREATE", "TABLE", "DROP", "INSERT", "INTO", "VALUES", "PRIMARY",
    "KEY", "IF", "EXISTS", "DELETE", "TRUE", "FALSE", "CASE", "WHEN",
    "THEN", "ELSE", "END", "OVER", "PARTITION", "ARRAY", "JOIN", "ON",
    "UPDATE", "SET", "VACUUM", "EXPLAIN", "ANALYZE",
    "INNER", "LEFT", "CROSS", "OUTER", "NULLS", "FIRST", "LAST",
}

# token kinds
IDENT = "IDENT"
KEYWORD = "KEYWORD"
NUMBER = "NUMBER"
STRING = "STRING"
PARAM = "PARAM"
OP = "OP"
EOF = "EOF"

_TWO_CHAR_OPS = {"<=", ">=", "<>", "!=", "||"}
_ONE_CHAR_OPS = set("+-*/%()[]{},;.:<>=")


@dataclass(frozen=True)
class Token:
    kind: str
    value: object
    pos: int
    end: int = -1  # offset one past the last character; -1 = pos + 1
    line: int = 1
    col: int = 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.value!r})"


def _lex_error(sql: str, message: str, pos: int) -> SQLSyntaxError:
    line, col = line_col(sql, pos)
    return SQLSyntaxError(
        f"{message} at line {line}:{col}\n{caret_excerpt(sql, pos, pos + 1)}"
    )


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    i, n = 0, len(sql)
    line = 1
    line_start = 0

    def emit(kind: str, value: object, start: int, end: int) -> None:
        tokens.append(
            Token(kind, value, start, end, line, start - line_start + 1)
        )

    while i < n:
        ch = sql[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end  # the newline is handled above
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise _lex_error(sql, "unterminated comment", i)
            line += sql.count("\n", i, end + 2)
            nl = sql.rfind("\n", i, end + 2)
            if nl != -1:
                line_start = nl + 1
            i = end + 2
            continue
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    raise _lex_error(sql, "unterminated string", i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            emit(STRING, "".join(parts), i, j + 1)
            # a string literal may span lines
            line += sql.count("\n", i, j + 1)
            nl = sql.rfind("\n", i, j + 1)
            if nl != -1:
                line_start = nl + 1
            i = j + 1
            continue
        if ch == "$":
            j = i + 1
            while j < n and sql[j].isdigit():
                j += 1
            if j == i + 1:
                raise _lex_error(sql, "bad parameter", i)
            emit(PARAM, int(sql[i + 1 : j]), i, j)
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and sql[j] in "+-":
                        j += 1
                else:
                    break
            text = sql[i:j]
            if seen_dot or seen_exp:
                emit(NUMBER, float(text), i, j)
            else:
                emit(NUMBER, int(text), i, j)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                emit(KEYWORD, upper, i, j)
            else:
                emit(IDENT, word.lower(), i, j)
            i = j
            continue
        if ch == '"':  # quoted identifier (case preserved)
            j = sql.find('"', i + 1)
            if j == -1:
                raise _lex_error(sql, "unterminated quoted identifier", i)
            emit(IDENT, sql[i + 1 : j], i, j + 1)
            i = j + 1
            continue
        two = sql[i : i + 2]
        if two in _TWO_CHAR_OPS:
            emit(OP, two, i, i + 2)
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            emit(OP, ch, i, i + 1)
            i += 1
            continue
        raise _lex_error(sql, f"unexpected character {ch!r}", i)
    tokens.append(Token(EOF, None, n, n, line, n - line_start + 1))
    return tokens
