"""Recursive-descent parser for the minidb SQL dialect.

The dialect is the subset of PostgreSQL used by the PTLDB paper's Codes 1-4
plus the DDL/DML needed to build the label tables: ``WITH`` CTEs, ``SELECT``
with ``UNNEST``/array slices, comma and explicit joins, ``GROUP BY`` /
``HAVING``, ``ORDER BY`` / ``LIMIT``, ``UNION [ALL]`` (operands may carry
their own ORDER BY/LIMIT when parenthesized, as in Code 3), window
``ROW_NUMBER() OVER (...)``, ``ARRAY_AGG(x ORDER BY ...)``, ``CREATE
TABLE``, ``INSERT ... VALUES | SELECT``, ``DELETE`` and ``DROP TABLE``.
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.minidb.sql import ast
from repro.minidb.sql.diagnostics import caret_excerpt
from repro.minidb.sql.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OP,
    PARAM,
    STRING,
    Token,
    tokenize,
)

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token helpers ---------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def error(self, message: str, tok: Token | None = None) -> SQLSyntaxError:
        """A syntax error pointing at *tok* (default: the current token)
        with line:col position and a caret excerpt of the source line."""
        tok = tok or self.peek()
        where = f" at line {tok.line}:{tok.col}"
        excerpt = caret_excerpt(self.sql, tok.pos, max(tok.end, tok.pos + 1))
        return SQLSyntaxError(f"{message}{where}\n{excerpt}")

    def _mark(self, node, start_tok: Token):
        """Attach a (start, end) source span covering *start_tok* up to the
        most recently consumed token. Spans are compare=False fields, so
        this never affects structural equality."""
        end = self.tokens[self.pos - 1].end if self.pos > 0 else start_tok.end
        object.__setattr__(node, "span", (start_tok.pos, max(end, start_tok.end)))
        return node

    def at_keyword(self, *words: str) -> bool:
        tok = self.peek()
        return tok.kind == KEYWORD and tok.value in words

    def accept_keyword(self, *words: str) -> bool:
        if self.at_keyword(*words):
            self.next()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word}, got {self.peek()}")

    def at_op(self, *ops: str) -> bool:
        tok = self.peek()
        return tok.kind == OP and tok.value in ops

    def accept_op(self, *ops: str) -> bool:
        if self.at_op(*ops):
            self.next()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise self.error(f"expected {op!r}, got {self.peek()}")

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok.kind != IDENT:
            raise self.error(f"expected identifier, got {tok}")
        self.next()
        return tok.value

    # -- statements --------------------------------------------------------
    def parse_statement(self):
        if self.accept_keyword("EXPLAIN"):
            analyze = self.accept_keyword("ANALYZE")
            inner = self.parse_statement()
            return ast.Explain(inner, analyze=bool(analyze))
        if self.at_keyword("SELECT", "WITH") or self.at_op("("):
            stmt = self.parse_query()
        elif self.at_keyword("CREATE"):
            stmt = self._create_table()
        elif self.at_keyword("DROP"):
            stmt = self._drop_table()
        elif self.at_keyword("INSERT"):
            stmt = self._insert()
        elif self.at_keyword("DELETE"):
            stmt = self._delete()
        elif self.at_keyword("UPDATE"):
            stmt = self._update()
        elif self.at_keyword("VACUUM"):
            self.next()
            stmt = ast.Vacuum(self.expect_ident())
        else:
            raise self.error(f"unexpected start of statement: {self.peek()}")
        self.accept_op(";")
        if self.peek().kind != EOF:
            raise self.error(f"trailing input: {self.peek()}")
        return stmt

    # -- queries -------------------------------------------------------
    def parse_query(self) -> ast.Query:
        ctes: list[tuple[str, ast.Query]] = []
        if self.accept_keyword("WITH"):
            while True:
                name = self.expect_ident()
                self.expect_keyword("AS")
                self.expect_op("(")
                ctes.append((name, self.parse_query()))
                self.expect_op(")")
                if not self.accept_op(","):
                    break
        query = self._set_expr()
        order_by, limit, offset = self._order_limit()
        if order_by or limit is not None or offset is not None:
            query = ast.Query(
                cores=query.cores,
                set_ops=query.set_ops,
                order_by=query.order_by or tuple(order_by),
                limit=query.limit if limit is None else limit,
                offset=query.offset if offset is None else offset,
                ctes=query.ctes,
            )
        if ctes:
            query = ast.Query(
                cores=query.cores,
                set_ops=query.set_ops,
                order_by=query.order_by,
                limit=query.limit,
                offset=query.offset,
                ctes=tuple(ctes) + query.ctes,
            )
        return query

    def _set_expr(self) -> ast.Query:
        cores: list[object] = [self._set_operand()]
        set_ops: list[str] = []
        while self.at_keyword("UNION"):
            self.next()
            op = "UNION ALL" if self.accept_keyword("ALL") else "UNION"
            set_ops.append(op)
            cores.append(self._set_operand())
        return ast.Query(cores=tuple(cores), set_ops=tuple(set_ops))

    def _set_operand(self):
        """A SELECT core, or a parenthesized query (with its own order/limit)."""
        if self.accept_op("("):
            inner = self.parse_query()
            self.expect_op(")")
            return inner
        return self._select_core()

    def _order_limit(self):
        order_by: list[ast.OrderItem] = []
        limit = offset = None
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = self._order_items()
        if self.accept_keyword("LIMIT"):
            limit = self.parse_expr()
        if self.accept_keyword("OFFSET"):
            offset = self.parse_expr()
        return order_by, limit, offset

    def _order_items(self) -> list[ast.OrderItem]:
        items = []
        while True:
            expr = self.parse_expr()
            descending = False
            if self.accept_keyword("DESC"):
                descending = True
            else:
                self.accept_keyword("ASC")
            if self.accept_keyword("NULLS"):
                # Accepted and ignored: minidb always sorts NULLS LAST.
                if not (self.accept_keyword("FIRST") or self.accept_keyword("LAST")):
                    raise self.error("expected FIRST or LAST after NULLS")
            item = ast.OrderItem(expr, descending)
            if getattr(expr, "span", None) is not None:
                object.__setattr__(item, "span", expr.span)
            items.append(item)
            if not self.accept_op(","):
                break
        return items

    def _select_core(self) -> ast.SelectCore:
        start = self.peek()
        self.expect_keyword("SELECT")
        distinct = False
        if self.accept_keyword("DISTINCT"):
            distinct = True
        elif self.accept_keyword("ALL"):
            pass
        items = [self._select_item()]
        while self.accept_op(","):
            items.append(self._select_item())
        from_items: list[object] = []
        where = having = None
        group_by: list[ast.Expr] = []
        if self.accept_keyword("FROM"):
            from_items.append(self._from_item_with_joins())
            while self.accept_op(","):
                from_items.append(self._from_item_with_joins())
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_op(","):
                group_by.append(self.parse_expr())
        if self.accept_keyword("HAVING"):
            having = self.parse_expr()
        return self._mark(
            ast.SelectCore(
                items=tuple(items),
                from_items=tuple(from_items),
                where=where,
                group_by=tuple(group_by),
                having=having,
                distinct=distinct,
            ),
            start,
        )

    def _select_item(self) -> ast.SelectItem:
        start = self.peek()
        if self.at_op("*"):
            self.next()
            return self._mark(
                ast.SelectItem(self._mark(ast.Star(None), start)), start
            )
        # alias.* form
        if (
            self.peek().kind == IDENT
            and self.peek(1).kind == OP
            and self.peek(1).value == "."
            and self.peek(2).kind == OP
            and self.peek(2).value == "*"
        ):
            table = self.expect_ident()
            self.next()  # .
            self.next()  # *
            return self._mark(
                ast.SelectItem(self._mark(ast.Star(table), start)), start
            )
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == IDENT:
            alias = self.expect_ident()
        return self._mark(ast.SelectItem(expr, alias), start)

    # -- FROM ------------------------------------------------------------
    def _from_item_with_joins(self):
        item = self._from_item()
        while True:
            if self.accept_keyword("CROSS"):
                self.expect_keyword("JOIN")
                right = self._from_item()
                item = ast.Join(item, right, None)
                continue
            explicit = False
            if self.accept_keyword("INNER"):
                explicit = True
            elif self.accept_keyword("LEFT"):
                raise self.error("LEFT JOIN is not supported by minidb")
            if self.at_keyword("JOIN"):
                self.next()
                right = self._from_item()
                condition = None
                if self.accept_keyword("ON"):
                    condition = self.parse_expr()
                elif explicit:
                    raise self.error("INNER JOIN requires ON")
                item = ast.Join(item, right, condition)
                continue
            break
        return item

    def _from_item(self):
        start = self.peek()
        if self.accept_op("("):
            query = self.parse_query()
            self.expect_op(")")
            self.accept_keyword("AS")
            alias = self.expect_ident()
            return self._mark(ast.SubqueryRef(query, alias), start)
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == IDENT:
            alias = self.expect_ident()
        return self._mark(ast.TableRef(name, alias), start)

    # -- expressions -------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        start = self.peek()
        left = self._and_expr()
        while self.accept_keyword("OR"):
            left = self._mark(ast.BinaryOp("OR", left, self._and_expr()), start)
        return left

    def _and_expr(self) -> ast.Expr:
        start = self.peek()
        left = self._not_expr()
        while self.accept_keyword("AND"):
            left = self._mark(ast.BinaryOp("AND", left, self._not_expr()), start)
        return left

    def _not_expr(self) -> ast.Expr:
        start = self.peek()
        if self.accept_keyword("NOT"):
            return self._mark(ast.UnaryOp("NOT", self._not_expr()), start)
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        start = self.peek()
        left = self._additive()
        while True:
            if self.peek().kind == OP and self.peek().value in _COMPARISONS:
                op = self.next().value
                if op == "!=":
                    op = "<>"
                left = self._mark(ast.BinaryOp(op, left, self._additive()), start)
                continue
            if self.at_keyword("IS"):
                self.next()
                negated = self.accept_keyword("NOT")
                self.expect_keyword("NULL")
                left = self._mark(ast.IsNull(left, negated), start)
                continue
            if self.at_keyword("IN") or (
                self.at_keyword("NOT") and self.peek(1).value == "IN"
            ):
                negated = self.accept_keyword("NOT")
                self.expect_keyword("IN")
                self.expect_op("(")
                items = [self.parse_expr()]
                while self.accept_op(","):
                    items.append(self.parse_expr())
                self.expect_op(")")
                left = self._mark(ast.InList(left, tuple(items), negated), start)
                continue
            if self.at_keyword("BETWEEN") or (
                self.at_keyword("NOT") and self.peek(1).value == "BETWEEN"
            ):
                negated = self.accept_keyword("NOT")
                self.expect_keyword("BETWEEN")
                low = self._additive()
                self.expect_keyword("AND")
                high = self._additive()
                between = self._mark(
                    ast.BinaryOp(
                        "AND",
                        ast.BinaryOp(">=", left, low),
                        ast.BinaryOp("<=", left, high),
                    ),
                    start,
                )
                left = (
                    self._mark(ast.UnaryOp("NOT", between), start)
                    if negated
                    else between
                )
                continue
            return left

    def _additive(self) -> ast.Expr:
        start = self.peek()
        left = self._multiplicative()
        while self.at_op("+", "-", "||"):
            op = self.next().value
            left = self._mark(
                ast.BinaryOp(op, left, self._multiplicative()), start
            )
        return left

    def _multiplicative(self) -> ast.Expr:
        start = self.peek()
        left = self._unary()
        while self.at_op("*", "/", "%"):
            op = self.next().value
            left = self._mark(ast.BinaryOp(op, left, self._unary()), start)
        return left

    def _unary(self) -> ast.Expr:
        start = self.peek()
        if self.accept_op("-"):
            return self._mark(ast.UnaryOp("-", self._unary()), start)
        if self.accept_op("+"):
            return self._unary()
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        start = self.peek()
        expr = self._primary()
        while self.at_op("["):
            self.next()
            low: ast.Expr | None = None
            high: ast.Expr | None = None
            if not self.at_op(":"):
                low = self.parse_expr()
            if self.accept_op(":"):
                if not self.at_op("]"):
                    high = self.parse_expr()
                self.expect_op("]")
                expr = self._mark(ast.ArraySlice(expr, low, high), start)
            else:
                self.expect_op("]")
                if low is None:
                    raise self.error("empty array subscript")
                expr = self._mark(ast.ArrayIndex(expr, low), start)
        return expr

    def _primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == NUMBER:
            self.next()
            return self._mark(ast.Literal(tok.value), tok)
        if tok.kind == STRING:
            self.next()
            return self._mark(ast.Literal(tok.value), tok)
        if tok.kind == PARAM:
            self.next()
            return self._mark(ast.Param(tok.value), tok)
        if self.accept_keyword("NULL"):
            return self._mark(ast.Literal(None), tok)
        if self.accept_keyword("TRUE"):
            return self._mark(ast.Literal(True), tok)
        if self.accept_keyword("FALSE"):
            return self._mark(ast.Literal(False), tok)
        if self.at_keyword("CASE"):
            return self._mark(self._case(), tok)
        if self.at_keyword("ARRAY"):
            self.next()
            self.expect_op("[")
            items: list[ast.Expr] = []
            if not self.at_op("]"):
                items.append(self.parse_expr())
                while self.accept_op(","):
                    items.append(self.parse_expr())
            self.expect_op("]")
            return self._mark(ast.ArrayLiteral(tuple(items)), tok)
        if self.accept_op("("):
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if tok.kind == IDENT:
            # function call?
            if self.peek(1).kind == OP and self.peek(1).value == "(":
                return self._mark(self._func_call(), tok)
            name = self.expect_ident()
            if self.accept_op("."):
                return self._mark(
                    ast.ColumnRef(name, self.expect_ident()), tok
                )
            return self._mark(ast.ColumnRef(None, name), tok)
        raise self.error(f"unexpected token in expression: {tok}", tok)

    def _func_call(self) -> ast.Expr:
        name = self.expect_ident()
        self.expect_op("(")
        distinct = False
        star = False
        args: list[ast.Expr] = []
        agg_order: list[ast.OrderItem] = []
        if self.at_op("*"):
            self.next()
            star = True
        elif not self.at_op(")"):
            if self.accept_keyword("DISTINCT"):
                distinct = True
            args.append(self.parse_expr())
            while self.accept_op(","):
                args.append(self.parse_expr())
            if self.accept_keyword("ORDER"):
                self.expect_keyword("BY")
                agg_order = self._order_items()
        self.expect_op(")")
        if self.accept_keyword("OVER"):
            self.expect_op("(")
            partition: list[ast.Expr] = []
            order: list[ast.OrderItem] = []
            if self.accept_keyword("PARTITION"):
                self.expect_keyword("BY")
                partition.append(self.parse_expr())
                while self.accept_op(","):
                    partition.append(self.parse_expr())
            if self.accept_keyword("ORDER"):
                self.expect_keyword("BY")
                order = self._order_items()
            self.expect_op(")")
            return ast.WindowFunc(name, tuple(partition), tuple(order))
        return ast.FuncCall(
            name,
            tuple(args),
            distinct=distinct,
            star=star,
            agg_order_by=tuple(agg_order),
        )

    def _case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        default = None
        while self.accept_keyword("WHEN"):
            cond = self.parse_expr()
            self.expect_keyword("THEN")
            result = self.parse_expr()
            whens.append((cond, result))
        if self.accept_keyword("ELSE"):
            default = self.parse_expr()
        self.expect_keyword("END")
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        return ast.CaseExpr(tuple(whens), default)

    # -- DDL / DML -----------------------------------------------------
    def _create_table(self) -> ast.CreateTable:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_ident()
        self.expect_op("(")
        columns: list[ast.ColumnDef] = []
        pk: tuple[str, ...] = ()
        while True:
            if self.at_keyword("PRIMARY"):
                self.next()
                self.expect_keyword("KEY")
                self.expect_op("(")
                parts = [self.expect_ident()]
                while self.accept_op(","):
                    parts.append(self.expect_ident())
                self.expect_op(")")
                pk = tuple(parts)
            else:
                col_name = self.expect_ident()
                type_name = self._type_name()
                col_pk = False
                if self.accept_keyword("PRIMARY"):
                    self.expect_keyword("KEY")
                    col_pk = True
                columns.append(ast.ColumnDef(col_name, type_name, col_pk))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        storage = "row"
        tok = self.peek()
        if tok.kind == IDENT and tok.value == "storage":
            self.next()
            self.expect_op("=")
            value = self.expect_ident()
            if value not in ("row", "columnar"):
                raise self.error(
                    f"unknown storage {value!r} (expected ROW or COLUMNAR)"
                )
            storage = value
        if not pk:
            inline = tuple(c.name for c in columns if c.primary_key)
            pk = inline
        return ast.CreateTable(name, tuple(columns), pk, if_not_exists, storage)

    def _type_name(self) -> str:
        tok = self.peek()
        if tok.kind not in (IDENT, KEYWORD):
            raise SQLSyntaxError(f"expected type name, got {tok}")
        self.next()
        name = str(tok.value)
        # multi-word types: DOUBLE PRECISION
        if name.lower() == "double" and self.peek().kind == IDENT and self.peek().value == "precision":
            self.next()
            name = "double precision"
        while self.at_op("["):
            self.next()
            self.expect_op("]")
            name += "[]"
        return name

    def _drop_table(self) -> ast.DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return ast.DropTable(self.expect_ident(), if_exists)

    def _insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: tuple[str, ...] = ()
        if self.at_op("("):
            self.next()
            cols = [self.expect_ident()]
            while self.accept_op(","):
                cols.append(self.expect_ident())
            self.expect_op(")")
            columns = tuple(cols)
        if self.accept_keyword("VALUES"):
            rows = []
            while True:
                self.expect_op("(")
                row = [self.parse_expr()]
                while self.accept_op(","):
                    row.append(self.parse_expr())
                self.expect_op(")")
                rows.append(tuple(row))
                if not self.accept_op(","):
                    break
            return ast.Insert(table, columns, rows=tuple(rows))
        select = self.parse_query()
        return ast.Insert(table, columns, select=select)

    def _update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = []
        while True:
            column = self.expect_ident()
            self.expect_op("=")
            assignments.append((column, self.parse_expr()))
            if not self.accept_op(","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Update(table, tuple(assignments), where)

    def _delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Delete(table, where)


def parse(sql: str):
    """Parse one SQL statement, returning its AST."""
    return Parser(sql).parse_statement()
