"""Recursive-descent parser for the minidb SQL dialect.

The dialect is the subset of PostgreSQL used by the PTLDB paper's Codes 1-4
plus the DDL/DML needed to build the label tables: ``WITH`` CTEs, ``SELECT``
with ``UNNEST``/array slices, comma and explicit joins, ``GROUP BY`` /
``HAVING``, ``ORDER BY`` / ``LIMIT``, ``UNION [ALL]`` (operands may carry
their own ORDER BY/LIMIT when parenthesized, as in Code 3), window
``ROW_NUMBER() OVER (...)``, ``ARRAY_AGG(x ORDER BY ...)``, ``CREATE
TABLE``, ``INSERT ... VALUES | SELECT``, ``DELETE`` and ``DROP TABLE``.
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.minidb.sql import ast
from repro.minidb.sql.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OP,
    PARAM,
    STRING,
    Token,
    tokenize,
)

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class Parser:
    def __init__(self, sql: str):
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token helpers ---------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def at_keyword(self, *words: str) -> bool:
        tok = self.peek()
        return tok.kind == KEYWORD and tok.value in words

    def accept_keyword(self, *words: str) -> bool:
        if self.at_keyword(*words):
            self.next()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SQLSyntaxError(f"expected {word}, got {self.peek()}")

    def at_op(self, *ops: str) -> bool:
        tok = self.peek()
        return tok.kind == OP and tok.value in ops

    def accept_op(self, *ops: str) -> bool:
        if self.at_op(*ops):
            self.next()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise SQLSyntaxError(f"expected {op!r}, got {self.peek()}")

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok.kind != IDENT:
            raise SQLSyntaxError(f"expected identifier, got {tok}")
        self.next()
        return tok.value

    # -- statements --------------------------------------------------------
    def parse_statement(self):
        if self.accept_keyword("EXPLAIN"):
            analyze = self.accept_keyword("ANALYZE")
            inner = self.parse_statement()
            return ast.Explain(inner, analyze=bool(analyze))
        if self.at_keyword("SELECT", "WITH") or self.at_op("("):
            stmt = self.parse_query()
        elif self.at_keyword("CREATE"):
            stmt = self._create_table()
        elif self.at_keyword("DROP"):
            stmt = self._drop_table()
        elif self.at_keyword("INSERT"):
            stmt = self._insert()
        elif self.at_keyword("DELETE"):
            stmt = self._delete()
        elif self.at_keyword("UPDATE"):
            stmt = self._update()
        elif self.at_keyword("VACUUM"):
            self.next()
            stmt = ast.Vacuum(self.expect_ident())
        else:
            raise SQLSyntaxError(f"unexpected start of statement: {self.peek()}")
        self.accept_op(";")
        if self.peek().kind != EOF:
            raise SQLSyntaxError(f"trailing input: {self.peek()}")
        return stmt

    # -- queries -------------------------------------------------------
    def parse_query(self) -> ast.Query:
        ctes: list[tuple[str, ast.Query]] = []
        if self.accept_keyword("WITH"):
            while True:
                name = self.expect_ident()
                self.expect_keyword("AS")
                self.expect_op("(")
                ctes.append((name, self.parse_query()))
                self.expect_op(")")
                if not self.accept_op(","):
                    break
        query = self._set_expr()
        order_by, limit, offset = self._order_limit()
        if order_by or limit is not None or offset is not None:
            query = ast.Query(
                cores=query.cores,
                set_ops=query.set_ops,
                order_by=query.order_by or tuple(order_by),
                limit=query.limit if limit is None else limit,
                offset=query.offset if offset is None else offset,
                ctes=query.ctes,
            )
        if ctes:
            query = ast.Query(
                cores=query.cores,
                set_ops=query.set_ops,
                order_by=query.order_by,
                limit=query.limit,
                offset=query.offset,
                ctes=tuple(ctes) + query.ctes,
            )
        return query

    def _set_expr(self) -> ast.Query:
        cores: list[object] = [self._set_operand()]
        set_ops: list[str] = []
        while self.at_keyword("UNION"):
            self.next()
            op = "UNION ALL" if self.accept_keyword("ALL") else "UNION"
            set_ops.append(op)
            cores.append(self._set_operand())
        return ast.Query(cores=tuple(cores), set_ops=tuple(set_ops))

    def _set_operand(self):
        """A SELECT core, or a parenthesized query (with its own order/limit)."""
        if self.accept_op("("):
            inner = self.parse_query()
            self.expect_op(")")
            return inner
        return self._select_core()

    def _order_limit(self):
        order_by: list[ast.OrderItem] = []
        limit = offset = None
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = self._order_items()
        if self.accept_keyword("LIMIT"):
            limit = self.parse_expr()
        if self.accept_keyword("OFFSET"):
            offset = self.parse_expr()
        return order_by, limit, offset

    def _order_items(self) -> list[ast.OrderItem]:
        items = []
        while True:
            expr = self.parse_expr()
            descending = False
            if self.accept_keyword("DESC"):
                descending = True
            else:
                self.accept_keyword("ASC")
            if self.accept_keyword("NULLS"):
                # Accepted and ignored: minidb always sorts NULLS LAST.
                if not (self.accept_keyword("FIRST") or self.accept_keyword("LAST")):
                    raise SQLSyntaxError("expected FIRST or LAST after NULLS")
            items.append(ast.OrderItem(expr, descending))
            if not self.accept_op(","):
                break
        return items

    def _select_core(self) -> ast.SelectCore:
        self.expect_keyword("SELECT")
        distinct = False
        if self.accept_keyword("DISTINCT"):
            distinct = True
        elif self.accept_keyword("ALL"):
            pass
        items = [self._select_item()]
        while self.accept_op(","):
            items.append(self._select_item())
        from_items: list[object] = []
        where = having = None
        group_by: list[ast.Expr] = []
        if self.accept_keyword("FROM"):
            from_items.append(self._from_item_with_joins())
            while self.accept_op(","):
                from_items.append(self._from_item_with_joins())
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_op(","):
                group_by.append(self.parse_expr())
        if self.accept_keyword("HAVING"):
            having = self.parse_expr()
        return ast.SelectCore(
            items=tuple(items),
            from_items=tuple(from_items),
            where=where,
            group_by=tuple(group_by),
            having=having,
            distinct=distinct,
        )

    def _select_item(self) -> ast.SelectItem:
        if self.at_op("*"):
            self.next()
            return ast.SelectItem(ast.Star(None))
        # alias.* form
        if (
            self.peek().kind == IDENT
            and self.peek(1).kind == OP
            and self.peek(1).value == "."
            and self.peek(2).kind == OP
            and self.peek(2).value == "*"
        ):
            table = self.expect_ident()
            self.next()  # .
            self.next()  # *
            return ast.SelectItem(ast.Star(table))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == IDENT:
            alias = self.expect_ident()
        return ast.SelectItem(expr, alias)

    # -- FROM ------------------------------------------------------------
    def _from_item_with_joins(self):
        item = self._from_item()
        while True:
            if self.accept_keyword("CROSS"):
                self.expect_keyword("JOIN")
                right = self._from_item()
                item = ast.Join(item, right, None)
                continue
            explicit = False
            if self.accept_keyword("INNER"):
                explicit = True
            elif self.accept_keyword("LEFT"):
                raise SQLSyntaxError("LEFT JOIN is not supported by minidb")
            if self.at_keyword("JOIN"):
                self.next()
                right = self._from_item()
                condition = None
                if self.accept_keyword("ON"):
                    condition = self.parse_expr()
                elif explicit:
                    raise SQLSyntaxError("INNER JOIN requires ON")
                item = ast.Join(item, right, condition)
                continue
            break
        return item

    def _from_item(self):
        if self.accept_op("("):
            query = self.parse_query()
            self.expect_op(")")
            self.accept_keyword("AS")
            alias = self.expect_ident()
            return ast.SubqueryRef(query, alias)
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == IDENT:
            alias = self.expect_ident()
        return ast.TableRef(name, alias)

    # -- expressions -------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        while True:
            if self.peek().kind == OP and self.peek().value in _COMPARISONS:
                op = self.next().value
                if op == "!=":
                    op = "<>"
                left = ast.BinaryOp(op, left, self._additive())
                continue
            if self.at_keyword("IS"):
                self.next()
                negated = self.accept_keyword("NOT")
                self.expect_keyword("NULL")
                left = ast.IsNull(left, negated)
                continue
            if self.at_keyword("IN") or (
                self.at_keyword("NOT") and self.peek(1).value == "IN"
            ):
                negated = self.accept_keyword("NOT")
                self.expect_keyword("IN")
                self.expect_op("(")
                items = [self.parse_expr()]
                while self.accept_op(","):
                    items.append(self.parse_expr())
                self.expect_op(")")
                left = ast.InList(left, tuple(items), negated)
                continue
            if self.at_keyword("BETWEEN") or (
                self.at_keyword("NOT") and self.peek(1).value == "BETWEEN"
            ):
                negated = self.accept_keyword("NOT")
                self.expect_keyword("BETWEEN")
                low = self._additive()
                self.expect_keyword("AND")
                high = self._additive()
                between = ast.BinaryOp(
                    "AND",
                    ast.BinaryOp(">=", left, low),
                    ast.BinaryOp("<=", left, high),
                )
                left = ast.UnaryOp("NOT", between) if negated else between
                continue
            return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while self.at_op("+", "-", "||"):
            op = self.next().value
            left = ast.BinaryOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while self.at_op("*", "/", "%"):
            op = self.next().value
            left = ast.BinaryOp(op, left, self._unary())
        return left

    def _unary(self) -> ast.Expr:
        if self.accept_op("-"):
            return ast.UnaryOp("-", self._unary())
        if self.accept_op("+"):
            return self._unary()
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while self.at_op("["):
            self.next()
            low: ast.Expr | None = None
            high: ast.Expr | None = None
            if not self.at_op(":"):
                low = self.parse_expr()
            if self.accept_op(":"):
                if not self.at_op("]"):
                    high = self.parse_expr()
                self.expect_op("]")
                expr = ast.ArraySlice(expr, low, high)
            else:
                self.expect_op("]")
                if low is None:
                    raise SQLSyntaxError("empty array subscript")
                expr = ast.ArrayIndex(expr, low)
        return expr

    def _primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == NUMBER:
            self.next()
            return ast.Literal(tok.value)
        if tok.kind == STRING:
            self.next()
            return ast.Literal(tok.value)
        if tok.kind == PARAM:
            self.next()
            return ast.Param(tok.value)
        if self.accept_keyword("NULL"):
            return ast.Literal(None)
        if self.accept_keyword("TRUE"):
            return ast.Literal(True)
        if self.accept_keyword("FALSE"):
            return ast.Literal(False)
        if self.at_keyword("CASE"):
            return self._case()
        if self.at_keyword("ARRAY"):
            self.next()
            self.expect_op("[")
            items: list[ast.Expr] = []
            if not self.at_op("]"):
                items.append(self.parse_expr())
                while self.accept_op(","):
                    items.append(self.parse_expr())
            self.expect_op("]")
            return ast.ArrayLiteral(tuple(items))
        if self.accept_op("("):
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if tok.kind == IDENT:
            # function call?
            if self.peek(1).kind == OP and self.peek(1).value == "(":
                return self._func_call()
            name = self.expect_ident()
            if self.accept_op("."):
                return ast.ColumnRef(name, self.expect_ident())
            return ast.ColumnRef(None, name)
        raise SQLSyntaxError(f"unexpected token in expression: {tok}")

    def _func_call(self) -> ast.Expr:
        name = self.expect_ident()
        self.expect_op("(")
        distinct = False
        star = False
        args: list[ast.Expr] = []
        agg_order: list[ast.OrderItem] = []
        if self.at_op("*"):
            self.next()
            star = True
        elif not self.at_op(")"):
            if self.accept_keyword("DISTINCT"):
                distinct = True
            args.append(self.parse_expr())
            while self.accept_op(","):
                args.append(self.parse_expr())
            if self.accept_keyword("ORDER"):
                self.expect_keyword("BY")
                agg_order = self._order_items()
        self.expect_op(")")
        if self.accept_keyword("OVER"):
            self.expect_op("(")
            partition: list[ast.Expr] = []
            order: list[ast.OrderItem] = []
            if self.accept_keyword("PARTITION"):
                self.expect_keyword("BY")
                partition.append(self.parse_expr())
                while self.accept_op(","):
                    partition.append(self.parse_expr())
            if self.accept_keyword("ORDER"):
                self.expect_keyword("BY")
                order = self._order_items()
            self.expect_op(")")
            return ast.WindowFunc(name, tuple(partition), tuple(order))
        return ast.FuncCall(
            name,
            tuple(args),
            distinct=distinct,
            star=star,
            agg_order_by=tuple(agg_order),
        )

    def _case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        default = None
        while self.accept_keyword("WHEN"):
            cond = self.parse_expr()
            self.expect_keyword("THEN")
            result = self.parse_expr()
            whens.append((cond, result))
        if self.accept_keyword("ELSE"):
            default = self.parse_expr()
        self.expect_keyword("END")
        if not whens:
            raise SQLSyntaxError("CASE requires at least one WHEN")
        return ast.CaseExpr(tuple(whens), default)

    # -- DDL / DML -----------------------------------------------------
    def _create_table(self) -> ast.CreateTable:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_ident()
        self.expect_op("(")
        columns: list[ast.ColumnDef] = []
        pk: tuple[str, ...] = ()
        while True:
            if self.at_keyword("PRIMARY"):
                self.next()
                self.expect_keyword("KEY")
                self.expect_op("(")
                parts = [self.expect_ident()]
                while self.accept_op(","):
                    parts.append(self.expect_ident())
                self.expect_op(")")
                pk = tuple(parts)
            else:
                col_name = self.expect_ident()
                type_name = self._type_name()
                col_pk = False
                if self.accept_keyword("PRIMARY"):
                    self.expect_keyword("KEY")
                    col_pk = True
                columns.append(ast.ColumnDef(col_name, type_name, col_pk))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        if not pk:
            inline = tuple(c.name for c in columns if c.primary_key)
            pk = inline
        return ast.CreateTable(name, tuple(columns), pk, if_not_exists)

    def _type_name(self) -> str:
        tok = self.peek()
        if tok.kind not in (IDENT, KEYWORD):
            raise SQLSyntaxError(f"expected type name, got {tok}")
        self.next()
        name = str(tok.value)
        # multi-word types: DOUBLE PRECISION
        if name.lower() == "double" and self.peek().kind == IDENT and self.peek().value == "precision":
            self.next()
            name = "double precision"
        while self.at_op("["):
            self.next()
            self.expect_op("]")
            name += "[]"
        return name

    def _drop_table(self) -> ast.DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return ast.DropTable(self.expect_ident(), if_exists)

    def _insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: tuple[str, ...] = ()
        if self.at_op("("):
            self.next()
            cols = [self.expect_ident()]
            while self.accept_op(","):
                cols.append(self.expect_ident())
            self.expect_op(")")
            columns = tuple(cols)
        if self.accept_keyword("VALUES"):
            rows = []
            while True:
                self.expect_op("(")
                row = [self.parse_expr()]
                while self.accept_op(","):
                    row.append(self.parse_expr())
                self.expect_op(")")
                rows.append(tuple(row))
                if not self.accept_op(","):
                    break
            return ast.Insert(table, columns, rows=tuple(rows))
        select = self.parse_query()
        return ast.Insert(table, columns, select=select)

    def _update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = []
        while True:
            column = self.expect_ident()
            self.expect_op("=")
            assignments.append((column, self.parse_expr()))
            if not self.accept_op(","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Update(table, tuple(assignments), where)

    def _delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Delete(table, where)


def parse(sql: str):
    """Parse one SQL statement, returning its AST."""
    return Parser(sql).parse_statement()
