"""AST node definitions for the minidb SQL dialect.

Every node carries an optional ``span`` — a ``(start, end)`` byte-offset
range into the original SQL text, attached by the parser and excluded from
equality/hashing so structural comparison (tests, GROUP BY matching) ignores
where a node came from. The analyzer uses spans to render caret diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _span_field():
    return field(default=None, compare=False, repr=False)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
class Expr:
    """Marker base class for expression nodes."""


@dataclass(frozen=True)
class Literal(Expr):
    value: object  # int | float | str | bool | None
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class Param(Expr):
    index: int  # 1-based, as in $1
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class ColumnRef(Expr):
    table: str | None
    name: str
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` in a select list."""

    table: str | None = None
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # '+', '-', '*', '/', '%', '=', '<>', '<', '<=', '>', '>=',
    #          'AND', 'OR', '||'
    left: Expr
    right: Expr
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # '-', 'NOT'
    operand: Expr
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str  # lower-case
    args: tuple[Expr, ...]
    distinct: bool = False
    star: bool = False  # COUNT(*)
    agg_order_by: tuple["OrderItem", ...] = ()  # ARRAY_AGG(x ORDER BY ...)
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class WindowFunc(Expr):
    name: str  # only 'row_number' supported
    partition_by: tuple[Expr, ...]
    order_by: tuple["OrderItem", ...]
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class ArraySlice(Expr):
    base: Expr
    low: Expr | None
    high: Expr | None
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class ArrayIndex(Expr):
    base: Expr
    index: Expr
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class ArrayLiteral(Expr):
    items: tuple[Expr, ...]
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class CaseExpr(Expr):
    whens: tuple[tuple[Expr, Expr], ...]  # (condition, result)
    default: Expr | None
    span: tuple | None = _span_field()


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class SubqueryRef:
    query: "Query"
    alias: str
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class Join:
    """Explicit JOIN ... ON; comma joins are plain FROM-list entries."""

    left: object  # TableRef | SubqueryRef | Join
    right: object
    condition: Expr | None  # None for CROSS JOIN
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class SelectCore:
    items: tuple[SelectItem, ...]
    from_items: tuple[object, ...] = ()  # TableRef | SubqueryRef | Join
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    distinct: bool = False
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class Query:
    """One or more SELECT cores combined with UNION [ALL]."""

    cores: tuple[SelectCore, ...]
    set_ops: tuple[str, ...] = ()  # between cores: 'UNION' | 'UNION ALL'
    order_by: tuple[OrderItem, ...] = ()
    limit: Expr | None = None
    offset: Expr | None = None
    ctes: tuple[tuple[str, "Query"], ...] = ()
    span: tuple | None = _span_field()

    @property
    def is_simple(self) -> bool:
        return len(self.cores) == 1


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    primary_key: bool = False
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: tuple[str, ...]
    if_not_exists: bool = False
    storage: str = "row"
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class DropTable:
    name: str
    if_exists: bool = False
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]  # empty = all, in schema order
    rows: tuple[tuple[Expr, ...], ...] = ()  # VALUES form
    select: Query | None = None  # INSERT ... SELECT form
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class Delete:
    table: str
    where: Expr | None = None
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expr], ...]  # (column, new value)
    where: Expr | None = None
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class Vacuum:
    table: str
    span: tuple | None = _span_field()


@dataclass(frozen=True)
class Explain:
    """EXPLAIN [ANALYZE] <statement>: run it, return the plan tree.

    With ``analyze`` the plan lines carry actual row counts and buffer-pool
    figures per operator (PostgreSQL's ``EXPLAIN ANALYZE``)."""

    statement: object
    analyze: bool = False
    span: tuple | None = _span_field()


# ---------------------------------------------------------------------------
# Generic traversal
# ---------------------------------------------------------------------------
def walk(node):
    """Yield every AST dataclass reachable from *node*, depth-first.

    Traversal is purely structural: it descends into dataclass fields and
    tuple/list containers (CTE pairs, CASE whens, nested queries), skipping
    ``span`` so positions never masquerade as children.
    """
    import dataclasses

    stack = [node]
    while stack:
        current = stack.pop()
        if dataclasses.is_dataclass(current):
            yield current
            for f in dataclasses.fields(current):
                if f.name == "span":
                    continue
                stack.append(getattr(current, f.name))
        elif isinstance(current, (tuple, list)):
            stack.extend(current)


def param_indices(node) -> tuple[int, ...]:
    """Sorted, deduplicated ``$n`` indices appearing anywhere in *node*.

    The planner stores these on the physical plan so the executor can
    validate a parameter vector up front instead of failing mid-stream."""
    return tuple(sorted({n.index for n in walk(node) if isinstance(n, Param)}))
