"""Scalar and aggregate function registries for the SQL executor.

SQL NULL is Python ``None``; every scalar function is strict (returns NULL
on NULL input) except ``COALESCE``; aggregates skip NULLs, as in PostgreSQL.
"""

from __future__ import annotations

import math

from repro.errors import SQLNameError, SQLTypeError


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------
def _floor(x):
    if x is None:
        return None
    if isinstance(x, int):
        return x
    return math.floor(x)


def _ceil(x):
    if x is None:
        return None
    if isinstance(x, int):
        return x
    return math.ceil(x)


def _abs(x):
    return None if x is None else abs(x)


def _coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


def _least(*args):
    present = [a for a in args if a is not None]
    return min(present) if present else None


def _greatest(*args):
    present = [a for a in args if a is not None]
    return max(present) if present else None


def _cardinality(arr):
    if arr is None:
        return None
    if not isinstance(arr, (list, tuple)):
        raise SQLTypeError(f"CARDINALITY expects an array, got {arr!r}")
    return len(arr)


def _array_length(arr, dim=1):
    if arr is None:
        return None
    if dim != 1:
        raise SQLTypeError("minidb arrays are one-dimensional")
    if not isinstance(arr, (list, tuple)):
        raise SQLTypeError(f"ARRAY_LENGTH expects an array, got {arr!r}")
    return len(arr) or None  # PostgreSQL returns NULL for empty arrays


def _mod(a, b):
    if a is None or b is None:
        return None
    return a - b * (a // b if (a < 0) == (b < 0) else -((-a) // b) if b > 0 else -(a // -b))


def _mod_simple(a, b):
    if a is None or b is None:
        return None
    return math.fmod(a, b) if isinstance(a, float) or isinstance(b, float) else int(math.fmod(a, b))


def _power(a, b):
    if a is None or b is None:
        return None
    return a ** b


def _sqrt(x):
    return None if x is None else math.sqrt(x)


def _round(x, digits=0):
    if x is None:
        return None
    return round(x, digits) if digits else float(round(x))


def _lower(s):
    return None if s is None else s.lower()


def _upper(s):
    return None if s is None else s.upper()


def _length(s):
    return None if s is None else len(s)


SCALAR_FUNCTIONS = {
    "floor": _floor,
    "ceil": _ceil,
    "ceiling": _ceil,
    "abs": _abs,
    "coalesce": _coalesce,
    "least": _least,
    "greatest": _greatest,
    "cardinality": _cardinality,
    "array_length": _array_length,
    "mod": _mod_simple,
    "power": _power,
    "sqrt": _sqrt,
    "round": _round,
    "lower": _lower,
    "upper": _upper,
    "length": _length,
}


def get_scalar(name: str):
    try:
        return SCALAR_FUNCTIONS[name]
    except KeyError:
        raise SQLNameError(f"unknown function {name!r}") from None


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------
def agg_min(values):
    present = [v for v in values if v is not None]
    return min(present) if present else None


def agg_max(values):
    present = [v for v in values if v is not None]
    return max(present) if present else None


def agg_sum(values):
    present = [v for v in values if v is not None]
    return sum(present) if present else None


def agg_avg(values):
    present = [v for v in values if v is not None]
    return sum(present) / len(present) if present else None


def agg_count(values):
    return sum(1 for v in values if v is not None)


def agg_array(values):
    present = [v for v in values if v is not None]
    return present if present else None  # array_agg of nothing is NULL


def agg_bool_and(values):
    present = [v for v in values if v is not None]
    return all(present) if present else None


def agg_bool_or(values):
    present = [v for v in values if v is not None]
    return any(present) if present else None


AGGREGATE_FUNCTIONS = {
    "min": agg_min,
    "max": agg_max,
    "sum": agg_sum,
    "avg": agg_avg,
    "count": agg_count,
    "array_agg": agg_array,
    "bool_and": agg_bool_and,
    "bool_or": agg_bool_or,
}


def is_aggregate(name: str) -> bool:
    return name in AGGREGATE_FUNCTIONS


# Set-returning functions (expanded by the executor, not evaluated here).
SET_RETURNING = {"unnest"}
