"""numpy batch kernels for the vectorized executor.

The batch executor moves chunks of rows between operators. With numpy
available, eligible scans (today: the fused UNNEST producer over int64
label data) emit :class:`ColumnChunk` batches — parallel ``int64`` arrays,
one per output column — instead of lists of tuples, and the fused filter /
hash-join / aggregation kernels below operate on whole columns at once.

Two invariants make this a pure representation change:

* **Row compatibility.** ``ColumnChunk`` is sequence-like: ``len``,
  iteration, indexing, and slicing behave exactly like the list of tuples
  it stands for (iteration yields plain Python-int tuples). Any operator
  that was written against row chunks keeps working, unmodified, on a
  column chunk — it just pays a one-time materialization on first touch.
* **Fallback parity.** Every kernel either returns the bit-identical
  result of the row-at-a-time code path or signals ineligibility (``None``
  / an exception the caller catches), in which case the executor re-runs
  the compiled row closures on the same data. Specs are advisory,
  never load-bearing for correctness.

Columns are non-NULL ``int64`` only — producers check eligibility row by
row before switching representation, so NULL handling stays in the row
closures. The one NULL that can reach a kernel is a NULL *parameter* in a
comparison; SQL three-valued logic makes that predicate never-true, which
is exactly ``np.zeros(n, bool)``.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None

NUMPY_AVAILABLE = np is not None

_NULL = object()  # sentinel: a NULL operand inside a kernel expression


class ColumnChunk:
    """A batch of rows stored as parallel int64 numpy columns.

    Drop-in sequence of row tuples: ``len(chunk)``, ``chunk[i]``,
    ``chunk[a:b]`` and iteration all match the equivalent
    ``list[tuple[int, ...]]``. Kernels reach the arrays via ``cols``.
    """

    __slots__ = ("cols", "n", "_rows")

    def __init__(self, cols, n=None):
        self.cols = list(cols)
        self.n = len(self.cols[0]) if n is None else n
        self._rows = None

    def __len__(self):
        return self.n

    def to_rows(self):
        """Materialize (and cache) the plain Python row tuples."""
        if self._rows is None:
            if self.cols:
                self._rows = list(zip(*[c.tolist() for c in self.cols]))
            else:
                self._rows = [()] * self.n
        return self._rows

    def __iter__(self):
        return iter(self.to_rows())

    def __getitem__(self, item):
        if isinstance(item, slice):
            return ColumnChunk(
                [c[item] for c in self.cols],
                n=len(range(*item.indices(self.n))),
            )
        return tuple(c[item].item() for c in self.cols)

    def take(self, mask):
        """Rows where the boolean *mask* is True, as a new chunk."""
        return ColumnChunk([c[mask] for c in self.cols])

    def project(self, col_indices):
        """Column subset/reorder, sharing the underlying arrays."""
        return ColumnChunk([self.cols[i] for i in col_indices], n=self.n)


def concat(chunks):
    """Concatenate ColumnChunks into one (columns stacked per position)."""
    if len(chunks) == 1:
        return chunks[0]
    width = len(chunks[0].cols)
    return ColumnChunk(
        [np.concatenate([c.cols[i] for c in chunks]) for i in range(width)],
        n=sum(c.n for c in chunks),
    )


# ---------------------------------------------------------------------------
# Operand / predicate evaluation
# ---------------------------------------------------------------------------
def eval_operand(spec, cols, params):
    """Evaluate an operand spec to an array, a Python int, or ``_NULL``.

    Raises TypeError for values the kernels must not touch (bools,
    non-ints) — callers catch and fall back to the row closures.
    """
    kind = spec[0]
    if kind == "col":
        return cols[spec[1]]
    if kind == "const":
        return spec[1]
    if kind == "param":
        value = params[spec[1]]
        if value is None:
            return _NULL
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError(f"non-integer parameter {value!r} in kernel")
        return value
    if kind == "neg":
        inner = eval_operand(spec[1], cols, params)
        return _NULL if inner is _NULL else -inner
    if kind == "bin":
        left = eval_operand(spec[2], cols, params)
        right = eval_operand(spec[3], cols, params)
        if left is _NULL or right is _NULL:
            return _NULL
        op = spec[1]
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        return left * right
    if kind == "div":
        left = eval_operand(spec[1], cols, params)
        right = eval_operand(spec[2], cols, params)
        if left is _NULL or right is _NULL:
            return _NULL
        if isinstance(right, np.ndarray):
            if not (right != 0).all():
                raise TypeError("zero divisor: the row path raises in order")
        elif right == 0:
            raise TypeError("zero divisor: the row path raises in order")
        quotient = left // right
        # SQL integer division truncates toward zero; floor division is one
        # less exactly when the signs differ and there is a remainder.
        return quotient + ((quotient < 0) & (quotient * right != left))
    if kind == "floor":
        inner = eval_operand(spec[1], cols, params)
        if inner is _NULL:
            return _NULL
        if isinstance(inner, np.ndarray):
            if not np.issubdtype(inner.dtype, np.integer):
                raise TypeError("FLOOR over non-integers stays on the row path")
            return inner
        if isinstance(inner, bool) or not isinstance(inner, (int, np.integer)):
            raise TypeError("FLOOR over non-integers stays on the row path")
        return inner  # FLOOR of an integer is the identity, as in SQL
    if kind in ("maxv", "minv"):
        fn = np.maximum if kind == "maxv" else np.minimum
        parts = [eval_operand(part, cols, params) for part in spec[1:]]
        if any(part is _NULL for part in parts):
            # GREATEST/LEAST are not strict (they skip NULLs); mixed
            # NULL/array semantics stay on the row closures.
            raise TypeError("NULL in GREATEST/LEAST stays on the row path")
        acc = parts[0]
        for part in parts[1:]:
            acc = fn(acc, part)
        return acc
    raise TypeError(f"unknown operand spec {spec!r}")


_CMP = None
if NUMPY_AVAILABLE:
    _CMP = {
        "=": lambda a, b: a == b,
        "<>": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }


def eval_mask(spec, cols, params, n):
    """Boolean keep-mask for one ``("cmp", op, a, b)`` spec."""
    left = eval_operand(spec[2], cols, params)
    right = eval_operand(spec[3], cols, params)
    if left is _NULL or right is _NULL:
        return np.zeros(n, dtype=bool)  # NULL comparison is never TRUE
    result = _CMP[spec[1]](left, right)
    if not isinstance(result, np.ndarray):  # both operands scalar
        return np.full(n, bool(result))
    return result


def eval_masks(specs, cols, params, n):
    """AND of all filter specs as one mask, or None to use the row path.

    None is returned when any conjunct has no spec (the planner could not
    lower it) or a parameter has a type the kernels refuse — identical
    semantics are then guaranteed by the compiled closures instead.
    """
    if specs is None or any(s is None for s in specs):
        return None
    mask = np.ones(n, dtype=bool)
    try:
        for spec in specs:
            mask &= eval_mask(spec, cols, params, n)
    except (TypeError, OverflowError):
        return None
    return mask


def eval_keys(specs, cols, params, n):
    """Probe-key tuples for an index nested-loop, or None for the row path.

    Evaluates each key spec over the left chunk's columns and zips the
    results into plain-int tuples — exactly the keys the per-row closures
    build, since specs lower only expressions with identical integer
    semantics. Anything surprising (NULL parameters, zero divisors,
    non-int64 results) returns None and the caller re-derives every key
    with the compiled closures.
    """
    key_cols = []
    try:
        for spec in specs:
            value = eval_operand(spec, cols, params)
            if value is _NULL:
                return None
            if isinstance(value, np.ndarray):
                if value.dtype != np.int64:
                    return None
                key_cols.append(value.tolist())
            elif isinstance(value, (int, np.integer)) and not isinstance(
                value, bool
            ):
                key_cols.append([int(value)] * n)
            else:
                return None
    except (TypeError, OverflowError):
        return None
    return list(zip(*key_cols))


# ---------------------------------------------------------------------------
# Join kernel
# ---------------------------------------------------------------------------
def join_pairs(left_keys, right_keys):
    """Matching (left_index, right_index) arrays for an equi-join.

    Output order replicates the row-path hash join exactly: left-major,
    and within one left row the matching right rows in their original
    (build insertion) order — the stable argsort preserves input order
    among equal keys, so ``order[starts + within]`` walks each bucket in
    insertion order.
    """
    order = np.argsort(right_keys, kind="stable")
    sorted_keys = right_keys[order]
    lo = np.searchsorted(sorted_keys, left_keys, side="left")
    hi = np.searchsorted(sorted_keys, left_keys, side="right")
    counts = hi - lo
    left_idx = np.repeat(np.arange(left_keys.shape[0]), counts)
    total = int(counts.sum())
    if total == 0:
        return left_idx, left_idx.copy()
    run_starts = np.cumsum(counts) - counts
    within = np.arange(total) - np.repeat(run_starts, counts)
    right_idx = order[np.repeat(lo, counts) + within]
    return left_idx, right_idx


# ---------------------------------------------------------------------------
# Aggregation kernel
# ---------------------------------------------------------------------------
def group_aggregate(np_spec, cols, params, n):
    """Evaluate an ``Aggregate.np_spec`` over whole columns.

    Returns the finished output rows as plain Python tuples, in the exact
    order the streaming row accumulators produce (group first-appearance
    order), or None when the row path must decide instead — notably the
    zero-input scalar aggregate, whose default row (COUNT=0, MIN=NULL)
    the row path already implements.
    """
    group_cols, items = np_spec
    try:
        if not group_cols:
            if n == 0:
                return None  # default-row semantics live in the row path
            out = []
            for item in items:
                out.append(_scalar_agg(item, cols, params, n))
            return [tuple(out)]

        keys = cols[group_cols[0]]
        if n == 0:
            return []
        uniq, first_idx, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        # np.unique sorts by key value; remap group ids to first-appearance
        # order so output rows match the dict-insertion order of the
        # streaming accumulators.
        appearance = np.argsort(first_idx, kind="stable")
        rank = np.empty(len(uniq), dtype=np.int64)
        rank[appearance] = np.arange(len(uniq))
        group_of = rank[inverse]
        counts = np.bincount(group_of, minlength=len(uniq))
        sort_idx = np.argsort(group_of, kind="stable")
        starts = np.cumsum(counts) - counts
        first_rows = first_idx[appearance]

        columns = []
        for item in items:
            kind = item[0]
            if kind == "first":
                columns.append(cols[item[1]][first_rows].tolist())
            elif kind == "count*":
                columns.append(counts.tolist())
            else:  # ("agg", name, operand)
                name, operand = item[1], item[2]
                values = eval_operand(operand, cols, params)
                if values is _NULL:
                    columns.append([0 if name == "count" else None] * len(uniq))
                    continue
                if not isinstance(values, np.ndarray):
                    values = np.full(n, values, dtype=np.int64)
                if name == "count":
                    columns.append(counts.tolist())  # columns are non-NULL
                elif name == "min":
                    columns.append(
                        np.minimum.reduceat(values[sort_idx], starts).tolist()
                    )
                else:
                    columns.append(
                        np.maximum.reduceat(values[sort_idx], starts).tolist()
                    )
        return list(zip(*columns))
    except (TypeError, OverflowError):
        return None


def _scalar_agg(item, cols, params, n):
    kind = item[0]
    if kind == "count*":
        return n
    if kind == "first":
        return cols[item[1]][0].item()
    name, operand = item[1], item[2]
    values = eval_operand(operand, cols, params)
    if values is _NULL:
        return 0 if name == "count" else None
    if not isinstance(values, np.ndarray):
        if name == "count":
            return n
        return int(values)
    if name == "count":
        return n
    if name == "min":
        return int(values.min())
    return int(values.max())
