"""The minidb Database facade.

A :class:`Database` owns a disk manager (with a device latency model), a
buffer pool, a catalog and a prepared-statement cache, and executes SQL via
:meth:`execute`. This is the component that stands in for PostgreSQL in the
PTLDB reproduction — see DESIGN.md for the substitution argument.

Example::

    db = Database(device="ssd")
    db.execute("CREATE TABLE t (v BIGINT, hubs BIGINT[], PRIMARY KEY (v))")
    db.execute("INSERT INTO t VALUES ($1, $2)", (1, [10, 20]))
    db.execute("SELECT UNNEST(hubs) AS hub FROM t WHERE v=$1", (1,)).rows
"""

from __future__ import annotations

import json
import struct
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import DatabaseError, StorageError
from repro.minidb.buffer import BufferPool
from repro.minidb.catalog import Catalog
from repro.minidb.disk import DeviceModel, DiskManager, hdd_model, ram_model, ssd_model
from repro.minidb.metrics import REGISTRY, QueryTrace, TraceCollector
from repro.minidb.page import HEADER_SIZE, KIND_META, PAGE_SIZE
from repro.minidb.sql.analyzer import Analysis, analyze as analyze_stmt
from repro.minidb.sql.executor import Executor, Result
from repro.minidb.sql.parser import parse
from repro.minidb.sql.planner import plan_statement

_DEVICES = {"hdd": hdd_model, "ssd": ssd_model, "ram": ram_model}
_META_LEN = struct.Struct("<I")
_META_CAP = PAGE_SIZE - HEADER_SIZE - _META_LEN.size

#: Upper bound on cached plans per :class:`Database` (LRU eviction beyond).
PLAN_CACHE_CAP = 256


@dataclass
class QueryCost:
    """I/O accounting for a single statement."""

    page_reads: int
    pool_hits: int
    simulated_io_ms: float
    pool_misses: int = 0


@dataclass
class CachedPlan:
    """One plan-cache entry: everything derivable from the SQL text alone.

    The entry is valid while the catalog version it was built against is
    current; DDL bumps the version and the next execution re-analyzes and
    re-plans transparently."""

    sql: str
    stmt: object
    analysis: Analysis | None
    plan: object  # physical plan (plan.Plan) or None when planning failed
    version: int


class PreparedStatement:
    """A reusable handle for one SQL statement.

    Thin by design: execution routes through :meth:`Database.execute`, so a
    prepared statement's speed comes entirely from the shared plan cache —
    repeat executions skip parse, analysis and planning (the cache hit
    counter proves it) and stale entries re-plan automatically after DDL.
    """

    def __init__(self, db: "Database", sql: str, analyze: bool | None = None):
        self.db = db
        self.sql = sql
        self.analyze = analyze

    def execute(self, params: tuple | list = ()) -> Result:
        return self.db.execute(self.sql, params, analyze=self.analyze)

    def explain(self) -> list[str]:
        """Static plan lines for this statement (no execution)."""
        from repro.minidb.sql.plan import explain_lines

        do_analyze = (
            self.db.analyze if self.analyze is None else self.analyze
        )
        entry = self.db._ensure_cached(self.sql, do_analyze)
        plan = entry.plan or plan_statement(entry.stmt, self.db.catalog)
        return explain_lines(plan)

    def __repr__(self) -> str:
        return f"PreparedStatement({self.sql!r})"


class Database:
    """An embedded relational database with simulated storage latency."""

    def __init__(
        self,
        device: str | DeviceModel = "ram",
        pool_pages: int = 4096,
        path: str | None = None,
    ):
        if isinstance(device, str):
            try:
                device = _DEVICES[device]()
            except KeyError:
                raise DatabaseError(
                    f"unknown device {device!r}; pick one of {sorted(_DEVICES)}"
                ) from None
        self.disk = DiskManager(path=path, device=device)
        self.pool = BufferPool(self.disk, capacity=pool_pages)
        self.catalog = Catalog(self.pool)
        self._plan_cache: OrderedDict[str, CachedPlan] = OrderedDict()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.plan_cache_evictions = 0
        self.plan_cache_invalidations = 0
        self.last_cost: QueryCost | None = None
        self.last_trace: QueryTrace | None = None
        self.last_analysis: Analysis | None = None
        #: Set False to skip per-operator trace collection (hot loops).
        self.tracing = True
        #: Set False to skip static analysis before execution (opt-out;
        #: per-call override via ``execute(..., analyze=False)``).
        self.analyze = True
        self._path = path
        if self.disk.num_pages == 0:
            # Fresh database: page 0 is the catalog checkpoint (META) page.
            meta_id, _ = self.pool.new_page(KIND_META)
            if meta_id != 0:
                raise StorageError("meta page must be page 0")
            self._write_meta(json.dumps([]).encode("utf-8"))
        else:
            # Existing file: restore the catalog from the checkpoint.
            payload = self._read_meta()
            self.catalog.restore(json.loads(payload.decode("utf-8")))

    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        params: tuple | list = (),
        analyze: bool | None = None,
    ) -> Result:
        """Parse, statically analyze (both cached) and run one statement.

        Analysis is strict by default: semantic errors (unknown names, type
        violations, misplaced aggregates, ...) raise *before* any page is
        read. Pass ``analyze=False`` (or set ``db.analyze = False``) to skip
        it; access-path warnings (``APL*``) never block execution."""
        do_analyze = self.analyze if analyze is None else analyze
        entry = self._ensure_cached(sql, do_analyze)
        self.last_analysis = entry.analysis
        if do_analyze and entry.analysis is not None:
            entry.analysis.raise_if_errors()
        plan = entry.plan
        if plan is None:
            # Planning failed (or was skipped) when the entry was built;
            # re-plan per execution so the original error surfaces here.
            plan = plan_statement(entry.stmt, self.catalog)
        disk_before = self.disk.stats.snapshot()
        pool_before = self.pool.stats.snapshot()
        collector = TraceCollector(self.pool) if self.tracing else None
        started = time.perf_counter()
        result = Executor(
            self.catalog, tuple(params), collector=collector
        ).run(plan)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        disk_delta = self.disk.stats.delta(disk_before)
        pool_delta = self.pool.stats.delta(pool_before)
        self.last_cost = QueryCost(
            page_reads=disk_delta.reads,
            pool_hits=pool_delta.hits,
            simulated_io_ms=disk_delta.simulated_read_ms,
            pool_misses=pool_delta.misses,
        )
        if collector is not None:
            trace = QueryTrace(
                sql=sql,
                roots=collector.roots,
                total_ms=elapsed_ms,
                pool_hits=pool_delta.hits,
                pool_misses=pool_delta.misses,
                page_reads=disk_delta.reads,
                io_ms=disk_delta.simulated_read_ms,
            )
            self.last_trace = trace
            result.trace = trace
        else:
            # Never leave a previous statement's trace lying around — a
            # stale tree would silently misattribute this statement's I/O.
            self.last_trace = None
        return result

    def executemany(self, sql: str, param_rows) -> int:
        """Run one DML statement for each parameter tuple."""
        count = 0
        for params in param_rows:
            self.execute(sql, params)
            count += 1
        return count

    # -- plan cache ------------------------------------------------------
    def _ensure_cached(self, sql: str, do_analyze: bool) -> CachedPlan:
        """Return the (parse, analysis, plan) bundle for *sql*, reusing the
        LRU cache when the catalog version still matches."""
        entry = self._plan_cache.get(sql)
        if (
            entry is not None
            and entry.version == self.catalog.version
            and not (do_analyze and entry.analysis is None)
        ):
            self._plan_cache.move_to_end(sql)
            self.plan_cache_hits += 1
            REGISTRY.counter("plan_cache.hits").inc()
            return entry
        self.plan_cache_misses += 1
        REGISTRY.counter("plan_cache.misses").inc()
        if entry is not None and entry.version != self.catalog.version:
            self.plan_cache_invalidations += 1
            REGISTRY.counter("plan_cache.invalidations").inc()
        stmt = entry.stmt if entry is not None else parse(sql)
        if do_analyze:
            analysis = analyze_stmt(stmt, self.catalog, sql=sql)
            plan = analysis.plan  # None when analysis (or planning) failed
        else:
            analysis = None
            plan = plan_statement(stmt, self.catalog)
        entry = CachedPlan(sql, stmt, analysis, plan, self.catalog.version)
        self._plan_cache[sql] = entry
        self._plan_cache.move_to_end(sql)
        while len(self._plan_cache) > PLAN_CACHE_CAP:
            self._plan_cache.popitem(last=False)
            self.plan_cache_evictions += 1
            REGISTRY.counter("plan_cache.evictions").inc()
        return entry

    def prepare(self, sql: str, analyze: bool | None = None) -> PreparedStatement:
        """Parse, analyze and plan *sql* once, returning a reusable handle.

        Semantic errors raise here (when analysis is on), not at the first
        ``execute``. The handle stays valid across DDL: a catalog-version
        bump invalidates the cached plan and the next execution re-plans."""
        do_analyze = self.analyze if analyze is None else analyze
        entry = self._ensure_cached(sql, do_analyze)
        if do_analyze and entry.analysis is not None:
            entry.analysis.raise_if_errors()
        return PreparedStatement(self, sql, analyze)

    def plan_cache_stats(self) -> dict:
        """Plan-cache effectiveness counters for this database."""
        return {
            "size": len(self._plan_cache),
            "capacity": PLAN_CACHE_CAP,
            "hits": self.plan_cache_hits,
            "misses": self.plan_cache_misses,
            "evictions": self.plan_cache_evictions,
            "invalidations": self.plan_cache_invalidations,
        }

    # ------------------------------------------------------------------
    def restart(self) -> None:
        """Drop all cached pages — the paper's cold-cache server restart."""
        self.pool.clear()

    def table_stats(self) -> dict[str, dict]:
        """Per-table row counts and page footprints (heap + index)."""
        out = {}
        for name in self.catalog.table_names():
            table = self.catalog.get(name)
            heap_pages = len(table.heap.page_ids())
            out[name] = {
                "rows": table.row_count,
                "heap_pages": heap_pages,
                "index_height": (
                    table.index.height() if table.index is not None else 0
                ),
            }
        return out

    def total_pages(self) -> int:
        """Total pages allocated in the database file."""
        return self.disk.num_pages

    def size_bytes(self) -> int:
        from repro.minidb.page import PAGE_SIZE

        return self.disk.num_pages * PAGE_SIZE

    # -- persistence -----------------------------------------------------
    def checkpoint(self) -> None:
        """Write the catalog snapshot to the META chain and flush all pages.

        After a checkpoint, reopening the same database file restores every
        table (schemas, heaps, indexes, row counts)."""
        payload = json.dumps(self.catalog.describe()).encode("utf-8")
        self._write_meta(payload)
        self.pool.flush()

    def _write_meta(self, payload: bytes) -> None:
        page_id = 0
        offset = 0
        while True:
            page = self.pool.get(page_id)
            if page.kind != KIND_META:
                raise StorageError(f"page {page_id} is not a META page")
            chunk = payload[offset : offset + _META_CAP]
            _META_LEN.pack_into(page.buf, HEADER_SIZE, len(chunk))
            page.buf[HEADER_SIZE + 4 : HEADER_SIZE + 4 + len(chunk)] = chunk
            offset += len(chunk)
            self.pool.mark_dirty(page_id)
            if offset >= len(payload):
                page.next_page = -1
                self.pool.mark_dirty(page_id)
                break
            if page.next_page == -1:
                next_id, _ = self.pool.new_page(KIND_META)
                page = self.pool.get(page_id)
                page.next_page = next_id
                self.pool.mark_dirty(page_id)
            page_id = self.pool.get(page_id).next_page

    def _read_meta(self) -> bytes:
        parts = []
        page_id = 0
        while page_id != -1:
            page = self.pool.get(page_id)
            if page.kind != KIND_META:
                raise StorageError(f"page {page_id} is not a META page")
            (length,) = _META_LEN.unpack_from(page.buf, HEADER_SIZE)
            parts.append(bytes(page.buf[HEADER_SIZE + 4 : HEADER_SIZE + 4 + length]))
            page_id = page.next_page
        return b"".join(parts)

    def close(self) -> None:
        if self._path is not None:
            self.checkpoint()
        self.pool.flush()
        self.disk.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
