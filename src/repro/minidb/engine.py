"""The minidb Database facade.

A :class:`Database` owns a disk manager (with a device latency model), a
buffer pool, a catalog and a prepared-statement cache, and executes SQL via
:meth:`execute`. This is the component that stands in for PostgreSQL in the
PTLDB reproduction — see DESIGN.md for the substitution argument.

Example::

    db = Database(device="ssd")
    db.execute("CREATE TABLE t (v BIGINT, hubs BIGINT[], PRIMARY KEY (v))")
    db.execute("INSERT INTO t VALUES ($1, $2)", (1, [10, 20]))
    db.execute("SELECT UNNEST(hubs) AS hub FROM t WHERE v=$1", (1,)).rows
"""

from __future__ import annotations

import json
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import CrashPoint, DatabaseError, StorageError
from repro.minidb.buffer import BufferPool
from repro.minidb.catalog import Catalog
from repro.minidb.disk import DeviceModel, DiskManager, hdd_model, ram_model, ssd_model
from repro.minidb.wal import DEFAULT_CHECKPOINT_BYTES, WriteAheadLog
from repro.minidb.latch import RWLatch
from repro.minidb.metrics import REGISTRY, QueryTrace
from repro.minidb.page import HEADER_SIZE, KIND_META, PAGE_SIZE
from repro.minidb.session import PreparedStatement, QueryCost, Session
from repro.minidb.sql.analyzer import Analysis, analyze as analyze_stmt
from repro.minidb.sql.executor import Result
from repro.minidb.sql.parser import parse
from repro.minidb.sql.planner import plan_statement

__all__ = [
    "Database",
    "PreparedStatement",
    "QueryCost",
    "Session",
    "PLAN_CACHE_CAP",
]

_DEVICES = {"hdd": hdd_model, "ssd": ssd_model, "ram": ram_model}
_META_LEN = struct.Struct("<I")
_META_CAP = PAGE_SIZE - HEADER_SIZE - _META_LEN.size

#: Upper bound on cached plans per :class:`Database` (LRU eviction beyond).
PLAN_CACHE_CAP = 256


@dataclass
class CachedPlan:
    """One plan-cache entry: everything derivable from the SQL text alone.

    The entry is valid while the catalog version it was built against is
    current; DDL bumps the version and the next execution re-analyzes and
    re-plans transparently."""

    sql: str
    stmt: object
    analysis: Analysis | None
    plan: object  # physical plan (plan.Plan) or None when planning failed
    version: int


class Database:
    """An embedded relational database with simulated storage latency."""

    def __init__(
        self,
        device: str | DeviceModel = "ram",
        pool_pages: int = 4096,
        path: str | None = None,
        batch_size: int = 1024,
        vectorize: bool = True,
        readahead: int = 8,
        numpy_batches: bool = True,
        wal: bool = True,
        wal_checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        parallel_workers: int = 1,
    ):
        if isinstance(device, str):
            try:
                device = _DEVICES[device]()
            except KeyError:
                raise DatabaseError(
                    f"unknown device {device!r}; pick one of {sorted(_DEVICES)}"
                ) from None
        self.disk = DiskManager(path=path, device=device)
        self.pool = BufferPool(self.disk, capacity=pool_pages)
        self.catalog = Catalog(self.pool)
        self._plan_cache: OrderedDict[str, CachedPlan] = OrderedDict()
        # Serializes plan-cache probes/installs across sessions.
        self._cache_lock = threading.RLock()
        # Statement-level RW latch: reads share, DML/DDL are exclusive.
        self._stmt_latch = RWLatch(name="stmt")
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.plan_cache_evictions = 0
        self.plan_cache_invalidations = 0
        #: Set False to skip per-operator trace collection (hot loops).
        self.tracing = True
        #: Batch-at-a-time execution (docs/ARCHITECTURE.md, "Vectorized
        #: pipeline"). ``vectorize=False`` forces every query onto the
        #: row-at-a-time executor; results are identical either way.
        self.vectorize = bool(vectorize)
        #: Rows per batch for the vectorized executor.
        self.batch_size = max(1, int(batch_size))
        #: numpy column batches inside the vectorized executor
        #: (docs/PERFORMANCE.md). ``numpy_batches=False`` keeps the
        #: list-of-tuples batch pipeline — the comparison baseline for
        #: the columnar kernels; results are identical either way.
        self.numpy_batches = bool(numpy_batches)
        #: Heap-scan readahead depth in pages (0 disables); prefetched
        #: chain pages are charged the device's sequential read rate.
        self.readahead = max(0, int(readahead))
        #: Set False to skip static analysis before execution (opt-out;
        #: per-call override via ``execute(..., analyze=False)``).
        self.analyze = True
        #: Morsel-driven intra-query parallelism (docs/ARCHITECTURE.md,
        #: "Parallel execution"): with ``parallel_workers=N > 1`` the
        #: vectorized executor fans eligible scan regions out over N
        #: worker threads. ``1`` (the default) keeps execution fully
        #: serial — no pool is ever created.
        self.parallel_workers = max(1, int(parallel_workers))
        self._worker_pool = None
        #: The implicit connection backing ``db.execute`` / ``db.last_cost``;
        #: concurrent callers open their own via :meth:`session`.
        self._session = Session(self)
        self._path = path
        self._closed = False
        #: Write-ahead log (file-backed databases only; ``wal=False`` opts
        #: out). Armed on the buffer pool *after* open-time replay so the
        #: recovery writes themselves are never re-logged.
        self.wal: WriteAheadLog | None = None
        if path is not None and wal:
            self.wal = WriteAheadLog(
                path + ".wal", checkpoint_bytes=wal_checkpoint_bytes
            )
        if self.disk.num_pages == 0:
            # Fresh database: page 0 is the catalog checkpoint (META) page.
            # Unpin before the sanity check so the raise path cannot leak
            # the pin (repro sanitize, SAN102).
            meta_id, _ = self.pool.new_page(KIND_META)
            self.pool.unpin(meta_id)
            if meta_id != 0:
                raise StorageError("meta page must be page 0")
            self._write_meta(json.dumps([]).encode("utf-8"))
            if self.wal is not None:
                # Persist the empty catalog now: a crash before the first
                # checkpoint must still find a readable META page 0.
                self.pool.flush()
                self.disk.sync()
        else:
            # Existing file: replay the WAL tail (a killed worker's
            # committed statements), then restore the catalog — from the
            # last COMMIT record when the log has one, else from the META
            # checkpoint.
            payload = None
            if self.wal is not None:
                payload = self.wal.replay(self.disk)
            if payload is None:
                payload = self._read_meta()
            self.catalog.restore(json.loads(payload.decode("utf-8")))
        # Arm the pool hooks last: from here on every first-dirty is logged.
        self.pool.wal = self.wal

    @classmethod
    def open(cls, path: str, **kwargs) -> "Database":
        """Open (or create) a file-backed database, replaying any WAL tail.

        Equivalent to ``Database(path=path, **kwargs)``; named for symmetry
        with :meth:`close` — a killed worker restarts with ``Database.open``
        and resumes from its last committed statement without re-ingesting.
        """
        return cls(path=path, **kwargs)

    # -- sessions --------------------------------------------------------
    def session(
        self, tracing: bool | None = None, analyze: bool | None = None
    ) -> Session:
        """Open a new connection over this database.

        Sessions share the catalog, buffer pool and plan cache but keep
        their own ``last_cost``/``last_trace``/``last_analysis`` and
        prepared handles — hand one to each serving thread."""
        return Session(self, tracing=tracing, analyze=analyze)

    def execute(
        self,
        sql: str,
        params: tuple | list = (),
        analyze: bool | None = None,
    ) -> Result:
        """Run one statement on the database's implicit default session.

        See :meth:`Session.execute` for semantics. Analysis is strict by
        default: semantic errors raise *before* any page is read; pass
        ``analyze=False`` (or set ``db.analyze = False``) to skip it."""
        return self._session.execute(sql, params, analyze=analyze)

    def executemany(self, sql: str, param_rows) -> int:
        """Run one DML statement for each parameter tuple."""
        return self._session.executemany(sql, param_rows)

    # Per-statement observability delegates to the default session so
    # single-connection code keeps reading ``db.last_cost`` etc. unchanged.
    @property
    def last_cost(self) -> QueryCost | None:
        return self._session.last_cost

    @last_cost.setter
    def last_cost(self, value: QueryCost | None) -> None:
        self._session.last_cost = value

    @property
    def last_trace(self) -> QueryTrace | None:
        return self._session.last_trace

    @last_trace.setter
    def last_trace(self, value: QueryTrace | None) -> None:
        self._session.last_trace = value

    @property
    def last_analysis(self) -> Analysis | None:
        return self._session.last_analysis

    @last_analysis.setter
    def last_analysis(self, value: Analysis | None) -> None:
        self._session.last_analysis = value

    @property
    def last_parallel(self) -> dict | None:
        """Worker accounting for the default session's last statement, or
        ``None`` when it ran fully serial (docs/OBSERVABILITY.md)."""
        return self._session.last_parallel

    @property
    def last_cpu_ms(self) -> float:
        """Coordinator-thread CPU time of the default session's last
        statement (``time.thread_time`` delta)."""
        return self._session.last_cpu_ms

    # -- worker pool -----------------------------------------------------
    def _ensure_worker_pool(self):
        """The database-owned morsel worker pool, created on first use.

        ``None`` when ``parallel_workers`` disables parallelism, so every
        serial configuration stays exactly on the old code path. Threads
        are shared by all sessions and shut down with the database."""
        if self.parallel_workers <= 1 or self._closed:
            return None
        if self._worker_pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._worker_pool = ThreadPoolExecutor(
                max_workers=self.parallel_workers,
                thread_name_prefix="minidb-worker",
            )
        return self._worker_pool

    def _shutdown_worker_pool(self) -> None:
        if self._worker_pool is not None:
            self._worker_pool.shutdown(wait=True)
            self._worker_pool = None

    # -- plan cache ------------------------------------------------------
    def _ensure_cached(self, sql: str, do_analyze: bool) -> CachedPlan:
        """Return the (parse, analysis, plan) bundle for *sql*, reusing the
        LRU cache when the catalog version still matches.

        Thread-safe: the probe-or-build runs under the cache lock, so two
        sessions racing on the same new statement build it once each at
        worst and never corrupt the LRU order."""
        with self._cache_lock:
            entry = self._plan_cache.get(sql)
            if (
                entry is not None
                and entry.version == self.catalog.version
                and not (do_analyze and entry.analysis is None)
            ):
                self._plan_cache.move_to_end(sql)
                self.plan_cache_hits += 1
                REGISTRY.counter("plan_cache.hits").inc()
                return entry
            self.plan_cache_misses += 1
            REGISTRY.counter("plan_cache.misses").inc()
            if entry is not None and entry.version != self.catalog.version:
                self.plan_cache_invalidations += 1
                REGISTRY.counter("plan_cache.invalidations").inc()
            stmt = entry.stmt if entry is not None else parse(sql)
            if do_analyze:
                analysis = analyze_stmt(stmt, self.catalog, sql=sql)
                plan = analysis.plan  # None when analysis (or planning) failed
            else:
                analysis = None
                plan = plan_statement(stmt, self.catalog)
            entry = CachedPlan(sql, stmt, analysis, plan, self.catalog.version)
            self._plan_cache[sql] = entry
            self._plan_cache.move_to_end(sql)
            while len(self._plan_cache) > PLAN_CACHE_CAP:
                self._plan_cache.popitem(last=False)
                self.plan_cache_evictions += 1
                REGISTRY.counter("plan_cache.evictions").inc()
            return entry

    def prepare(self, sql: str, analyze: bool | None = None) -> PreparedStatement:
        """Prepare *sql* on the default session (see :meth:`Session.prepare`)."""
        return self._session.prepare(sql, analyze=analyze)

    def plan_cache_stats(self) -> dict:
        """Plan-cache effectiveness counters for this database."""
        return {
            "size": len(self._plan_cache),
            "capacity": PLAN_CACHE_CAP,
            "hits": self.plan_cache_hits,
            "misses": self.plan_cache_misses,
            "evictions": self.plan_cache_evictions,
            "invalidations": self.plan_cache_invalidations,
        }

    # ------------------------------------------------------------------
    def restart(self) -> None:
        """Drop all cached pages — the paper's cold-cache server restart."""
        self.pool.clear()

    def table_stats(self) -> dict[str, dict]:
        """Per-table row counts, storage codec and page/byte footprints."""
        out = {}
        for name in self.catalog.table_names():
            table = self.catalog.get(name)
            heap_pages = len(table.heap.page_ids())
            out[name] = {
                "rows": table.row_count,
                "heap_pages": heap_pages,
                "storage": table.schema.storage,
                "data_bytes": table.data_bytes,
                "index_height": (
                    table.index.height() if table.index is not None else 0
                ),
            }
        return out

    def total_pages(self) -> int:
        """Total pages allocated in the database file."""
        return self.disk.num_pages

    def size_bytes(self) -> int:
        from repro.minidb.page import PAGE_SIZE

        return self.disk.num_pages * PAGE_SIZE

    # -- persistence -----------------------------------------------------
    def checkpoint(self) -> None:
        """Write the catalog snapshot to the META chain and flush all pages.

        After a checkpoint, reopening the same database file restores every
        table (schemas, heaps, indexes, row counts). With the WAL armed the
        protocol is: commit the META write, flush every dirty frame, fsync
        the main file, truncate the log — every crash window in between is
        covered by replay (docs/STORAGE.md, "Durability")."""
        payload = json.dumps(self.catalog.describe()).encode("utf-8")
        self._write_meta(payload)
        if self.wal is not None:
            self.wal.commit(self.pool, payload)
            self.wal.checkpoint(self.pool)
        else:
            self.pool.flush()

    def _wal_commit(self) -> None:
        """Seal the statement that just executed (write statements only).

        Called by the session while it still holds the exclusive statement
        latch; auto-checkpoints when the log has outgrown its threshold."""
        if self.wal is None:
            return
        self.wal.commit(
            self.pool, json.dumps(self.catalog.describe()).encode("utf-8")
        )
        if self.wal.should_checkpoint():
            self.checkpoint()

    def _wal_rollback(self, exc: BaseException) -> None:
        """Undo the failed statement's frames from their before-images.

        A :class:`~repro.errors.CrashPoint` is *not* rolled back: it
        simulates the process dying at that instant, and a dead process
        runs no cleanup — recovery happens in :meth:`open`'s replay."""
        if self.wal is None or isinstance(exc, CrashPoint):
            return
        self.wal.rollback(self.pool)

    def _write_meta(self, payload: bytes) -> None:
        page_id = 0
        offset = 0
        while True:
            with self.pool.pinned(page_id) as page:
                if page.kind != KIND_META:
                    raise StorageError(f"page {page_id} is not a META page")
                # Checkpoint writes mutate shared META content, so they take
                # the frame's write latch like every other page mutation
                # (the sanitizer's SAND04 rule).
                with self.pool.latch(page_id).write():
                    chunk = payload[offset : offset + _META_CAP]
                    _META_LEN.pack_into(page.buf, HEADER_SIZE, len(chunk))
                    page.buf[HEADER_SIZE + 4 : HEADER_SIZE + 4 + len(chunk)] = chunk
                    offset += len(chunk)
                    self.pool.mark_dirty(page_id)
                    if offset >= len(payload):
                        page.next_page = -1
                        return
                    if page.next_page == -1:
                        # The current page is pinned, so allocating the next
                        # META page cannot evict it before the link lands.
                        next_id, _ = self.pool.new_page(KIND_META)
                        self.pool.unpin(next_id)
                        page.next_page = next_id
                    page_id = page.next_page

    def _read_meta(self) -> bytes:
        parts = []
        page_id = 0
        while page_id != -1:
            page = self.pool.get(page_id)
            if page.kind != KIND_META:
                raise StorageError(f"page {page_id} is not a META page")
            (length,) = _META_LEN.unpack_from(page.buf, HEADER_SIZE)
            parts.append(bytes(page.buf[HEADER_SIZE + 4 : HEADER_SIZE + 4 + length]))
            page_id = page.next_page
        return b"".join(parts)

    def close(self) -> None:
        """Checkpoint (file-backed), flush, and release every file handle.

        Idempotent: a second ``close`` is a no-op, so ``with`` blocks and
        explicit teardown paths can overlap safely. After ``close`` the
        database file is self-contained (empty WAL) and another process may
        open it — the worker restart-in-place story depends on this."""
        if self._closed:
            return
        self._closed = True
        self._shutdown_worker_pool()
        if self._path is not None:
            self.checkpoint()
        self.pool.flush()
        self.pool.wal = None
        if self.wal is not None:
            self.wal.close()
        self.disk.close()

    def simulate_crash(self) -> None:
        """Die without flushing: drop every handle, skip checkpoint/flush.

        Test hook for crash-recovery coverage — leaves the main file and
        WAL exactly as the OS has them, like a SIGKILL would, so a
        subsequent :meth:`open` must recover through replay."""
        if self._closed:
            return
        self._closed = True
        self._shutdown_worker_pool()
        self.pool.wal = None
        if self.wal is not None:
            self.wal.abandon()
        self.disk.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
