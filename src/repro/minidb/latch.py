"""Reader–writer latches for the storage layer.

Two users:

* :class:`~repro.minidb.buffer.BufferPool` keeps one :class:`RWLatch` per
  resident frame so page content can be read by many threads while a
  mutation holds the frame exclusively.
* :class:`~repro.minidb.engine.Database` keeps a statement-level latch:
  read statements share it, DML/DDL take it exclusively (the engine's
  single-writer rule — see docs/ARCHITECTURE.md, "Concurrency model").

The latch is deliberately simple: non-reentrant, no fairness guarantees
beyond ``Condition``'s FIFO wakeups, writers wait for in-flight readers to
drain. Callers never nest two latches, which is what makes the scheme
deadlock-free (see the locking-order table in ARCHITECTURE.md).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLatch:
    """A shared/exclusive lock: many readers or one writer."""

    __slots__ = ("_cond", "_readers", "_writer")

    def __init__(self):
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer = False

    # -- shared (read) side ---------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- exclusive (write) side -----------------------------------------
    def acquire_write(self) -> None:
        with self._cond:
            while self._writer or self._readers:
                self._cond.wait()
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    # -- context managers ------------------------------------------------
    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
