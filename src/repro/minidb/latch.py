"""Reader–writer latches for the storage layer.

Two users:

* :class:`~repro.minidb.buffer.BufferPool` keeps one :class:`RWLatch` per
  resident frame so page content can be read by many threads while a
  mutation holds the frame exclusively.
* :class:`~repro.minidb.engine.Database` keeps a statement-level latch:
  read statements share it, DML/DDL take it exclusively (the engine's
  single-writer rule — see docs/ARCHITECTURE.md, "Concurrency model").

The latch is deliberately simple: non-reentrant, no fairness guarantees
beyond ``Condition``'s FIFO wakeups, writers wait for in-flight readers to
drain. Callers never nest two latches, which is what makes the scheme
deadlock-free (see the locking-order table in ARCHITECTURE.md).
"""

from __future__ import annotations

import threading


class _ReadGuard:
    """Stateless ``with``-guard for the shared side of one latch.

    One instance per latch, returned by every :meth:`RWLatch.read` call —
    the guard holds no per-acquisition state (the latch's reader count
    does), so reusing it across concurrent/nested blocks is safe and the
    hot path allocates nothing.
    """

    __slots__ = ("_latch",)

    def __init__(self, latch: "RWLatch"):
        self._latch = latch

    def __enter__(self):
        self._latch.acquire_read()
        return self._latch

    def __exit__(self, exc_type, exc, tb):
        self._latch.release_read()
        return False


class _WriteGuard:
    """Stateless ``with``-guard for the exclusive side of one latch."""

    __slots__ = ("_latch",)

    def __init__(self, latch: "RWLatch"):
        self._latch = latch

    def __enter__(self):
        self._latch.acquire_write()
        return self._latch

    def __exit__(self, exc_type, exc, tb):
        self._latch.release_write()
        return False


class RWLatch:
    """A shared/exclusive lock: many readers or one writer."""

    __slots__ = ("_cond", "_readers", "_writer", "_read_guard", "_write_guard")

    def __init__(self):
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer = False
        self._read_guard = _ReadGuard(self)
        self._write_guard = _WriteGuard(self)

    # -- shared (read) side ---------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- exclusive (write) side -----------------------------------------
    def acquire_write(self) -> None:
        with self._cond:
            while self._writer or self._readers:
                self._cond.wait()
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    # -- context managers ------------------------------------------------
    def read(self):
        """``with latch.read():`` — hold the shared side for the block."""
        return self._read_guard

    def write(self):
        """``with latch.write():`` — hold the exclusive side for the block."""
        return self._write_guard
