"""Reader–writer latches for the storage layer.

Two users:

* :class:`~repro.minidb.buffer.BufferPool` keeps one :class:`RWLatch` per
  resident frame so page content can be read by many threads while a
  mutation holds the frame exclusively.
* :class:`~repro.minidb.engine.Database` keeps a statement-level latch:
  read statements share it, DML/DDL take it exclusively (the engine's
  single-writer rule — see docs/ARCHITECTURE.md, "Concurrency model").

The latch is deliberately simple: non-reentrant, no fairness guarantees
beyond ``Condition``'s FIFO wakeups, writers wait for in-flight readers to
drain. Callers never nest two latches, which is what makes the scheme
deadlock-free (see the locking-order table in ARCHITECTURE.md) — and since
PR 7 that rule is *checked*, not just documented:

* Latches know who holds them (:meth:`RWLatch.holders`) and how many
  threads are blocked on them (:meth:`RWLatch.waiting`); contended
  acquisitions feed ``latch.wait_count`` / ``latch.wait_ms`` counters in
  :data:`repro.minidb.metrics.REGISTRY`, so latch contention shows up in
  bench snapshots instead of being invisible.
* Guaranteed self-deadlocks (a read→write upgrade, or re-acquiring the
  exclusive side) raise :class:`~repro.errors.StorageError` immediately
  instead of hanging; releasing a side the calling thread does not hold
  raises too.
* Under ``SANITIZE=1`` every acquire/release also reports to the dynamic
  sanitizer (:mod:`repro.minidb.sanitize.dynamic`), which maintains the
  cross-latch acquisition-order graph and flags inversions with both
  stacks. See docs/SANITIZER.md.

Latches are only ever taken through the :meth:`RWLatch.read` /
:meth:`RWLatch.write` / :meth:`RWLatch.guard` context managers outside this
module — the static checker (``repro sanitize``, code SAN201) enforces it.
"""

from __future__ import annotations

import threading
import time

from repro.errors import StorageError
from repro.minidb.metrics import REGISTRY
from repro.minidb.sanitize import dynamic as _san


class _ReadGuard:
    """Stateless ``with``-guard for the shared side of one latch.

    One instance per latch, returned by every :meth:`RWLatch.read` call —
    the guard holds no per-acquisition state (the latch's reader count
    does), so reusing it across concurrent/nested blocks is safe and the
    hot path allocates nothing.
    """

    __slots__ = ("_latch",)

    def __init__(self, latch: "RWLatch"):
        self._latch = latch

    def __enter__(self):
        self._latch.acquire_read()
        return self._latch

    def __exit__(self, exc_type, exc, tb):
        self._latch.release_read()
        return False


class _WriteGuard:
    """Stateless ``with``-guard for the exclusive side of one latch."""

    __slots__ = ("_latch",)

    def __init__(self, latch: "RWLatch"):
        self._latch = latch

    def __enter__(self):
        self._latch.acquire_write()
        return self._latch

    def __exit__(self, exc_type, exc, tb):
        self._latch.release_write()
        return False


class RWLatch:
    """A shared/exclusive lock: many readers or one writer.

    ``name`` labels the latch in diagnostics and metrics; its prefix before
    the first ``:`` groups the wait counters (so every frame latch named
    ``page:<id>`` lands in ``latch.page.wait_ms`` while the statement latch
    feeds ``latch.stmt.wait_ms``).
    """

    __slots__ = (
        "_cond",
        "_readers",
        "_writer",
        "_read_guard",
        "_write_guard",
        "name",
        "_kind",
        "_reader_idents",
        "_writer_ident",
        "_waiting",
        # The dynamic sanitizer watches latch lifetime with weakrefs so a
        # collected latch's id cannot alias stale edges in its graph.
        "__weakref__",
    )

    def __init__(self, name: str = "latch"):
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer = False
        self._read_guard = _ReadGuard(self)
        self._write_guard = _WriteGuard(self)
        self.name = name
        self._kind = name.split(":", 1)[0]
        #: thread ident -> number of read holds (re-entrant reads stack).
        self._reader_idents: dict[int, int] = {}
        self._writer_ident: int | None = None
        self._waiting = 0

    # -- shared (read) side ---------------------------------------------
    def acquire_read(self) -> None:
        tracker = _san.TRACKER
        if tracker is not None:
            tracker.before_acquire(self, "read")
        ident = threading.get_ident()
        with self._cond:
            if self._writer_ident == ident:
                raise StorageError(
                    f"latch {self.name!r}: acquire_read while this thread "
                    "holds the write side (self-deadlock)"
                )
            if self._writer:
                self._wait_contended(lambda: not self._writer)
            self._readers += 1
            self._reader_idents[ident] = self._reader_idents.get(ident, 0) + 1
        if tracker is not None:
            tracker.after_acquire(self, "read")

    def release_read(self) -> None:
        ident = threading.get_ident()
        with self._cond:
            if self._readers <= 0 or self._reader_idents.get(ident, 0) <= 0:
                raise StorageError(
                    f"latch {self.name!r}: release_read without a matching "
                    "acquire_read on this thread (double release?)"
                )
            if self._reader_idents[ident] == 1:
                del self._reader_idents[ident]
            else:
                self._reader_idents[ident] -= 1
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()
        tracker = _san.TRACKER
        if tracker is not None:
            tracker.on_release(self, "read")

    # -- exclusive (write) side -----------------------------------------
    def acquire_write(self) -> None:
        tracker = _san.TRACKER
        if tracker is not None:
            tracker.before_acquire(self, "write")
        ident = threading.get_ident()
        with self._cond:
            if self._writer_ident == ident:
                raise StorageError(
                    f"latch {self.name!r}: acquire_write while this thread "
                    "already holds the write side (self-deadlock)"
                )
            if self._reader_idents.get(ident, 0):
                raise StorageError(
                    f"latch {self.name!r}: read->write upgrade attempted "
                    "(this thread holds the read side; the write side "
                    "waits for all readers, so it can never be granted)"
                )
            if self._writer or self._readers:
                self._wait_contended(
                    lambda: not self._writer and not self._readers
                )
            self._writer = True
            self._writer_ident = ident
        if tracker is not None:
            tracker.after_acquire(self, "write")

    def release_write(self) -> None:
        ident = threading.get_ident()
        with self._cond:
            if not self._writer or self._writer_ident != ident:
                raise StorageError(
                    f"latch {self.name!r}: release_write without holding "
                    "the write side on this thread (double release?)"
                )
            self._writer = False
            self._writer_ident = None
            self._cond.notify_all()
        tracker = _san.TRACKER
        if tracker is not None:
            tracker.on_release(self, "write")

    # -- blocking + contention accounting --------------------------------
    def _wait_contended(self, granted) -> None:
        """Block until *granted*; charge the wait to the metrics registry.

        Caller holds ``self._cond``. Only contended acquisitions reach this
        (the uncontended fast path never touches the registry), and the
        counters are bumped while the condition lock is still held, so the
        increments cannot race.
        """
        self._waiting += 1
        started = time.perf_counter()
        try:
            while not granted():
                self._cond.wait()
        finally:
            self._waiting -= 1
        waited_ms = (time.perf_counter() - started) * 1000.0
        REGISTRY.counter("latch.wait_count").inc()
        REGISTRY.counter("latch.wait_ms").inc(waited_ms)
        REGISTRY.counter(f"latch.{self._kind}.wait_count").inc()
        REGISTRY.counter(f"latch.{self._kind}.wait_ms").inc(waited_ms)

    # -- introspection ----------------------------------------------------
    def holders(self) -> dict:
        """Who holds the latch right now.

        ``{"readers": {thread_ident: hold_count}, "writer": ident | None}``
        — a consistent snapshot taken under the latch's own condition lock.
        Used by the dynamic sanitizer (mutation-without-write-latch and
        eviction checks) and handy in a debugger.
        """
        with self._cond:
            return {
                "readers": dict(self._reader_idents),
                "writer": self._writer_ident,
            }

    def waiting(self) -> int:
        """How many threads are currently blocked on this latch."""
        with self._cond:
            return self._waiting

    def held(self) -> bool:
        """Whether any thread holds either side right now."""
        with self._cond:
            return self._writer or self._readers > 0

    # -- context managers ------------------------------------------------
    def read(self):
        """``with latch.read():`` — hold the shared side for the block."""
        return self._read_guard

    def write(self):
        """``with latch.write():`` — hold the exclusive side for the block."""
        return self._write_guard

    def guard(self, write: bool):
        """The guard for one side, picked at runtime.

        ``with latch.guard(write=is_dml):`` is how the session layer takes
        the statement latch without spelling bare ``acquire_*`` calls (the
        static checker forbids those outside this module).
        """
        return self._write_guard if write else self._read_guard

    def __repr__(self) -> str:
        with self._cond:
            state = (
                "write-held"
                if self._writer
                else f"readers={self._readers}" if self._readers else "free"
            )
            return f"RWLatch({self.name!r}, {state}, waiting={self._waiting})"
