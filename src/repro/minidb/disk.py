"""Disk manager and secondary-storage device models.

The paper benchmarks PTLDB on a 7200 rpm Seagate HDD and on a SATA SSD
(Figures 2 vs 7, Figure 8). We cannot attach those devices, so the disk
manager charges a *simulated* latency to every page read that misses the
buffer pool, using a :class:`DeviceModel`:

* HDD — average seek + half-rotation latency for a random read, plus a
  transfer cost per page; consecutive page ids are detected as sequential
  and only pay transfer cost. A write (or an allocation, which writes a
  zero page) moves the head, so it breaks a sequential read run.
* SSD — flat flash random-read latency per page (no seek penalty).

Simulated time never sleeps; it accumulates in ``DiskManager.stats`` and the
benchmark harness reports it next to measured CPU time. This preserves the
paper's effect structure exactly: queries dominated by a few random page
reads (v2v) speed up dramatically on SSD, while CPU-bound queries (kNN/OTM)
do not (Figure 8).

Accounting is kept twice: ``stats`` is the global (whole-database) view and
``thread_stats()`` returns a per-thread :class:`IOStats` charged in lockstep
with it. Single-threaded code sees identical numbers in both; the concurrent
serving harness uses the per-thread view so each session's I/O attribution
stays exact even while other sessions run (see docs/OBSERVABILITY.md).

Thread safety: all page traffic reaches the disk manager through the buffer
pool, which serializes it under its own lock; the only methods intended for
direct concurrent use are the read-only stat accessors and
``thread_stats()``. Sequential-read *run* detection is tracked per thread
(:class:`_RunTracker`): each session or intra-query worker is modeled as its
own I/O stream, so interleaved scans from two threads each keep paying the
sequential rate instead of randomizing each other — and a morsel worker's
readahead never breaks another worker's run.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.minidb.page import PAGE_SIZE


@dataclass(frozen=True)
class DeviceModel:
    """Latency model of a secondary-storage device.

    All times are in milliseconds per *page* (8 KiB) access.
    """

    name: str
    random_read_ms: float
    sequential_read_ms: float
    write_ms: float

    def read_cost(self, sequential: bool) -> float:
        return self.sequential_read_ms if sequential else self.random_read_ms


def hdd_model() -> DeviceModel:
    """A 7200 rpm SATA disk (paper: Seagate Barracuda ST3000DM001).

    8.5 ms average seek + 4.17 ms half rotation + ~0.05 ms transfer of 8 KiB
    at ~160 MB/s for random reads; sequential reads pay transfer only.
    """
    return DeviceModel(
        name="hdd", random_read_ms=12.7, sequential_read_ms=0.05, write_ms=12.7
    )


def ssd_model() -> DeviceModel:
    """A SATA SSD (paper: Crucial MX100). ~90 us random page read."""
    return DeviceModel(
        name="ssd", random_read_ms=0.09, sequential_read_ms=0.02, write_ms=0.2
    )


def ram_model() -> DeviceModel:
    """Zero-cost device, useful for unit tests."""
    return DeviceModel(name="ram", random_read_ms=0.0, sequential_read_ms=0.0, write_ms=0.0)


@dataclass
class IOStats:
    """Counters maintained by the disk manager."""

    reads: int = 0
    writes: int = 0
    sequential_reads: int = 0
    simulated_read_ms: float = 0.0
    simulated_write_ms: float = 0.0

    def snapshot(self) -> "IOStats":
        return IOStats(
            reads=self.reads,
            writes=self.writes,
            sequential_reads=self.sequential_reads,
            simulated_read_ms=self.simulated_read_ms,
            simulated_write_ms=self.simulated_write_ms,
        )

    def delta(self, since: "IOStats") -> "IOStats":
        return IOStats(
            reads=self.reads - since.reads,
            writes=self.writes - since.writes,
            sequential_reads=self.sequential_reads - since.sequential_reads,
            simulated_read_ms=self.simulated_read_ms - since.simulated_read_ms,
            simulated_write_ms=self.simulated_write_ms - since.simulated_write_ms,
        )


# Sentinel for "no read run in progress": page -1 would make page 0 look
# sequential, so the reset value sits one further out.
_NO_RUN = -2


class _RunTracker:
    """Per-thread sequential-read run positions.

    The run a read extends is a property of the *stream* issuing it, and
    with intra-query workers each worker thread is its own stream: worker A
    scanning pages 10..19 and worker B scanning 20..29 are two independent
    sequential runs (two actuators / two queue slots in the device model),
    not one interleaved random mess. Keying the last-read position by
    thread keeps each stream's accounting exact; single-threaded code sees
    exactly the old behavior. Writes and allocations still break *every*
    run — the head (or flash translation layer) moved for all streams.
    """

    def __init__(self):
        self._last: dict[int, int] = {}

    def last(self) -> int:
        return self._last.get(threading.get_ident(), _NO_RUN)

    def advance(self, page_id: int) -> None:
        self._last[threading.get_ident()] = page_id

    def break_all(self) -> None:
        self._last.clear()


class DiskManager:
    """Page-granular file storage with device-latency accounting.

    ``path=None`` keeps pages in memory (still charging simulated latency),
    which is what tests and benchmarks use; a real path persists the
    database file on disk.
    """

    def __init__(self, path: str | None = None, device: DeviceModel | None = None):
        self.device = device or ram_model()
        self.stats = IOStats()
        self._thread_stats: dict[int, IOStats] = {}
        self._path = path
        self._runs = _RunTracker()
        if path is None:
            self._file = None
            self._pages: list[bytearray] = []
        else:
            exists = os.path.exists(path)
            self._file = open(path, "r+b" if exists else "w+b")
            self._pages = []
            self._file.seek(0, os.SEEK_END)
            size = self._file.tell()
            if size % PAGE_SIZE:
                raise StorageError(f"{path} is not page aligned ({size} bytes)")
            self._num_pages = size // PAGE_SIZE

    # -- accounting ------------------------------------------------------
    def thread_stats(self) -> IOStats:
        """The calling thread's private ``IOStats`` (created on first use).

        Charged in lockstep with the global ``stats``: the sum of all
        per-thread counters always equals the global counters, so the
        concurrency harness can both attribute I/O per session and prove
        no increment was lost.
        """
        ident = threading.get_ident()
        stats = self._thread_stats.get(ident)
        if stats is None:
            # setdefault is atomic under the GIL, so two racing first calls
            # from the same thread id cannot clobber each other.
            stats = self._thread_stats.setdefault(ident, IOStats())
        return stats

    def reset_stats(self) -> None:
        """Zero the global and every per-thread counter together."""
        self.stats = IOStats()
        self._thread_stats.clear()

    def reset_access_history(self) -> None:
        """Forget every sequential-read run (a restart / cold cache would).

        Public on purpose: the buffer pool's ``clear()`` must reset it and
        should not reach into private attributes to do so.
        """
        self._runs.break_all()

    def _charge_read(self, sequential: bool) -> None:
        cost = self.device.read_cost(sequential)
        for stats in (self.stats, self.thread_stats()):
            stats.reads += 1
            if sequential:
                stats.sequential_reads += 1
            stats.simulated_read_ms += cost

    def _charge_write(self) -> None:
        for stats in (self.stats, self.thread_stats()):
            stats.writes += 1
            stats.simulated_write_ms += self.device.write_ms

    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        if self._file is None:
            return len(self._pages)
        return self._num_pages

    def allocate(self) -> int:
        """Append a zeroed page, returning its id.

        Allocation *is* a page write — the file-backed mode physically
        writes the zero page — so it is charged as one in both modes;
        otherwise bulk-load write counts would diverge between in-memory
        and file-backed runs. Like any write, it also breaks a sequential
        read run.
        """
        self._charge_write()
        self._runs.break_all()
        if self._file is None:
            self._pages.append(bytearray(PAGE_SIZE))
            return len(self._pages) - 1
        page_id = self._num_pages
        self._file.seek(page_id * PAGE_SIZE)
        self._file.write(b"\0" * PAGE_SIZE)
        self._num_pages += 1
        return page_id

    def read_page(self, page_id: int) -> bytearray:
        """Fetch a page from the device, charging simulated latency."""
        self._check(page_id)
        sequential = page_id == self._runs.last() + 1
        self._runs.advance(page_id)
        self._charge_read(sequential)
        if self._file is None:
            return bytearray(self._pages[page_id])
        self._file.seek(page_id * PAGE_SIZE)
        return bytearray(self._file.read(PAGE_SIZE))

    def read_run(self, page_ids) -> list[bytearray]:
        """Fetch several pages as **one** sequential run (readahead).

        The buffer pool's prefetch path sorts the page ids ascending and
        hands them here in one call, modeling a single multi-page device
        request: the first page pays random latency unless it extends the
        run already in progress, and every later page in the batch is
        charged sequential cost — ascending ids inside one request never
        seek, even across small gaps (the head passes over skipped pages
        anyway; an elevator pass, not N independent reads). This is what
        makes a heap scan under readahead pay the device's sequential rate,
        matching the paper's sequential-vs-random effect structure.
        """
        buffers = []
        for position, page_id in enumerate(page_ids):
            self._check(page_id)
            if position == 0:
                sequential = page_id == self._runs.last() + 1
            else:
                sequential = page_id > self._runs.last()
            self._runs.advance(page_id)
            self._charge_read(sequential)
            if self._file is None:
                buffers.append(bytearray(self._pages[page_id]))
            else:
                self._file.seek(page_id * PAGE_SIZE)
                buffers.append(bytearray(self._file.read(PAGE_SIZE)))
        return buffers

    def write_page(self, page_id: int, buf: bytearray | bytes) -> None:
        self._check(page_id)
        if len(buf) != PAGE_SIZE:
            raise StorageError("short page write")
        self._charge_write()
        # A write moves the head: two reads interleaved with it are *not*
        # one sequential run, so every thread's run restarts from scratch.
        self._runs.break_all()
        if self._file is None:
            self._pages[page_id] = bytearray(buf)
        else:
            self._file.seek(page_id * PAGE_SIZE)
            self._file.write(buf)

    # -- recovery primitives --------------------------------------------
    # Used by the write-ahead log only (replay at open, undo-image capture).
    # They bypass the device model and every counter on purpose: recovery
    # happens before serving starts, so charging it would pollute the
    # measured I/O the reproduction exists to report.

    def peek_page(self, page_id: int) -> bytes:
        """Raw page bytes without latency accounting or run tracking."""
        self._check(page_id)
        if self._file is None:
            return bytes(self._pages[page_id])
        self._file.seek(page_id * PAGE_SIZE)
        return self._file.read(PAGE_SIZE)

    def apply_image(self, page_id: int, buf: bytes) -> None:
        """Raw page write without latency accounting (WAL redo)."""
        self._check(page_id)
        if len(buf) != PAGE_SIZE:
            raise StorageError("short page image")
        if self._file is None:
            self._pages[page_id] = bytearray(buf)
        else:
            self._file.seek(page_id * PAGE_SIZE)
            self._file.write(buf)

    def ensure_pages(self, count: int) -> None:
        """Grow the file with zero pages until it holds >= *count* pages.

        Defensive: allocations are written physically at allocate time, so
        a replayed file normally already spans every committed page."""
        while self.num_pages < count:
            if self._file is None:
                self._pages.append(bytearray(PAGE_SIZE))
            else:
                self._file.seek(self._num_pages * PAGE_SIZE)
                self._file.write(b"\0" * PAGE_SIZE)
                self._num_pages += 1

    def sync(self) -> None:
        """Flush the OS buffers to stable storage (no-op in memory)."""
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < self.num_pages:
            raise StorageError(
                f"page id {page_id} out of range (file has {self.num_pages} pages)"
            )
