"""Page-level write-ahead log: statement durability for file-backed minidb.

The serving tier (docs/ARCHITECTURE.md, "Serving tier") runs label shards in
worker processes that may be SIGKILLed at any instant; re-ingesting labels on
every restart would dwarf the queries themselves. The WAL makes a killed
worker restartable in place: every committed DML/DDL statement is re-applied
from the log on reopen, so ``Database(path=...)`` recovers to exactly the
last committed statement without touching the ingest pipeline.

Protocol (docs/STORAGE.md, "Durability"):

* **No-steal buffering.** A page dirtied by the statement in flight is
  *WAL-pending*: the buffer pool refuses to evict or flush it, so the main
  database file only ever contains committed page images. (The pool's
  existing pinned-overflow mechanism absorbs the capacity pressure.)
* **Commit = one batched append.** When a write statement finishes, the log
  appends a BEFORE record (the page's last committed image) and an AFTER
  record (the current frame content) per dirtied page, then one COMMIT
  record carrying the catalog snapshot and the page count — all to an
  unbuffered file, so a SIGKILL after :meth:`commit` returns cannot lose
  the statement. A crash mid-append leaves a torn tail that replay detects
  (CRC + length framing) and discards: the statement never happened.
* **Rollback** restores each pending frame from its in-memory before-image,
  so a failed statement leaves the pool byte-identical to the last commit.
* **Checkpoint** commits the catalog META write, flushes every dirty frame,
  fsyncs the main file, then truncates the log — after which the log is
  empty and the main file is self-contained. Crashing *inside* a checkpoint
  is covered at every window: until the truncate, the log still holds every
  committed image and replay is idempotent.
* **Replay** (:meth:`WriteAheadLog.replay`) scans the log, applies the AFTER
  images of every *committed* batch to the main file, and restores the
  catalog from the last COMMIT record — the META page checkpoint is only
  the fallback when the log is empty.

Record format — ``<II`` (payload length, CRC-32 of payload) then payload:

====== ======================================================
type   payload
====== ======================================================
``B``  ``<q`` page id + 8 KiB before-image (last committed)
``A``  ``<q`` page id + 8 KiB after-image (redo)
``C``  ``<q`` page count + catalog ``describe()`` JSON
====== ======================================================

BEFORE records are not needed for redo (no-steal means the main file never
holds uncommitted data) but complete the physiological log: an auditor can
reconstruct both sides of every committed statement from the file alone.

Fault injection: set :attr:`WriteAheadLog.fault_injector` to a callable
``hook(point: str)``; it is invoked at every named crash point and may raise
:class:`~repro.errors.CrashPoint` to simulate dying there. Points:
``commit:before-append``, ``commit:mid-append``, ``commit:after-append``,
``checkpoint:before-flush``, ``checkpoint:before-sync``,
``checkpoint:before-truncate``.
"""

from __future__ import annotations

import os
import struct
import zlib

from repro.errors import WALError
from repro.minidb.metrics import REGISTRY
from repro.minidb.page import PAGE_SIZE

_HEADER = struct.Struct("<II")
_PAGE_ID = struct.Struct("<q")

REC_BEFORE = b"B"
REC_AFTER = b"A"
REC_COMMIT = b"C"

#: Hard upper bound on one record's payload (a COMMIT record carries the
#: catalog JSON, which is small; page records are PAGE_SIZE + 9 bytes).
_MAX_PAYLOAD = 64 << 20

#: A freshly allocated page as the device wrote it (``DiskManager.allocate``
#: zero-fills) — the before-image of every page born in the current statement.
_ZERO_PAGE = bytes(PAGE_SIZE)

#: Default log size that triggers an automatic checkpoint.
DEFAULT_CHECKPOINT_BYTES = 16 << 20


class WriteAheadLog:
    """Redo log + in-memory undo images for one file-backed database.

    Owned by :class:`~repro.minidb.engine.Database`; the buffer pool holds a
    reference (``pool.wal``) and reports every first-dirty through
    :meth:`on_page_dirty`. All mutation entry points run under the exclusive
    statement latch (single-writer rule), so the log needs no lock of its
    own; :meth:`is_pending` is called under the pool lock and only reads a
    dict, which is safe under the GIL.
    """

    def __init__(self, path: str, checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES):
        self.path = path
        self.checkpoint_bytes = checkpoint_bytes
        #: Test hook: called with the crash-point name at every fault site.
        self.fault_injector = None
        exists = os.path.exists(path)
        # Unbuffered: a write() that returned is in the OS page cache, so it
        # survives SIGKILL (the crash model here) without an fsync per record.
        self._file = open(path, "r+b" if exists else "w+b", buffering=0)
        #: page id -> before-image bytes for the statement in flight.
        self._pending: dict[int, bytes] = {}
        #: page id -> file offset of its latest *committed* after-image.
        self._committed_offsets: dict[int, int] = {}
        self._size = 0
        self._closed = False

    # -- pool integration ------------------------------------------------
    def is_pending(self, page_id: int) -> bool:
        """Whether *page_id* holds uncommitted changes (never evict/flush)."""
        return page_id in self._pending

    def pending_count(self) -> int:
        return len(self._pending)

    def on_page_dirty(self, page_id: int, pool, fresh: bool = False) -> None:
        """Record the first dirtying of *page_id* in the current statement.

        Called by the buffer pool (under its lock) from ``mark_dirty`` and
        ``new_page``. Captures the page's last *committed* image as the
        undo image: the frame content is already mutated by the time
        ``mark_dirty`` runs, so the image comes from the log's latest
        committed AFTER record, else the main file, else (``fresh=True``)
        the zero page the allocator wrote.
        """
        if self._closed or page_id in self._pending:
            return
        if fresh:
            self._pending[page_id] = _ZERO_PAGE
            return
        offset = self._committed_offsets.get(page_id)
        if offset is not None:
            self._file.seek(offset)
            image = self._file.read(PAGE_SIZE)
            if len(image) != PAGE_SIZE:
                raise WALError(f"short committed-image read for page {page_id}")
            self._pending[page_id] = image
        else:
            self._pending[page_id] = bytes(pool.disk.peek_page(page_id))

    # -- statement boundaries --------------------------------------------
    def commit(self, pool, catalog_payload: bytes) -> None:
        """Make the in-flight statement durable: append BEFORE + AFTER
        images for every dirtied page, then the COMMIT record.

        Must run under the exclusive statement latch. After this returns,
        a SIGKILL loses nothing; a crash anywhere inside leaves a torn
        (CRC-invalid or commit-less) tail that replay discards wholesale.
        """
        if not self._pending:
            return
        self._fault("commit:before-append")
        page_ids = sorted(self._pending)
        chunks: list[bytes] = []
        image_offsets: dict[int, int] = {}
        offset = self._size
        for page_id in page_ids:
            rec = self._pack_page(REC_BEFORE, page_id, self._pending[page_id])
            chunks.append(rec)
            offset += len(rec)
        for page_id in page_ids:
            image = pool.page_image(page_id)
            rec = self._pack_page(REC_AFTER, page_id, image)
            # The image sits after the record header and the page-id field.
            image_offsets[page_id] = offset + _HEADER.size + 1 + _PAGE_ID.size
            chunks.append(rec)
            offset += len(rec)
        self._file.seek(self._size)
        self._file.write(b"".join(chunks))
        self._fault("commit:mid-append")
        commit_payload = (
            REC_COMMIT + _PAGE_ID.pack(pool.disk.num_pages) + catalog_payload
        )
        self._file.write(
            _HEADER.pack(len(commit_payload), zlib.crc32(commit_payload))
            + commit_payload
        )
        self._size = offset + _HEADER.size + len(commit_payload)
        self._committed_offsets.update(image_offsets)
        self._pending.clear()
        REGISTRY.counter("wal.commits").inc()
        REGISTRY.counter("wal.pages_logged").inc(len(page_ids))
        self._fault("commit:after-append")

    def rollback(self, pool) -> None:
        """Restore every pending frame to its last committed image.

        A page that still has a committed-but-unflushed image in the log
        stays dirty (the main file is behind); everything else — including
        pages born in the failed statement, whose committed image is the
        allocator's zero page — comes back clean.
        """
        if not self._pending:
            return
        for page_id, before in self._pending.items():
            pool.restore_page(
                page_id, before, dirty=page_id in self._committed_offsets
            )
        self._pending.clear()
        # A commit that died mid-append left torn bytes past the durable
        # prefix; cut them so they can never shadow a later record boundary.
        self._file.seek(self._size)
        self._file.truncate(self._size)
        REGISTRY.counter("wal.rollbacks").inc()

    def should_checkpoint(self) -> bool:
        return self._size >= self.checkpoint_bytes

    def checkpoint(self, pool) -> None:
        """Flush the committed state into the main file and empty the log.

        The caller (``Database.checkpoint``) has already written the catalog
        META pages *and committed them*, so at entry nothing is pending and
        the log covers every dirty frame. Order matters: flush frames, fsync
        the main file, only then truncate — a crash before the truncate
        replays images that are already in the main file (idempotent), a
        crash after it finds an empty log over a complete file.
        """
        if self._pending:
            raise WALError("checkpoint with uncommitted pages pending")
        self._fault("checkpoint:before-flush")
        pool.flush()
        self._fault("checkpoint:before-sync")
        pool.disk.sync()
        self._fault("checkpoint:before-truncate")
        self._file.seek(0)
        self._file.truncate(0)
        os.fsync(self._file.fileno())
        self._size = 0
        self._committed_offsets.clear()
        REGISTRY.counter("wal.checkpoints").inc()

    # -- recovery --------------------------------------------------------
    def replay(self, disk) -> bytes | None:
        """Apply every committed batch in the log to the main file.

        Returns the last COMMIT record's catalog JSON (authoritative over
        the META page, which may predate the tail), or ``None`` when the
        log holds no committed batch. Scanning stops at the first torn or
        CRC-invalid record and truncates the tail there, so a crash
        mid-append simply never happened. Replay is idempotent: images are
        whole-page, so re-applying them is a no-op on the bytes.
        """
        self._file.seek(0, os.SEEK_END)
        end = self._file.tell()
        self._file.seek(0)
        pos = 0
        batch: dict[int, bytes] = {}
        batch_offsets: dict[int, int] = {}
        committed: dict[int, bytes] = {}
        last_commit: tuple[int, bytes] | None = None
        while pos + _HEADER.size <= end:
            header = self._file.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break
            length, crc = _HEADER.unpack(header)
            if not 0 < length <= _MAX_PAYLOAD or pos + _HEADER.size + length > end:
                break
            payload = self._file.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                break
            kind = payload[:1]
            if kind == REC_AFTER:
                (page_id,) = _PAGE_ID.unpack_from(payload, 1)
                batch[page_id] = payload[1 + _PAGE_ID.size :]
                batch_offsets[page_id] = pos + _HEADER.size + 1 + _PAGE_ID.size
            elif kind == REC_COMMIT:
                (num_pages,) = _PAGE_ID.unpack_from(payload, 1)
                committed.update(batch)
                self._committed_offsets.update(batch_offsets)
                batch.clear()
                batch_offsets.clear()
                last_commit = (num_pages, payload[1 + _PAGE_ID.size :])
            elif kind != REC_BEFORE:
                break  # unknown type: treat as torn tail
            pos += _HEADER.size + length
        # Discard the torn tail (and any commit-less batch) so new records
        # append after the last durable commit.
        if pos < end:
            self._file.seek(pos)
            self._file.truncate(pos)
        self._size = pos
        if last_commit is None:
            return None
        num_pages, catalog_payload = last_commit
        disk.ensure_pages(num_pages)
        for page_id, image in sorted(committed.items()):
            disk.apply_image(page_id, image)
        disk.sync()
        REGISTRY.counter("wal.replays").inc()
        REGISTRY.counter("wal.replayed_pages").inc(len(committed))
        return catalog_payload

    # -- lifecycle -------------------------------------------------------
    def size_bytes(self) -> int:
        return self._size

    def close(self) -> None:
        """Clean shutdown (after a final checkpoint truncated the log)."""
        if not self._closed:
            self._closed = True
            self._file.close()

    def abandon(self) -> None:
        """Crash-simulation shutdown: drop the handle, keep the bytes."""
        if not self._closed:
            self._closed = True
            self._file.close()

    # ------------------------------------------------------------------
    def _fault(self, point: str) -> None:
        hook = self.fault_injector
        if hook is not None:
            hook(point)

    @staticmethod
    def _pack_page(kind: bytes, page_id: int, image: bytes) -> bytes:
        if len(image) != PAGE_SIZE:
            raise WALError(f"page image must be {PAGE_SIZE} bytes")
        payload = kind + _PAGE_ID.pack(page_id) + image
        return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
