"""Table catalog: schemas, heap files and primary-key indexes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CatalogError, SQLTypeError
from repro.minidb.btree import BTree
from repro.minidb.buffer import BufferPool
from repro.minidb.heap import HeapFile
from repro.minidb.values import Column, check_value, decode_record, encode_record


@dataclass
class TableSchema:
    """Logical description of a table."""

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in {self.name}: {names}")
        for pk_col in self.primary_key:
            if pk_col not in names:
                raise CatalogError(
                    f"primary key column {pk_col!r} not in table {self.name}"
                )

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def types(self) -> tuple[int, ...]:
        return tuple(c.type_tag for c in self.columns)

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise CatalogError(f"no column {name!r} in table {self.name}")

    @property
    def pk_indexes(self) -> tuple[int, ...]:
        return tuple(self.column_index(c) for c in self.primary_key)


class Table:
    """A stored table: heap file plus (optional) primary-key B+Tree."""

    def __init__(self, schema: TableSchema, pool: BufferPool):
        self.schema = schema
        self.pool = pool
        self.heap = HeapFile(pool)
        self.row_count = 0
        self.index: BTree | None = None
        if schema.primary_key:
            self.index = BTree(pool, key_len=len(schema.primary_key))

    @classmethod
    def attach(
        cls,
        schema: TableSchema,
        pool: BufferPool,
        heap_first_page: int,
        index_root_page: int | None,
        row_count: int,
    ) -> "Table":
        """Reattach a table persisted in an existing database file."""
        table = cls.__new__(cls)
        table.schema = schema
        table.pool = pool
        table.heap = HeapFile(pool, first_page=heap_first_page)
        table.row_count = row_count
        table.index = None
        if schema.primary_key:
            if index_root_page is None:
                raise CatalogError(
                    f"{schema.name}: missing index root for keyed table"
                )
            table.index = BTree(
                pool, key_len=len(schema.primary_key), root_page=index_root_page
            )
        return table

    # ------------------------------------------------------------------
    def insert(self, values: tuple | list) -> tuple[int, int]:
        """Validate, store and index one row; returns its rid."""
        schema = self.schema
        if len(values) != len(schema.columns):
            raise CatalogError(
                f"{schema.name}: expected {len(schema.columns)} values, "
                f"got {len(values)}"
            )
        row = tuple(
            check_value(col.type_tag, value)
            for col, value in zip(schema.columns, values)
        )
        if self.index is not None:
            key = self._pk_of(row)
            if self.index.search(key) is not None:
                raise CatalogError(
                    f"{schema.name}: duplicate primary key {key}"
                )
        rid = self.heap.insert(encode_record(schema.types, row))
        if self.index is not None:
            self.index.insert(self._pk_of(row), rid)
        self.row_count += 1
        return rid

    def lookup(self, key: tuple) -> tuple | None:
        """Primary-key point lookup. Returns the decoded row or ``None``."""
        if self.index is None:
            raise CatalogError(f"{self.schema.name} has no primary key index")
        rid = self.index.search(tuple(key))
        if rid is None:
            return None
        return decode_record(self.schema.types, self.heap.read(rid))

    def scan(self, readahead: int = 0):
        """Yield every row (decoded tuples) in heap order.

        ``readahead`` batches heap-chain page fetches into sequential
        device runs (see :meth:`HeapFile.scan`)."""
        types = self.schema.types
        for _, raw in self.heap.scan(readahead=readahead):
            yield decode_record(types, raw)

    def delete_row(self, rid: tuple[int, int], row: tuple) -> None:
        """Remove one row: heap tombstone plus index-entry removal."""
        self.heap.delete(rid)
        if self.index is not None:
            self.index.remove(self._pk_of(row))
        self.row_count -= 1

    def update_row(self, rid: tuple[int, int], old: tuple, new: tuple) -> None:
        """Replace one row (delete + reinsert; rids are not stable across
        updates, as in any tombstoning heap)."""
        self.delete_row(rid, old)
        self.insert(new)

    def vacuum(self) -> int:
        """Rewrite the heap without tombstones and rebuild the index.

        Returns the number of live rows. Old pages are abandoned (no
        free-space map); the table's footprint is what the fresh heap uses.
        """
        live = [decode_record(self.schema.types, raw) for _, raw in self.heap.scan()]
        self.heap = HeapFile(self.pool)
        if self.index is not None:
            self.index = BTree(self.pool, key_len=len(self.schema.primary_key))
        self.row_count = 0
        for row in live:
            rid = self.heap.insert(encode_record(self.schema.types, row))
            if self.index is not None:
                self.index.insert(self._pk_of(row), rid)
            self.row_count += 1
        return self.row_count

    def describe(self) -> dict:
        """Catalog metadata for persistence."""
        return {
            "name": self.schema.name,
            "columns": [[c.name, c.type_tag] for c in self.schema.columns],
            "primary_key": list(self.schema.primary_key),
            "heap_first_page": self.heap.first_page,
            "index_root_page": (
                self.index.root_page if self.index is not None else None
            ),
            "row_count": self.row_count,
        }

    def _pk_of(self, row: tuple) -> tuple:
        key = tuple(row[i] for i in self.schema.pk_indexes)
        for part in key:
            if not isinstance(part, int):
                raise SQLTypeError(
                    f"{self.schema.name}: primary key parts must be integers, "
                    f"got {part!r}"
                )
        return key


class Catalog:
    """Name -> Table registry for one database."""

    def __init__(self, pool: BufferPool):
        self.pool = pool
        self._tables: dict[str, Table] = {}
        #: Bumped on every schema change; cached statement analyses are
        #: keyed on it so they never outlive the catalog they were bound to.
        self.version = 0

    def create_table(self, schema: TableSchema, if_not_exists: bool = False) -> Table:
        key = schema.name.lower()
        if key in self._tables:
            if if_not_exists:
                return self._tables[key]
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema, self.pool)
        self._tables[key] = table
        self.version += 1
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"no table {name!r}")
        # Pages are not reclaimed (no vacuum); the table simply vanishes
        # from the catalog, like a dropped-but-unvacuumed relation.
        del self._tables[key]
        self.version += 1

    def get(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def has(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(t.schema.name for t in self._tables.values())

    # -- persistence -----------------------------------------------------
    def describe(self) -> list[dict]:
        return [
            self._tables[key].describe() for key in sorted(self._tables)
        ]

    def restore(self, descriptions: list[dict]) -> None:
        """Reattach tables from :meth:`describe` output."""
        for info in descriptions:
            schema = TableSchema(
                info["name"],
                [Column(name, tag) for name, tag in info["columns"]],
                tuple(info["primary_key"]),
            )
            table = Table.attach(
                schema,
                self.pool,
                heap_first_page=info["heap_first_page"],
                index_root_page=info["index_root_page"],
                row_count=info["row_count"],
            )
            self._tables[schema.name.lower()] = table
        self.version += 1
