"""Table catalog: schemas, heap files and primary-key indexes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CatalogError, SQLTypeError
from repro.minidb.btree import BTree
from repro.minidb.buffer import BufferPool
from repro.minidb.columnar import ColumnarHeapFile, decode_columnar, encode_columnar
from repro.minidb.heap import HeapFile
from repro.minidb.values import (
    T_BIGINT,
    T_BIGINT_ARRAY,
    T_BIGINT_ARRAY_PACKED,
    Column,
    check_value,
    decode_record,
    encode_record,
)

#: Valid values of ``TableSchema.storage``.
STORAGES = ("row", "columnar")


@dataclass
class TableSchema:
    """Logical description of a table."""

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...] = ()
    storage: str = "row"

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in {self.name}: {names}")
        for pk_col in self.primary_key:
            if pk_col not in names:
                raise CatalogError(
                    f"primary key column {pk_col!r} not in table {self.name}"
                )
        if self.storage not in STORAGES:
            raise CatalogError(
                f"unknown storage {self.storage!r} for table {self.name} "
                f"(expected one of {STORAGES})"
            )

    def zone_info(self) -> tuple[int, bool] | None:
        """``(column index, is_array)`` of the zone-map column, if any.

        Columnar pages keep min/max of one designated column per page. The
        convention mirrors the PTLDB schemas: a scalar BIGINT ``hub``
        column (the aux tables) or, failing that, a BIGINT-array ``hubs``
        column (the label tables, whose arrays are sorted by hub).
        """
        if self.storage != "columnar":
            return None
        for i, col in enumerate(self.columns):
            if col.name == "hub" and col.type_tag == T_BIGINT:
                return i, False
        for i, col in enumerate(self.columns):
            if col.name == "hubs" and col.type_tag in (
                T_BIGINT_ARRAY,
                T_BIGINT_ARRAY_PACKED,
            ):
                return i, True
        return None

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def types(self) -> tuple[int, ...]:
        return tuple(c.type_tag for c in self.columns)

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise CatalogError(f"no column {name!r} in table {self.name}")

    @property
    def pk_indexes(self) -> tuple[int, ...]:
        return tuple(self.column_index(c) for c in self.primary_key)


class Table:
    """A stored table: heap file plus (optional) primary-key B+Tree."""

    def __init__(self, schema: TableSchema, pool: BufferPool):
        self.schema = schema
        self.pool = pool
        self._init_storage()
        self.heap = self._new_heap()
        self.row_count = 0
        #: Total encoded record bytes currently live (inline or overflow);
        #: the numerator of the storage-footprint benchmarks.
        self.data_bytes = 0
        self.index: BTree | None = None
        if schema.primary_key:
            self.index = BTree(pool, key_len=len(schema.primary_key))

    @classmethod
    def attach(
        cls,
        schema: TableSchema,
        pool: BufferPool,
        heap_first_page: int,
        index_root_page: int | None,
        row_count: int,
        data_bytes: int = 0,
    ) -> "Table":
        """Reattach a table persisted in an existing database file."""
        table = cls.__new__(cls)
        table.schema = schema
        table.pool = pool
        table._init_storage()
        table.heap = table._new_heap(first_page=heap_first_page)
        table.row_count = row_count
        table.data_bytes = data_bytes
        table.index = None
        if schema.primary_key:
            if index_root_page is None:
                raise CatalogError(
                    f"{schema.name}: missing index root for keyed table"
                )
            table.index = BTree(
                pool, key_len=len(schema.primary_key), root_page=index_root_page
            )
        return table

    # -- storage routing -------------------------------------------------
    def _init_storage(self) -> None:
        self._zone = self.schema.zone_info()
        self._sorted_cols = (
            frozenset({self._zone[0]})
            if self._zone is not None and self._zone[1]
            else frozenset()
        )

    def _new_heap(self, first_page: int | None = None) -> HeapFile:
        if self.schema.storage == "columnar":
            return ColumnarHeapFile(self.pool, first_page=first_page)
        return HeapFile(self.pool, first_page=first_page)

    def encode(self, row: tuple) -> bytes:
        """Serialize *row* with the table's storage codec."""
        if self.schema.storage == "columnar":
            return encode_columnar(self.schema.types, row, self._sorted_cols)
        return encode_record(self.schema.types, row)

    def decode(self, raw: bytes | memoryview) -> tuple:
        """Deserialize one stored record with the table's storage codec."""
        if self.schema.storage == "columnar":
            return decode_columnar(self.schema.types, raw)
        return decode_record(self.schema.types, raw)

    def decode_np(self, raw: bytes | memoryview) -> tuple:
        """Like :meth:`decode`, but columnar integer-array cells stay int64
        ndarrays (zero-copy into the UNNEST column kernels). Identical to
        :meth:`decode` for row-storage tables; only the batch executor calls
        this, and only on plan nodes the planner marked ``np_decode``."""
        if self.schema.storage == "columnar":
            return decode_columnar(self.schema.types, raw, np_arrays=True)
        return decode_record(self.schema.types, raw)

    def _zone_of(self, row: tuple) -> tuple[int, int] | None:
        """The ``(min, max)`` zone-column bounds contributed by *row*."""
        if self._zone is None:
            return None
        idx, is_array = self._zone
        value = row[idx]
        if value is None:
            return None
        if not is_array:
            return value, value
        present = [v for v in value if v is not None]
        if not present:
            return None
        # The array is enforced nondecreasing at encode time.
        return present[0], present[-1]

    def _store_row(self, row: tuple) -> tuple[int, int]:
        """Encode, store, index and account one validated row."""
        record = self.encode(row)
        if isinstance(self.heap, ColumnarHeapFile):
            rid = self.heap.insert(record, zone=self._zone_of(row))
        else:
            rid = self.heap.insert(record)
        if self.index is not None:
            self.index.insert(self._pk_of(row), rid)
        self.row_count += 1
        self.data_bytes += len(record)
        return rid

    # ------------------------------------------------------------------
    def insert(self, values: tuple | list) -> tuple[int, int]:
        """Validate, store and index one row; returns its rid."""
        schema = self.schema
        if len(values) != len(schema.columns):
            raise CatalogError(
                f"{schema.name}: expected {len(schema.columns)} values, "
                f"got {len(values)}"
            )
        row = tuple(
            check_value(col.type_tag, value)
            for col, value in zip(schema.columns, values)
        )
        if self.index is not None:
            key = self._pk_of(row)
            if self.index.search(key) is not None:
                raise CatalogError(
                    f"{schema.name}: duplicate primary key {key}"
                )
        return self._store_row(row)

    def lookup(self, key: tuple, np_arrays: bool = False) -> tuple | None:
        """Primary-key point lookup. Returns the decoded row or ``None``.

        ``np_arrays`` selects :meth:`decode_np` for the stored cell (the
        batch executor's ``np_decode`` plan flag); I/O is identical."""
        if self.index is None:
            raise CatalogError(f"{self.schema.name} has no primary key index")
        rid = self.index.search(tuple(key))
        if rid is None:
            return None
        raw = self.heap.read(rid)
        return self.decode_np(raw) if np_arrays else self.decode(raw)

    def scan(
        self,
        readahead: int = 0,
        zone_eq: int | None = None,
        np_arrays: bool = False,
        pages: tuple[int, int] | None = None,
    ):
        """Yield every row (decoded tuples) in heap order.

        ``readahead`` batches heap-chain page fetches into sequential
        device runs (see :meth:`HeapFile.scan`). ``zone_eq`` lets columnar
        heaps skip pages whose zone map excludes the value; row heaps
        accept and ignore it. ``np_arrays`` routes cells through
        :meth:`decode_np` (identical I/O, ndarray array cells).
        ``pages`` restricts the scan to one chain-index morsel (see
        :meth:`HeapFile.scan`)."""
        decode = self.decode_np if np_arrays else self.decode
        for _, raw in self.heap.scan(
            readahead=readahead, zone_eq=zone_eq, pages=pages
        ):
            yield decode(raw)

    def delete_row(self, rid: tuple[int, int], row: tuple) -> None:
        """Remove one row: heap tombstone plus index-entry removal."""
        self.heap.delete(rid)
        if self.index is not None:
            self.index.remove(self._pk_of(row))
        self.row_count -= 1
        self.data_bytes -= len(self.encode(row))

    def update_row(self, rid: tuple[int, int], old: tuple, new: tuple) -> None:
        """Replace one row (delete + reinsert; rids are not stable across
        updates, as in any tombstoning heap)."""
        self.delete_row(rid, old)
        self.insert(new)

    def vacuum(self) -> int:
        """Rewrite the heap without tombstones and rebuild the index.

        Returns the number of live rows. Old pages are abandoned (no
        free-space map); the table's footprint is what the fresh heap uses.
        """
        live = [self.decode(raw) for _, raw in self.heap.scan()]
        self.heap = self._new_heap()
        if self.index is not None:
            self.index = BTree(self.pool, key_len=len(self.schema.primary_key))
        self.row_count = 0
        self.data_bytes = 0
        for row in live:
            self._store_row(row)
        return self.row_count

    def describe(self) -> dict:
        """Catalog metadata for persistence."""
        return {
            "name": self.schema.name,
            "columns": [[c.name, c.type_tag] for c in self.schema.columns],
            "primary_key": list(self.schema.primary_key),
            "storage": self.schema.storage,
            "heap_first_page": self.heap.first_page,
            "index_root_page": (
                self.index.root_page if self.index is not None else None
            ),
            "row_count": self.row_count,
            "data_bytes": self.data_bytes,
        }

    def _pk_of(self, row: tuple) -> tuple:
        key = tuple(row[i] for i in self.schema.pk_indexes)
        for part in key:
            if not isinstance(part, int):
                raise SQLTypeError(
                    f"{self.schema.name}: primary key parts must be integers, "
                    f"got {part!r}"
                )
        return key


class Catalog:
    """Name -> Table registry for one database."""

    def __init__(self, pool: BufferPool):
        self.pool = pool
        self._tables: dict[str, Table] = {}
        #: Bumped on every schema change; cached statement analyses are
        #: keyed on it so they never outlive the catalog they were bound to.
        self.version = 0

    def create_table(self, schema: TableSchema, if_not_exists: bool = False) -> Table:
        key = schema.name.lower()
        if key in self._tables:
            if if_not_exists:
                return self._tables[key]
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema, self.pool)
        self._tables[key] = table
        self.version += 1
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"no table {name!r}")
        # Pages are not reclaimed (no vacuum); the table simply vanishes
        # from the catalog, like a dropped-but-unvacuumed relation.
        del self._tables[key]
        self.version += 1

    def get(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def has(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(t.schema.name for t in self._tables.values())

    # -- persistence -----------------------------------------------------
    def describe(self) -> list[dict]:
        return [
            self._tables[key].describe() for key in sorted(self._tables)
        ]

    def restore(self, descriptions: list[dict]) -> None:
        """Reattach tables from :meth:`describe` output."""
        for info in descriptions:
            schema = TableSchema(
                info["name"],
                [Column(name, tag) for name, tag in info["columns"]],
                tuple(info["primary_key"]),
                storage=info.get("storage", "row"),
            )
            table = Table.attach(
                schema,
                self.pool,
                heap_first_page=info["heap_first_page"],
                index_root_page=info["index_root_page"],
                row_count=info["row_count"],
                data_bytes=info.get("data_bytes", 0),
            )
            self._tables[schema.name.lower()] = table
        self.version += 1
