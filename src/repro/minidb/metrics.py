"""Query observability: per-operator traces and a metrics registry.

The paper's claims are *access-pattern* claims — "PTLDB needs to access
exactly two rows" per v2v query (Code 1), "at most ``|Lout|/|V|`` rows" per
optimized kNN probe (Code 3) — so coarse per-statement totals are not enough
to verify them. This module attributes buffer-pool and simulated-I/O
activity to the individual plan operator that caused it.

Three layers:

* :class:`TraceCollector` — a stack of open operator scopes. The executor
  wraps every operator body in ``with collector.operator(name, detail):``;
  on exit the scope records rows produced, wall time, and the buffer-pool /
  disk-stat deltas observed while it was open (*inclusive* of its children).
* :class:`OperatorStats` / :class:`QueryTrace` — the resulting tree.
  Exclusive ("self") figures are derived as inclusive minus the sum of the
  children, PostgreSQL ``EXPLAIN ANALYZE`` style.
* :class:`MetricsRegistry` — named counters and histograms the bench
  harness feeds so per-stage breakdowns survive across many queries.

See docs/OBSERVABILITY.md for the full API walk-through.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Operator tree
# ---------------------------------------------------------------------------
@dataclass
class OperatorStats:
    """One plan operator's lifecycle figures (inclusive of children)."""

    name: str
    detail: str = ""
    rows: int = 0
    loops: int = 1
    #: Batch-mode pulls: how many chunks this operator yielded. Zero under
    #: the row-at-a-time executor (which accounts per row, not per batch)
    #: and for operators fused into a parent kernel.
    pulls: int = 0
    time_ms: float = 0.0
    pool_hits: int = 0
    pool_misses: int = 0
    page_reads: int = 0
    io_ms: float = 0.0
    #: Number of worker threads that fed this operator. Zero for ordinary
    #: (serial) operators; a Gather node produced by the parallel batch
    #: executor sets it to the worker count and its children are the
    #: per-worker subtrees (see docs/OBSERVABILITY.md).
    workers: int = 0
    children: list["OperatorStats"] = field(default_factory=list)

    @property
    def label(self) -> str:
        return f"{self.name} {self.detail}".rstrip()

    # -- exclusive ("self") figures: inclusive minus the children ----------
    @property
    def self_time_ms(self) -> float:
        return self.time_ms - sum(c.time_ms for c in self.children)

    @property
    def self_pool_hits(self) -> int:
        return self.pool_hits - sum(c.pool_hits for c in self.children)

    @property
    def self_pool_misses(self) -> int:
        return self.pool_misses - sum(c.pool_misses for c in self.children)

    @property
    def self_page_reads(self) -> int:
        return self.page_reads - sum(c.page_reads for c in self.children)

    @property
    def self_io_ms(self) -> float:
        return self.io_ms - sum(c.io_ms for c in self.children)

    @property
    def rows_per_pull(self) -> float:
        """Mean batch size this operator produced (0 when not batched)."""
        return self.rows / self.pulls if self.pulls else 0.0

    def stats_suffix(self) -> str:
        """The ``EXPLAIN ANALYZE`` annotation appended to the plan line.

        The batch clause appears only for operators executed in batch mode,
        so row-mode traces render exactly as before.
        """
        suffix = (
            f"(actual rows={self.rows} loops={self.loops} "
            f"time={self.time_ms:.3f} ms) "
            f"(buffers: hits={self.pool_hits} misses={self.pool_misses} "
            f"reads={self.page_reads} io={self.io_ms:.3f} ms)"
        )
        if self.pulls:
            suffix += (
                f" (batch: pulls={self.pulls} "
                f"rows/pull={self.rows_per_pull:.1f})"
            )
        if self.workers:
            suffix += f" (parallel: {self.workers} workers)"
        return suffix

    def walk(self):
        """Yield this operator then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def render_plan(roots: list[OperatorStats], analyze: bool = False) -> list[str]:
    """Indented plan lines for ``EXPLAIN`` (labels only) or ``EXPLAIN
    ANALYZE`` (labels plus actual-row/buffer annotations)."""
    lines: list[str] = []

    def visit(node: OperatorStats, depth: int) -> None:
        prefix = "  " * depth
        if analyze:
            lines.append(f"{prefix}{node.label} {node.stats_suffix()}")
        else:
            lines.append(prefix + node.label)
        for child in node.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return lines


@dataclass
class QueryTrace:
    """Everything observed while executing one SQL statement."""

    sql: str
    roots: list[OperatorStats] = field(default_factory=list)
    total_ms: float = 0.0
    pool_hits: int = 0
    pool_misses: int = 0
    page_reads: int = 0
    io_ms: float = 0.0

    def operators(self):
        """Iterate every operator in the tree, depth-first."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> list[OperatorStats]:
        """All operators whose name matches exactly (e.g. ``"Index Scan"``)."""
        return [op for op in self.operators() if op.name == name]

    def stage_totals(self) -> dict[str, dict]:
        """Exclusive figures aggregated per operator name.

        This is the per-stage attribution the bench harness emits: every
        hit/miss/read lands in exactly one stage, so the stage sums equal
        the statement totals.
        """
        stages: dict[str, dict] = {}
        for op in self.operators():
            stage = stages.setdefault(
                op.name,
                {
                    "calls": 0,
                    "rows": 0,
                    "pulls": 0,
                    "pool_hits": 0,
                    "pool_misses": 0,
                    "page_reads": 0,
                    "io_ms": 0.0,
                    "time_ms": 0.0,
                },
            )
            stage["calls"] += 1
            stage["rows"] += op.rows
            stage["pulls"] += op.pulls
            stage["pool_hits"] += op.self_pool_hits
            stage["pool_misses"] += op.self_pool_misses
            stage["page_reads"] += op.self_page_reads
            stage["io_ms"] += op.self_io_ms
            stage["time_ms"] += op.self_time_ms
        return stages

    def format(self, analyze: bool = True) -> str:
        """Human-readable trace: a totals header plus the annotated tree."""
        header = (
            f"QueryTrace: total={self.total_ms:.3f} ms, "
            f"hits={self.pool_hits}, misses={self.pool_misses}, "
            f"reads={self.page_reads}, io={self.io_ms:.3f} ms"
        )
        return "\n".join(
            [header] + ["  " + line for line in render_plan(self.roots, analyze)]
        )

    def validate(self) -> list[str]:
        """Consistency problems, empty when the trace is sound.

        Checked: the tree is non-empty, no operator reports a negative
        counter (inclusive or exclusive), and per-operator counters never
        exceed the statement totals.
        """
        problems: list[str] = []
        if not self.roots:
            problems.append("trace has no operators")
        for op in self.operators():
            for attr in ("rows", "loops", "pool_hits", "pool_misses", "page_reads"):
                if getattr(op, attr) < 0:
                    problems.append(f"{op.label}: negative {attr}")
            for attr in ("time_ms", "io_ms"):
                if getattr(op, attr) < 0:
                    problems.append(f"{op.label}: negative {attr}")
            for attr in (
                "self_pool_hits",
                "self_pool_misses",
                "self_page_reads",
            ):
                if getattr(op, attr) < 0:
                    problems.append(f"{op.label}: negative {attr}")
            if op.self_io_ms < -1e-9:
                problems.append(f"{op.label}: negative self_io_ms")
        root_misses = sum(r.pool_misses for r in self.roots)
        if root_misses > self.pool_misses:
            problems.append(
                f"operator misses ({root_misses}) exceed statement total "
                f"({self.pool_misses})"
            )
        root_reads = sum(r.page_reads for r in self.roots)
        if root_reads > self.page_reads:
            problems.append(
                f"operator reads ({root_reads}) exceed statement total "
                f"({self.page_reads})"
            )
        return problems


# ---------------------------------------------------------------------------
# Collection
# ---------------------------------------------------------------------------
class _NullScope:
    """No-op stand-in so uninstrumented executors stay branch-free."""

    rows = 0
    loops = 1

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NULL_SCOPE = _NullScope()


def _stats_view(obj):
    """The stats object to delta against: per-thread when available."""
    if obj is None:
        return None
    thread_stats = getattr(obj, "thread_stats", None)
    if thread_stats is not None:
        return thread_stats()
    return obj.stats


class TraceCollector:
    """Builds the operator tree as the executor enters and exits scopes.

    Each scope snapshots the pool and disk counters on entry and records
    the deltas on exit, so a node's figures are inclusive of everything its
    children did while it was open.

    Counters are read from the *calling thread's* view when the pool/disk
    expose one (``thread_stats()``): a collector created on a session's
    thread only ever sees that session's activity, so traces stay exact
    while other sessions run concurrently. Single-threaded code observes
    identical numbers either way.
    """

    def __init__(self, pool=None):
        self.pool = pool
        self.disk = pool.disk if pool is not None else None
        self.pool_stats = _stats_view(pool)
        self.disk_stats = _stats_view(self.disk)
        self.roots: list[OperatorStats] = []
        self._stack: list[OperatorStats] = []

    def node(self, name: str, detail: str = "", parent=None):
        """Create a stats node with explicit parentage (no scope stack).

        The streaming executor attaches operators to the tree at plan-emit
        time and accounts per-pull deltas itself; *parent* of ``None`` makes
        the node a root.
        """
        node = OperatorStats(name=name, detail=detail)
        if parent is not None:
            parent.children.append(node)
        else:
            self.roots.append(node)
        return node

    @contextmanager
    def operator(self, name: str, detail: str = ""):
        node = OperatorStats(name=name, detail=detail)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        pool_before = (
            self.pool_stats.snapshot() if self.pool_stats is not None else None
        )
        disk_before = (
            self.disk_stats.snapshot() if self.disk_stats is not None else None
        )
        started = time.perf_counter()
        try:
            yield node
        finally:
            node.time_ms += (time.perf_counter() - started) * 1000.0
            if pool_before is not None:
                pool_delta = self.pool_stats.delta(pool_before)
                node.pool_hits += pool_delta.hits
                node.pool_misses += pool_delta.misses
            if disk_before is not None:
                disk_delta = self.disk_stats.delta(disk_before)
                node.page_reads += disk_delta.reads
                node.io_ms += disk_delta.simulated_read_ms
            self._stack.pop()


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
@dataclass
class Counter:
    """A monotonically increasing named value.

    ``inc`` is locked: ``self.value += amount`` is a read-modify-write, so
    two racing intra-query workers could otherwise both read the same old
    value and lose one increment.
    """

    name: str
    value: float = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self.value += amount


class Histogram:
    """A named distribution of observations (milliseconds, rows, ...).

    ``observe`` is locked for the same reason ``Counter.inc`` is: list
    appends are atomic under CPython's GIL today, but the summary
    properties iterate the list and a torn read during a concurrent resize
    is not something the metrics layer should gamble on.
    """

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": round(self.total, 3),
            "mean": round(self.mean, 3),
            "p50": round(self.percentile(50), 3),
            "p95": round(self.percentile(95), 3),
            "max": round(max(self.values), 3) if self.values else 0.0,
        }


class MetricsRegistry:
    """Named counters and histograms with a JSON-friendly snapshot."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            # Lock the insert so two racing threads agree on one instance
            # (each would otherwise increment its own orphaned Counter).
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram(name))
        return histogram

    def snapshot(self) -> dict:
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
        }

    def to_dict(self) -> dict:
        """Lossless, JSON-serializable dump of the registry.

        Unlike :meth:`snapshot` (which summarizes histograms into
        percentiles), this keeps every raw observation, so a worker process
        can ship its registry over a pipe and the router can :meth:`merge`
        it without losing percentile fidelity."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "histograms": {
                name: list(h.values)
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, dump: dict, prefix: str = "") -> None:
        """Fold a :meth:`to_dict` dump into this registry.

        *prefix* preserves attribution: the router merges each worker's
        dump under ``shard<i>.`` so per-shard counters stay distinguishable
        after aggregation. Counters add; histogram observations append."""
        for name, value in dump.get("counters", {}).items():
            self.counter(prefix + name).inc(value)
        for name, values in dump.get("histograms", {}).items():
            histogram = self.histogram(prefix + name)
            for value in values:
                histogram.observe(value)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()


#: Process-wide default registry; the bench harness feeds this unless given
#: its own instance.
REGISTRY = MetricsRegistry()
