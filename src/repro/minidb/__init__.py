"""minidb — the embedded relational engine standing in for PostgreSQL.

Public surface: :class:`Database` (execute SQL, inspect costs), the device
models (:func:`hdd_model`, :func:`ssd_model`, :func:`ram_model`) and the
schema primitives used to define tables programmatically.
"""

from repro.minidb.catalog import TableSchema
from repro.minidb.disk import DeviceModel, hdd_model, ram_model, ssd_model
from repro.minidb.engine import Database, QueryCost
from repro.minidb.metrics import (
    REGISTRY,
    Counter,
    Histogram,
    MetricsRegistry,
    OperatorStats,
    QueryTrace,
    TraceCollector,
)
from repro.minidb.sql.executor import Result
from repro.minidb.values import Column

__all__ = [
    "Column",
    "Counter",
    "Database",
    "DeviceModel",
    "Histogram",
    "MetricsRegistry",
    "OperatorStats",
    "QueryCost",
    "QueryTrace",
    "REGISTRY",
    "Result",
    "TableSchema",
    "TraceCollector",
    "hdd_model",
    "ram_model",
    "ssd_model",
]
