"""Sharded multi-process serving tier (docs/ARCHITECTURE.md, "Serving tier").

One GIL-bound Python process caps the paper's "scalable queries" story at
thread-level concurrency (PR 4's saturation curve). This package serves the
label store from N worker *processes*, each owning a vertex-range shard of
the ``lin`` + aux tables (``lout`` is replicated — it is the smaller, always
-joined side), behind a router that:

* routes v2v queries to the single shard owning the goal vertex,
* scatter/gathers kNN / one-to-many across every shard and merges exactly
  (targets are disjoint across shards, so a k-way merge of per-shard top-k
  lists is the global top-k),
* caches results keyed on (query family, params, catalog epoch) with
  plan-cache-style invalidation,
* applies admission control: a bounded number of in-flight requests per
  worker, over which requests fail fast with
  :class:`~repro.errors.BackpressureError`.

Durability comes from the minidb WAL (:mod:`repro.minidb.wal`): a SIGKILLed
worker restarts in place, replaying its shard file's log tail instead of
re-ingesting labels.
"""

from repro.serving.cache import ResultCache
from repro.serving.router import Router, WorkerHandle
from repro.serving.shards import (
    ShardManifest,
    build_shards,
    load_manifest,
    partition_labels,
    shard_of,
)

__all__ = [
    "ResultCache",
    "Router",
    "WorkerHandle",
    "ShardManifest",
    "build_shards",
    "load_manifest",
    "partition_labels",
    "shard_of",
]
