"""Parametrized result cache for the serving router.

Same invalidation discipline as the engine's plan cache: every entry
remembers the catalog *epoch* it was computed under; the router bumps the
epoch on any write (DML/DDL shipped to a worker), and a probe that finds a
stale-epoch entry drops it, counts an invalidation and recomputes. LRU
bounded, so a hot query mix stays resident while one-off parameters churn
through.

Counters follow the plan-cache naming convention in the shared registry:
``result_cache.hits`` / ``.misses`` / ``.evictions`` / ``.invalidations``
(docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.minidb.metrics import REGISTRY


class ResultCache:
    """LRU cache keyed on (query family, params, catalog epoch)."""

    _MISS = object()

    def __init__(self, capacity: int = 1024, registry=None):
        self.capacity = max(1, int(capacity))
        self.registry = registry if registry is not None else REGISTRY
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._entries: OrderedDict[tuple, tuple[int, object]] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, family: str, params: tuple, epoch: int):
        """The cached value, or :attr:`ResultCache.MISS` when absent/stale."""
        key = (family, params)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry_epoch, value = entry
                if entry_epoch == epoch:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self.registry.counter("result_cache.hits").inc()
                    return value
                # Computed under an older catalog: a write may have changed
                # the answer, so the entry is dead (plan-cache rule).
                del self._entries[key]
                self.invalidations += 1
                self.registry.counter("result_cache.invalidations").inc()
            self.misses += 1
            self.registry.counter("result_cache.misses").inc()
            return self._MISS

    def put(self, family: str, params: tuple, epoch: int, value) -> None:
        key = (family, params)
        with self._lock:
            self._entries[key] = (epoch, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self.registry.counter("result_cache.evictions").inc()

    @classmethod
    def miss_sentinel(cls):
        return cls._MISS

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
