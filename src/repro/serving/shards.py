"""Vertex-range shard partitioner and shard-file builder.

Partition rule: contiguous vertex ranges over ``lin`` (and the aux tables,
whose targets are filtered into their owning range). ``lout`` is replicated
into every shard — every query family joins ``lout`` of the *query* vertex,
which can be anything, while ``lin``/aux rows are only ever probed for
vertices (targets) the shard owns:

* v2v(s, g) needs ``lout[s]`` + ``lin[g]`` -> route to ``shard_of(g)``.
* kNN/OTM(q) needs ``lout[q]`` + the tag's aux table -> scatter to every
  shard; target sets are split by the same ranges, so per-shard results are
  disjoint and the gather merge is exact.

``lout`` is the right side to replicate: per the paper's unified join both
sides are the same size per vertex, but replication cost is paid once at
build time while mis-routing would be paid per query.

A build writes one minidb file per shard plus ``manifest.json`` describing
the partition — everything a worker needs to reopen its shard *without the
labels object*: stop count, time range, storage codec, and each shard's
target-set parameters for :meth:`PTLDB.attach_target_set`.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro.errors import ServingError
from repro.labeling.labels import TTLLabels
from repro.minidb.engine import Database
from repro.ptldb.framework import PTLDB
from repro.ptldb.schema import label_time_range

MANIFEST_NAME = "manifest.json"


def shard_of(v: int, num_stops: int, num_shards: int) -> int:
    """The shard owning vertex *v* under contiguous range partitioning.

    Exact inverse of :func:`shard_bounds`: shard ``i`` owns ``[i*N//S,
    (i+1)*N//S)``, and for integers ``i*N//S <= v < (i+1)*N//S`` iff
    ``i == (v*S + S - 1) // N`` — the naive ``v*S // N`` disagrees with the
    bounds whenever ``N % S != 0`` and would route queries to a shard that
    loaded the vertex's ``lin`` row as empty."""
    if not 0 <= v < num_stops:
        raise ServingError(f"vertex {v} out of range [0, {num_stops})")
    return (v * num_shards + num_shards - 1) // num_stops


def shard_bounds(num_stops: int, num_shards: int) -> list[tuple[int, int]]:
    """Per-shard ``[lo, hi)`` vertex ranges; shard i owns ``bounds[i]``."""
    if num_shards < 1:
        raise ServingError("need at least one shard")
    return [
        (i * num_stops // num_shards, (i + 1) * num_stops // num_shards)
        for i in range(num_shards)
    ]


def partition_labels(labels: TTLLabels, lo: int, hi: int) -> TTLLabels:
    """The shard-local labeling for vertex range ``[lo, hi)``.

    ``lout`` is shared by reference (replicated into every shard's file);
    ``lin`` keeps only the owned vertices' tuple lists — out-of-range rows
    load as empty arrays, which no routed query ever probes."""
    shard = TTLLabels(labels.num_stops, labels.order)
    shard.lout = labels.lout
    shard.lin = [
        labels.lin[v] if lo <= v < hi else []
        for v in range(labels.num_stops)
    ]
    shard._has_dummies = labels._has_dummies
    return shard


@dataclass
class ShardManifest:
    """Everything the router and workers need to (re)open a shard set."""

    directory: str
    num_stops: int
    num_shards: int
    time_low: int
    time_high: int
    device: str = "ram"
    storage: str = "row"
    compressed: bool = False
    pool_pages: int = 4096
    #: One entry per shard: {"index", "path", "lo", "hi", "target_sets"},
    #: where each target set is {"tag", "kmax", "interval_s", "families",
    #: "targets"} filtered to the shard's range (absent when empty).
    shards: list[dict] = field(default_factory=list)

    @property
    def path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def shard_db_path(self, index: int) -> str:
        return os.path.join(self.directory, self.shards[index]["path"])

    def to_dict(self) -> dict:
        return {
            "num_stops": self.num_stops,
            "num_shards": self.num_shards,
            "time_low": self.time_low,
            "time_high": self.time_high,
            "device": self.device,
            "storage": self.storage,
            "compressed": self.compressed,
            "pool_pages": self.pool_pages,
            "shards": self.shards,
        }

    def save(self) -> str:
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)
        return self.path


def load_manifest(directory_or_path: str) -> ShardManifest:
    path = directory_or_path
    if os.path.isdir(path):
        path = os.path.join(path, MANIFEST_NAME)
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    return ShardManifest(directory=os.path.dirname(path) or ".", **data)


def build_shards(
    directory: str,
    labels: TTLLabels,
    num_shards: int,
    target_sets: list[dict] | None = None,
    device: str = "ram",
    storage: str = "row",
    compressed: bool = False,
    pool_pages: int = 4096,
) -> ShardManifest:
    """Partition *labels* into ``num_shards`` minidb files under *directory*.

    Each *target_sets* entry is ``{"tag", "targets", "kmax", "interval_s",
    "families"}`` (kmax/interval/families optional); its targets are split
    by shard range and each shard builds aux tables over its own slice
    only. Shards are checkpointed and closed, so workers can open them in
    other processes immediately."""
    os.makedirs(directory, exist_ok=True)
    time_low, time_high = label_time_range(labels)
    manifest = ShardManifest(
        directory=directory,
        num_stops=labels.num_stops,
        num_shards=num_shards,
        time_low=time_low,
        time_high=time_high,
        device=device,
        storage=storage,
        compressed=compressed,
        pool_pages=pool_pages,
    )
    for index, (lo, hi) in enumerate(shard_bounds(labels.num_stops, num_shards)):
        db_name = f"shard_{index}.minidb"
        started = time.perf_counter()
        shard_labels = partition_labels(labels, lo, hi)
        db = Database(
            path=os.path.join(directory, db_name),
            device=device,
            pool_pages=pool_pages,
        )
        try:
            api = PTLDB(
                db,
                shard_labels,
                compressed=compressed,
                storage=storage,
                time_range=(time_low, time_high),
            )
            built_sets = []
            for spec in target_sets or ():
                owned = sorted(
                    t for t in spec["targets"] if lo <= int(t) < hi
                )
                entry = {
                    "tag": spec["tag"],
                    "kmax": int(spec.get("kmax", 16)),
                    "interval_s": int(spec.get("interval_s", 3600)),
                    "families": list(
                        spec.get(
                            "families",
                            ("knn_ea", "knn_ld", "otm_ea", "otm_ld"),
                        )
                    ),
                    "targets": owned,
                }
                if owned:
                    api.build_target_set(
                        entry["tag"],
                        owned,
                        kmax=entry["kmax"],
                        interval_s=entry["interval_s"],
                        families=tuple(entry["families"]),
                    )
                built_sets.append(entry)
            db.checkpoint()
        finally:
            db.close()
        manifest.shards.append(
            {
                "index": index,
                "path": db_name,
                "lo": lo,
                "hi": hi,
                "target_sets": built_sets,
                "build_seconds": round(time.perf_counter() - started, 3),
            }
        )
    manifest.save()
    return manifest
