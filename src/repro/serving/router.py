"""Scatter/gather router over shard worker processes.

The router owns ``num_shards x replicas`` worker processes (spawned as
``python -m repro.serving.worker``, framed stdio — see
:mod:`repro.serving.protocol`) and exposes the same query-method names as
:class:`~repro.ptldb.framework.PTLDB`, so any harness written against the
single-process API (the concurrency bench's ``run_query``) serves through
processes unchanged:

* **v2v** (``earliest_arrival`` / ``latest_departure`` /
  ``shortest_duration``) routes to the one shard owning the goal vertex.
* **kNN / one-to-many** scatters to every shard and merges: target sets are
  disjoint across shards, so OTM is a dict union and kNN re-sorts the
  per-shard top-k lists by the paper's ``(value, v)`` order and truncates —
  both exactly equal to the single-process answer.

Cross-cutting concerns:

* **Admission control** — at most ``max_queue_depth`` in-flight requests
  per worker; over the bound the call fails fast with
  :class:`~repro.errors.BackpressureError` instead of queueing (the client
  decides whether to retry; the router never builds an unbounded backlog).
* **Result cache** — read queries are memoized by (family, params, catalog
  epoch); any :meth:`execute` bumps the epoch, so cached answers can never
  survive a write (plan-cache invalidation discipline).
* **Recovery** — :meth:`kill_worker` (SIGKILL, for drills) and
  :meth:`respawn_worker`, which starts a fresh process on the same shard
  file; the worker's WAL replay brings it back without re-ingesting.

I/O model: requests to one worker are **pipelined**. A sender appends a
FIFO ticket and writes its frame under a short send lock; a per-worker
reader thread fulfills tickets in order (the worker answers strictly in
request order, so no correlation ids are needed). A scatter therefore
costs one frame write per shard and then waits — workers compute in
parallel and independent requests overlap freely, which is what lets the
process tier scale past the single-process thread ceiling.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import repro
import repro.errors as errors_mod
from repro.errors import BackpressureError, ServingError, WorkerDiedError
from repro.minidb.metrics import REGISTRY, MetricsRegistry
from repro.serving.cache import ResultCache
from repro.serving.protocol import recv_message, send_message
from repro.serving.shards import ShardManifest, shard_of


def _src_root() -> str:
    """Directory that makes ``import repro`` work in a child interpreter."""
    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class Ticket:
    """One in-flight request: fulfilled by the handle's reader thread."""

    __slots__ = ("event", "response", "error")

    def __init__(self):
        self.event = threading.Event()
        self.response: dict | None = None
        self.error: Exception | None = None

    def wait(self) -> dict:
        self.event.wait()
        if self.error is not None:
            raise self.error
        return self.response


class WorkerHandle:
    """One worker process: pipelined pipes, admission counter, liveness."""

    def __init__(self, manifest: ShardManifest, shard: int, replica: int,
                 max_queue_depth: int):
        self.manifest = manifest
        self.shard = shard
        self.replica = replica
        self.max_queue_depth = max_queue_depth
        #: Guards stdin writes and the ticket FIFO (kept as one atomic pair:
        #: the reader matches responses to tickets purely by order).
        self.send_lock = threading.Lock()
        #: Guards ``pending`` (the admission counter) and ``alive``.
        self.state_lock = threading.Lock()
        self.pending = 0
        self.alive = False
        self.ready: dict = {}
        self.proc: subprocess.Popen | None = None
        self._tickets: list[Ticket] = []
        self._reader: threading.Thread | None = None
        #: Set before a requested shutdown, so the EOF that follows is
        #: retirement, not a death (keeps ``serving.worker_deaths`` honest).
        self._retiring = False

    @property
    def name(self) -> str:
        return f"shard{self.shard}.r{self.replica}"

    # -- lifecycle -------------------------------------------------------
    def spawn(self) -> dict:
        """Start the process and block until its ready frame arrives."""
        env = dict(os.environ)
        root = _src_root()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = root + (os.pathsep + existing if existing else "")
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serving.worker",
                "--manifest",
                self.manifest.path,
                "--shard",
                str(self.shard),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
        )
        ready = recv_message(self.proc.stdout)
        if ready is None or not ready.get("ok"):
            raise WorkerDiedError(
                f"worker {self.name} failed to start (see its stderr)"
            )
        self.ready = ready
        with self.state_lock:
            self.alive = True
            self.pending = 0
            self._retiring = False
        self._tickets = []
        self._reader = threading.Thread(
            target=self._read_loop,
            args=(self.proc,),
            name=f"reader-{self.name}",
            daemon=True,
        )
        self._reader.start()
        return ready

    def shutdown(self) -> None:
        """Clean close: ask the worker to exit, retire the handle."""
        with self.state_lock:
            if not self.alive:
                return
            self._retiring = True
        try:
            self.request({"op": "shutdown"}).wait()
        except ServingError:
            pass
        if self._reader is not None:
            self._reader.join(timeout=10)

    def kill(self, sig: int = signal.SIGKILL) -> None:
        if self.proc is not None and self.proc.poll() is None:
            os.kill(self.proc.pid, sig)
            self.proc.wait()
        self._mark_dead("was killed")
        if self._reader is not None:
            self._reader.join(timeout=10)

    # -- admission -------------------------------------------------------
    def try_admit(self) -> None:
        with self.state_lock:
            if self.pending >= self.max_queue_depth:
                REGISTRY.counter("serving.backpressure_rejections").inc()
                raise BackpressureError(
                    self.shard, self.pending, self.max_queue_depth
                )
            self.pending += 1

    def release(self) -> None:
        with self.state_lock:
            if self.pending > 0:
                self.pending -= 1

    # -- pipelined framed I/O --------------------------------------------
    def request(self, message: dict) -> Ticket:
        """Enqueue one request; the returned ticket resolves to its response."""
        ticket = Ticket()
        with self.send_lock:
            if not self.alive:
                ticket.error = WorkerDiedError(f"worker {self.name} is dead")
                ticket.event.set()
                return ticket
            self._tickets.append(ticket)
            try:
                send_message(self.proc.stdin, message)
            except (BrokenPipeError, OSError) as exc:
                self._tickets.remove(ticket)
                self._mark_dead(f"pipe broke: {exc}")
                ticket.error = WorkerDiedError(
                    f"worker {self.name} pipe broke: {exc}"
                )
                ticket.event.set()
        return ticket

    def _read_loop(self, proc: subprocess.Popen) -> None:
        """Reader thread: fulfill tickets in FIFO order until EOF/error."""
        while True:
            try:
                response = recv_message(proc.stdout)
            except (OSError, ServingError) as exc:
                self._mark_dead(str(exc))
                return
            if response is None:
                if self.alive and not self._retiring:
                    self._mark_dead("closed its pipe")
                else:
                    with self.state_lock:
                        self.alive = False
                    self._drain_tickets("shut down")
                return
            with self.send_lock:
                ticket = self._tickets.pop(0) if self._tickets else None
            if ticket is None:
                self._mark_dead("sent an unsolicited frame")
                return
            ticket.response = response
            ticket.event.set()

    def _mark_dead(self, why: str) -> None:
        with self.state_lock:
            was_alive = self.alive
            self.alive = False
        if was_alive:
            REGISTRY.counter("serving.worker_deaths").inc()
        self._drain_tickets(why)

    def _drain_tickets(self, why: str) -> None:
        """Fail every outstanding ticket — no caller may block forever."""
        with self.send_lock:
            tickets, self._tickets = self._tickets, []
        for ticket in tickets:
            ticket.error = WorkerDiedError(f"worker {self.name} {why}")
            ticket.event.set()


class Router:
    """The process-tier front end (see module docstring)."""

    def __init__(
        self,
        manifest: ShardManifest,
        replicas: int = 1,
        max_queue_depth: int = 8,
        cache_capacity: int = 1024,
        cache: bool = True,
    ):
        if replicas < 1:
            raise ServingError("need at least one replica per shard")
        self.manifest = manifest
        self.num_shards = manifest.num_shards
        self.num_stops = manifest.num_stops
        self.replicas = replicas
        self.max_queue_depth = max_queue_depth
        self.cache = ResultCache(cache_capacity) if cache else None
        #: Bumped by every :meth:`execute`; keys the result cache.
        self.catalog_epoch = 0
        self._workers: list[list[WorkerHandle]] = [
            [
                WorkerHandle(manifest, shard, replica, max_queue_depth)
                for replica in range(replicas)
            ]
            for shard in range(self.num_shards)
        ]
        self._rr = 0
        self._started = False

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "Router":
        for row in self._workers:
            for handle in row:
                handle.spawn()
        self._started = True
        return self

    def close(self) -> None:
        for row in self._workers:
            for handle in row:
                if handle.proc is None:
                    continue
                handle.shutdown()
                try:
                    handle.proc.stdin.close()
                except OSError:
                    pass
                try:
                    handle.proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    handle.proc.kill()
                    handle.proc.wait()
                with handle.state_lock:
                    handle.alive = False
        self._started = False

    def __enter__(self) -> "Router":
        return self.start() if not self._started else self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- worker selection / plumbing -------------------------------------
    def worker(self, shard: int, replica: int = 0) -> WorkerHandle:
        return self._workers[shard][replica]

    def live_workers(self) -> list[WorkerHandle]:
        return [h for row in self._workers for h in row if h.alive]

    def _pick(self, shard: int) -> WorkerHandle:
        """Least-loaded live replica of *shard* (round-robin tiebreak)."""
        live = [h for h in self._workers[shard] if h.alive]
        if not live:
            raise WorkerDiedError(f"shard {shard} has no live workers")
        self._rr += 1
        start = self._rr % len(live)
        return min(
            (live[(start + i) % len(live)] for i in range(len(live))),
            key=lambda h: h.pending,
        )

    def _unwrap(self, response: dict, handle: WorkerHandle):
        if response.get("ok"):
            return response.get("value")
        name = response.get("error", "ServingError")
        message = response.get("message", "")
        exc_type = getattr(errors_mod, name, None)
        if isinstance(exc_type, type) and issubclass(exc_type, Exception):
            try:
                raise exc_type(f"[{handle.name}] {message}")
            except TypeError:
                pass  # constructor with a different arity; fall through
        raise ServingError(f"[{handle.name}] {name}: {message}")

    def _call_shard(self, shard: int, message: dict, admit: bool = True):
        handle = self._pick(shard)
        if admit:
            handle.try_admit()
        try:
            response = handle.request(message).wait()
        finally:
            if admit:
                handle.release()
        REGISTRY.counter("serving.requests").inc()
        return self._unwrap(response, handle)

    def _scatter(self, message: dict, admit: bool = True) -> list:
        """Send *message* to one replica of every shard, gather in order.

        All frames go out before the first wait, so the shards compute in
        parallel; concurrent scatters and single-shard calls interleave
        freely in each worker's pipeline. Every ticket is waited on even
        when one shard errors — the first failure is raised only after the
        whole gather settles, so no response is left to desynchronize a
        later request."""
        handles = [self._pick(shard) for shard in range(self.num_shards)]
        admitted: list[WorkerHandle] = []
        outcomes: list[object] = []
        try:
            if admit:
                for handle in handles:
                    handle.try_admit()
                    admitted.append(handle)
            tickets = [handle.request(message) for handle in handles]
            for ticket in tickets:
                try:
                    outcomes.append(ticket.wait())
                except ServingError as exc:
                    outcomes.append(exc)
        finally:
            for handle in admitted:
                handle.release()
        REGISTRY.counter("serving.requests").inc()
        values = []
        for index, outcome in enumerate(outcomes):
            if isinstance(outcome, BaseException):
                raise outcome
            values.append(self._unwrap(outcome, handles[index]))
        return values

    def _cached(self, family: str, params: tuple, compute):
        if self.cache is None:
            return compute()
        epoch = self.catalog_epoch
        value = self.cache.get(family, params, epoch)
        if value is not ResultCache.miss_sentinel():
            return value
        value = compute()
        self.cache.put(family, params, epoch, value)
        return value

    # -- the PTLDB query surface -----------------------------------------
    def earliest_arrival(self, source: int, goal: int, depart_at: int) -> int | None:
        return self._v2v("v2v_ea", [source, goal, depart_at])

    def latest_departure(self, source: int, goal: int, arrive_by: int) -> int | None:
        return self._v2v("v2v_ld", [source, goal, arrive_by])

    def shortest_duration(
        self, source: int, goal: int, depart_at: int, arrive_by: int
    ) -> int | None:
        return self._v2v("v2v_sd", [source, goal, depart_at, arrive_by])

    def _v2v(self, family: str, args: list[int]):
        shard = shard_of(args[1], self.num_stops, self.num_shards)
        return self._cached(
            family,
            tuple(args),
            lambda: self._call_shard(
                shard, {"op": "query", "family": family, "args": args}
            ),
        )

    def ea_knn(self, tag: str, source: int, depart_at: int, k: int) -> list[tuple[int, int]]:
        return self._knn("knn_ea", tag, source, depart_at, k, descending=False)

    def ld_knn(self, tag: str, source: int, arrive_by: int, k: int) -> list[tuple[int, int]]:
        return self._knn("knn_ld", tag, source, arrive_by, k, descending=True)

    def _knn(self, family: str, tag: str, source: int, when: int, k: int,
             descending: bool):
        def compute():
            shard_lists = self._scatter(
                {"op": "query", "family": family, "args": [tag, source, when, k]}
            )
            merged = [
                (int(v), int(value))
                for shard_list in shard_lists
                for v, value in shard_list
            ]
            # Same total order as the SQL (value, v) / (value DESC, v): the
            # per-shard lists cover disjoint targets, so the merged prefix
            # is exactly the single-process answer.
            if descending:
                merged.sort(key=lambda item: (-item[1], item[0]))
            else:
                merged.sort(key=lambda item: (item[1], item[0]))
            return merged[:k]

        return self._cached(family, (tag, source, when, k), compute)

    def ea_one_to_many(self, tag: str, source: int, depart_at: int) -> dict[int, int]:
        return self._otm("otm_ea", tag, source, depart_at)

    def ld_one_to_many(self, tag: str, source: int, arrive_by: int) -> dict[int, int]:
        return self._otm("otm_ld", tag, source, arrive_by)

    def _otm(self, family: str, tag: str, source: int, when: int):
        def compute():
            shard_maps = self._scatter(
                {"op": "query", "family": family, "args": [tag, source, when]}
            )
            merged: dict[int, int] = {}
            for shard_map in shard_maps:
                # Disjoint targets: plain union, no conflicts possible.
                merged.update({int(v): int(value) for v, value in shard_map.items()})
            return merged

        return self._cached(family, (tag, source, when), compute)

    # -- writes, metrics, drills -----------------------------------------
    def execute(self, sql: str, params: tuple = (), shard: int | None = None):
        """Ship a SQL statement to one shard (or all), bumping the catalog
        epoch so every cached result computed before it is invalidated."""
        self.catalog_epoch += 1
        message = {"op": "sql", "sql": sql, "params": list(params)}
        if shard is None:
            return self._scatter(message)
        return self._call_shard(shard, message)

    def checkpoint_all(self) -> list:
        return self._scatter({"op": "checkpoint"}, admit=False)

    def ping_all(self) -> list:
        return self._scatter({"op": "ping"}, admit=False)

    def gather_metrics(self) -> MetricsRegistry:
        """Merge every live worker's registry (per-shard prefixes) with the
        router's own (``router.`` prefix) into a fresh registry."""
        merged = MetricsRegistry()
        for handle in self.live_workers():
            response = handle.request({"op": "metrics"}).wait()
            merged.merge(
                self._unwrap(response, handle), prefix=handle.name + "."
            )
        merged.merge(REGISTRY.to_dict(), prefix="router.")
        return merged

    def cache_stats(self) -> dict | None:
        return self.cache.stats() if self.cache is not None else None

    def kill_worker(self, shard: int, replica: int = 0) -> None:
        """SIGKILL a worker mid-flight (the recovery drill's hammer)."""
        self._workers[shard][replica].kill()

    def respawn_worker(self, shard: int, replica: int = 0) -> dict:
        """Start a fresh process over the same shard file; returns timing.

        ``reattach_seconds`` is the full spawn-to-ready wall time as the
        router saw it; ``open_seconds`` is the worker's own measure of
        ``Database.open`` (WAL replay) + ``PTLDB.attach`` — the part that
        replaces re-ingestion."""
        handle = self._workers[shard][replica]
        started = time.perf_counter()
        ready = handle.spawn()
        REGISTRY.counter("serving.respawns").inc()
        return {
            "reattach_seconds": time.perf_counter() - started,
            "open_seconds": ready.get("open_seconds", 0.0),
        }
