"""Length-prefixed JSON framing for the router <-> worker pipes.

One frame = 4-byte little-endian payload length + UTF-8 JSON. Requests and
responses are dicts; the worker answers every request with exactly one
response frame, in order, so the stream needs no correlation ids. JSON over
binary framing keeps the protocol debuggable (``strace``/hexdump readable)
and spawn-safe — workers are separate interpreters started with
``python -m repro.serving.worker``, not forked children.

Request ops (see :mod:`repro.serving.worker`):

``query``     run one query-API family (``family``, ``args``)
``sql``       run one SQL statement (``sql``, ``params``)
``metrics``   ship the worker's metrics registry (``to_dict`` dump)
``checkpoint``  force a WAL checkpoint on the shard
``ping``      liveness probe
``shutdown``  clean close (checkpoint + release files), then exit

Responses: ``{"ok": true, "value": ...}`` or ``{"ok": false, "error":
"<ExceptionType>", "message": "..."}``.
"""

from __future__ import annotations

import json
import struct

from repro.errors import ProtocolError

_LEN = struct.Struct("<I")

#: Refuse frames above this size — a corrupt length prefix must not make the
#: reader try to allocate gigabytes.
MAX_FRAME = 64 << 20


def send_message(stream, message: dict) -> None:
    """Write one frame and flush (the peer blocks until it arrives)."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame too large ({len(payload)} bytes)")
    stream.write(_LEN.pack(len(payload)) + payload)
    stream.flush()


def recv_message(stream) -> dict | None:
    """Read one frame; ``None`` on clean EOF (peer closed the pipe)."""
    header = _read_exact(stream, _LEN.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME}")
    payload = _read_exact(stream, length, allow_eof=False)
    try:
        message = json.loads(payload.decode("utf-8"))
    except ValueError as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"frame is not an object: {message!r}")
    return message


def _read_exact(stream, count: int, allow_eof: bool) -> bytes | None:
    parts = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ProtocolError(
                f"pipe closed mid-frame ({count - remaining}/{count} bytes)"
            )
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)
