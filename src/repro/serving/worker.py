"""Shard worker process: ``python -m repro.serving.worker``.

One worker owns one shard file read-mostly: it opens the minidb database
(``Database.open`` replays any WAL tail a previous incarnation left behind),
attaches the PTLDB query API *without re-ingesting labels*, and serves
length-prefixed JSON requests on stdin/stdout until EOF or a ``shutdown``
op. Killing a worker with SIGKILL at any instant is safe by construction:
the next incarnation recovers every committed statement from the log.

The worker is single-threaded on purpose — process-level parallelism is the
whole point of the tier, and a one-request-at-a-time loop makes the
router's admission bound (queue depth per worker) exact.

stderr is left alone (diagnostics land in the parent's stderr); stdout
carries frames only, so nothing in the serve path may ``print``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.minidb.engine import Database
from repro.minidb.metrics import REGISTRY
from repro.ptldb.framework import PTLDB
from repro.serving.protocol import recv_message, send_message
from repro.serving.shards import load_manifest

#: family name -> (api method, needs target-set tag)
FAMILIES = {
    "v2v_ea": ("earliest_arrival", False),
    "v2v_ld": ("latest_departure", False),
    "v2v_sd": ("shortest_duration", False),
    "knn_ea": ("ea_knn", True),
    "knn_ld": ("ld_knn", True),
    "otm_ea": ("ea_one_to_many", True),
    "otm_ld": ("ld_one_to_many", True),
}

#: What a shard that owns none of a tag's targets contributes to a gather.
EMPTY_RESULTS = {
    "knn_ea": [],
    "knn_ld": [],
    "otm_ea": {},
    "otm_ld": {},
}


class ShardWorker:
    """The serve loop around one shard database."""

    def __init__(self, manifest_path: str, shard_index: int):
        started = time.perf_counter()
        self.manifest = load_manifest(manifest_path)
        self.shard = self.manifest.shards[shard_index]
        self.shard_index = shard_index
        self.db = Database.open(
            self.manifest.shard_db_path(shard_index),
            device=self.manifest.device,
            pool_pages=self.manifest.pool_pages,
        )
        self.api = PTLDB.attach(
            self.db,
            num_stops=self.manifest.num_stops,
            time_range=(self.manifest.time_low, self.manifest.time_high),
            compressed=self.manifest.compressed,
            storage=self.manifest.storage,
        )
        self.tags: set[str] = set()
        for spec in self.shard["target_sets"]:
            if spec["targets"]:
                self.api.attach_target_set(
                    spec["tag"],
                    kmax=spec["kmax"],
                    interval_s=spec["interval_s"],
                    families=tuple(spec["families"]),
                    targets=spec["targets"],
                )
                self.tags.add(spec["tag"])
        self.open_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    def handle(self, message: dict) -> dict:
        op = message.get("op")
        started = time.perf_counter()
        try:
            if op == "query":
                value = self._query(message["family"], message["args"])
            elif op == "sql":
                result = self.db.execute(
                    message["sql"], tuple(message.get("params", ()))
                )
                value = [list(row) for row in result.rows]
            elif op == "metrics":
                value = REGISTRY.to_dict()
            elif op == "checkpoint":
                self.db.checkpoint()
                value = {"wal_bytes": self.db.wal.size_bytes() if self.db.wal else 0}
            elif op == "ping":
                value = {"shard": self.shard_index}
            elif op == "shutdown":
                return {"ok": True, "value": None, "stop": True}
            else:
                raise ValueError(f"unknown op {op!r}")
        except Exception as exc:  # typed error crosses the pipe as data
            return {
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            }
        finally:
            REGISTRY.counter("serving.worker.requests").inc()
            REGISTRY.histogram("serving.worker.request_ms").observe(
                (time.perf_counter() - started) * 1000.0
            )
        return {"ok": True, "value": value}

    def _query(self, family: str, args: list):
        method_name, tagged = FAMILIES[family]
        if tagged and args[0] not in self.tags:
            # This shard owns none of the tag's targets: its contribution
            # to the scatter/gather is exactly nothing.
            return EMPTY_RESULTS[family]
        return getattr(self.api, method_name)(*args)

    def serve(self, in_stream, out_stream) -> None:
        send_message(
            out_stream,
            {
                "ok": True,
                "op": "ready",
                "shard": self.shard_index,
                "open_seconds": round(self.open_seconds, 6),
                "tags": sorted(self.tags),
            },
        )
        while True:
            message = recv_message(in_stream)
            if message is None:
                break  # router went away; exit quietly
            response = self.handle(message)
            send_message(out_stream, response)
            if response.get("stop"):
                break
        self.db.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.worker",
        description="Serve one label shard over stdin/stdout frames.",
    )
    parser.add_argument("--manifest", required=True, help="manifest.json path")
    parser.add_argument("--shard", type=int, required=True, help="shard index")
    args = parser.parse_args(argv)
    worker = ShardWorker(args.manifest, args.shard)
    worker.serve(sys.stdin.buffer, sys.stdout.buffer)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
