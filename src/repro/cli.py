"""Command-line interface.

Subcommands::

    python -m repro.cli datasets
    python -m repro.cli generate  --dataset Austin --gtfs ./feed
    python -m repro.cli preprocess --dataset Austin --labels austin.ttl
    python -m repro.cli preprocess --dataset Denver --scale table7 \\
        --workers 4 --cache-dir .label-cache --labels denver.ttl
    python -m repro.cli preprocess --gtfs ./feed --labels feed.ttl
    python -m repro.cli query ea  --labels austin.ttl --dataset Austin \\
        --source 5 --goal 17 --time 32400
    python -m repro.cli query knn --labels austin.ttl --dataset Austin \\
        --source 5 --time 32400 --k 3 --targets 2,4,18
    python -m repro.cli bench --experiment table7 --datasets Austin,Madrid
    python -m repro.cli serve --dataset Austin --shards 2 --queries 20
    python -m repro.cli lint --corpus
    python -m repro.cli lint --sql "SELECT v FROM lout WHERE v=1"
    python -m repro.cli lint --file queries.sql
    python -m repro.cli sanitize --strict
    python -m repro.cli sanitize --path src/repro/minidb --json

``lint`` (SQL statements) and ``sanitize`` (storage-layer concurrency
discipline, docs/SANITIZER.md) share one reporting convention: exit code 1
when any error-severity diagnostic fires (0 otherwise, 2 for usage
errors), and ``--json`` emits ``{"tool", "diagnostics": [{code, severity,
message, file, line, col}], "errors", "warnings", "ok"}`` for CI.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.report import format_table
from repro.errors import ReproError
from repro.labeling.io import load_labels, load_or_build, save_labels
from repro.labeling.ttl import build_labels
from repro.ptldb.framework import PTLDB
from repro.timetable.datasets import (
    DATASET_NAMES,
    SCALE_NAMES,
    load_dataset,
    paper_row,
)
from repro.timetable.gtfs import load_feed, write_feed


def _load_timetable(args):
    if getattr(args, "gtfs", None) and getattr(args, "dataset", None):
        raise ReproError("pass either --dataset or --gtfs, not both")
    if getattr(args, "gtfs", None):
        return load_feed(args.gtfs)
    if getattr(args, "dataset", None):
        return load_dataset(args.dataset, scale=getattr(args, "scale", "small"))
    raise ReproError("one of --dataset or --gtfs is required")


def cmd_datasets(_args) -> int:
    rows = []
    for name in DATASET_NAMES:
        paper = paper_row(name)
        tt = load_dataset(name)
        rows.append(
            [
                name,
                tt.num_stops,
                tt.num_connections,
                round(tt.average_degree, 1),
                paper.stops,
                paper.avg_degree,
            ]
        )
    print(
        format_table(
            ["dataset", "V", "E", "deg", "paper V", "paper deg"],
            rows,
            title="Table 7 datasets (scaled / paper)",
        )
    )
    return 0


def cmd_generate(args) -> int:
    timetable = _load_timetable(args)
    write_feed(timetable, args.gtfs_out, city=args.dataset or "synthetic")
    print(f"wrote GTFS feed ({timetable.stats()}) to {args.gtfs_out}")
    return 0


def cmd_preprocess(args) -> int:
    timetable = _load_timetable(args)
    if args.cache_dir:
        labels, report, hit = load_or_build(
            timetable,
            cache_dir=args.cache_dir,
            ordering=args.ordering,
            workers=args.workers,
        )
    else:
        labels, report = build_labels(
            timetable,
            ordering=args.ordering,
            add_dummies=True,
            workers=args.workers,
        )
        hit = False
    save_labels(labels, args.labels)
    source = "cache hit" if hit else f"built in {report.seconds:.2f}s"
    print(f"labels: {labels.stats()} -> {args.labels} ({source})")
    if not hit:
        print(
            f"  tuples: {report.kept_tuples} kept of "
            f"{report.candidate_tuples} candidates "
            f"({report.pruned_tuples} pruned)"
        )
    if hasattr(report, "pipeline_s") and not hit:
        # ParallelBuildReport: show where the wall time went.
        print(
            f"  parallel: workers={report.workers} window={report.window} "
            f"setup={report.setup_s:.2f}s pipeline={report.pipeline_s:.2f}s "
            f"finalize={report.finalize_s:.2f}s"
        )
        print(
            f"  cpu: scans={report.scan_cpu_s:.2f}s "
            f"coordinator={report.coordinator_cpu_s:.2f}s "
            f"cpu/wall={report.cpu_to_wall:.2f}"
        )
    return 0


def _build_ptldb(args) -> PTLDB:
    timetable = _load_timetable(args)
    labels = load_labels(args.labels) if args.labels else None
    return PTLDB.from_timetable(timetable, device=args.device, labels=labels)


def _print_trace(args, ptldb) -> None:
    if getattr(args, "trace", False) and ptldb.last_trace is not None:
        print(ptldb.last_trace.format(), file=sys.stderr)


def cmd_query(args) -> int:
    ptldb = _build_ptldb(args)
    kind = args.kind
    if kind in ("ea", "ld", "sd"):
        if args.goal is None:
            raise ReproError(f"{kind} queries need --goal")
        if kind == "ea":
            value = ptldb.earliest_arrival(args.source, args.goal, args.time)
        elif kind == "ld":
            value = ptldb.latest_departure(args.source, args.goal, args.time)
        else:
            if args.time2 is None:
                raise ReproError("sd queries need --time2")
            value = ptldb.shortest_duration(
                args.source, args.goal, args.time, args.time2
            )
        print("no journey" if value is None else value)
        _print_trace(args, ptldb)
        return 0
    # batched queries need a target set
    if not args.targets:
        raise ReproError(f"{kind} queries need --targets")
    targets = {int(t) for t in args.targets.split(",")}
    families = {
        "knn": ("knn_ea", "knn_ld"),
        "otm": ("otm_ea", "otm_ld"),
    }[kind]
    ptldb.build_target_set("cli", targets, kmax=max(args.k, 1), families=families)
    if kind == "knn":
        if args.ld:
            result = ptldb.ld_knn("cli", args.source, args.time, args.k)
        else:
            result = ptldb.ea_knn("cli", args.source, args.time, args.k)
        for stop, value in result:
            print(f"{stop}\t{value}")
    else:
        if args.ld:
            result = ptldb.ld_one_to_many("cli", args.source, args.time)
        else:
            result = ptldb.ea_one_to_many("cli", args.source, args.time)
        for stop in sorted(result):
            print(f"{stop}\t{result[stop]}")
    _print_trace(args, ptldb)
    return 0


def cmd_bench(args) -> int:
    from repro.bench import experiments as exp

    datasets = args.datasets.split(",") if args.datasets else None
    runners = {
        "table7": lambda: exp.experiment_table7(datasets),
        "v2v": lambda: exp.experiment_v2v(datasets, args.device, args.queries),
        "knn": lambda: exp.experiment_knn(
            datasets, args.device, 0.1, (1, 4, 16), args.queries, naive=True
        ),
        "otm": lambda: exp.experiment_otm(
            datasets, args.device, (0.01, 0.1), args.queries
        ),
        "storage": lambda: exp.experiment_storage(datasets),
        "concurrency": lambda: _run_concurrency(datasets, args),
        "vectorized": lambda: _run_vectorized(datasets, args),
        "serving": lambda: _run_serving(datasets, args),
        "preprocess": lambda: _run_preprocess(datasets, args),
    }
    if args.experiment not in runners:
        raise ReproError(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {sorted(runners)}"
        )
    rows = runners[args.experiment]()
    if rows:
        headers = list(rows[0].keys())
        print(
            format_table(
                headers, [[r[h] for h in headers] for r in rows],
                title=f"experiment: {args.experiment}",
            )
        )
    return 0


def _run_concurrency(datasets, args):
    from repro.bench.experiment_concurrency import experiment_concurrency

    return experiment_concurrency(
        datasets, device=args.device, queries_per_thread=args.queries
    )


def _run_vectorized(datasets, args):
    from repro.bench.experiment_vectorized import experiment_vectorized

    return experiment_vectorized(
        datasets, device=args.device, n_queries=args.queries
    )


def _run_serving(datasets, args):
    from repro.bench.experiment_serving import experiment_serving

    return experiment_serving(datasets, queries=args.queries)


def _run_preprocess(datasets, args):
    from repro.bench.experiment_preprocess import experiment_preprocess

    return experiment_preprocess(datasets)


def cmd_serve(args) -> int:
    """Build (or reuse) a shard set and serve a sample workload through the
    multi-process router, printing per-shard metrics on the way out."""
    import os
    import shutil
    import tempfile

    from repro.bench.experiment_concurrency import (
        TAG,
        build_workload,
        run_query,
    )
    from repro.bench.workload import random_targets
    from repro.labeling.ttl import build_labels
    from repro.serving import Router, build_shards, load_manifest

    timetable = _load_timetable(args)
    directory = args.dir or tempfile.mkdtemp(prefix="repro_serve_")
    manifest_path = os.path.join(directory, "manifest.json")
    if args.dir and os.path.exists(manifest_path):
        manifest = load_manifest(directory)
        print(f"reusing shard set in {directory}")
    else:
        labels, _ = build_labels(timetable, add_dummies=True)
        targets = sorted(random_targets(timetable, density=0.1, seed=7))
        manifest = build_shards(
            directory,
            labels,
            args.shards,
            target_sets=[
                {"tag": TAG, "targets": targets, "kmax": max(args.k, 1)}
            ],
        )
        print(
            f"built {args.shards} shard(s) in {directory} "
            f"({len(targets)} targets)"
        )
    try:
        with Router(
            manifest, replicas=args.replicas, max_queue_depth=args.depth
        ) as router:
            items = build_workload(timetable, args.queries, args.k, seed=17)
            for item in items:
                run_query(router, item)
            merged = router.gather_metrics().to_dict()
            counters = merged["counters"]
            rows = [
                [name, counters[name]]
                for name in sorted(counters)
                if "worker.requests" in name or "result_cache" in name
            ]
            print(
                format_table(
                    ["counter", "value"],
                    rows,
                    title=(
                        f"served {len(items)} queries over "
                        f"{manifest.num_shards} shard(s) x {args.replicas} "
                        f"replica(s)"
                    ),
                )
            )
    finally:
        if not args.dir:
            shutil.rmtree(directory, ignore_errors=True)
    return 0


def _lint_database():
    """In-memory database whose catalog mirrors a full PTLDB deployment:
    the label tables plus every auxiliary table family the corpus queries
    reference (built from the same DDL helpers the real builders use)."""
    from repro.minidb.engine import Database
    from repro.ptldb import aux
    from repro.ptldb.analytics import CONNECTIONS_DDL, TRIPS_DDL
    from repro.ptldb.schema import LIN_DDL, LOUT_DDL
    from repro.ptldb.sqltext import CORPUS_TAG

    db = Database()
    tag = CORPUS_TAG
    for ddl in (
        LOUT_DDL.format(array="BIGINT[]"),
        LIN_DDL.format(array="BIGINT[]"),
        CONNECTIONS_DDL,
        TRIPS_DDL,
        aux.targets_ddl(f"tgt_{tag}"),
        aux.hours_ddl(f"hours_{tag}"),
        aux.naive_ea_ddl(f"knn_ea_naive_{tag}"),
        aux.naive_ld_ddl(f"knn_ld_naive_{tag}"),
        aux.grouped_ea_ddl(f"knn_ea_{tag}"),
        aux.grouped_ld_ddl(f"knn_ld_{tag}"),
        aux.grouped_ea_ddl(f"otm_ea_{tag}"),
        aux.grouped_ld_ddl(f"otm_ld_{tag}"),
    ):
        db.execute(ddl)
    return db


def _split_statements(text: str) -> list[str]:
    """Split a SQL script on top-level semicolons (quote-aware)."""
    out, buf, in_str = [], [], False
    for ch in text:
        if ch == "'":
            in_str = not in_str
        if ch == ";" and not in_str:
            stmt = "".join(buf).strip()
            if stmt:
                out.append(stmt)
            buf = []
        else:
            buf.append(ch)
    tail = "".join(buf).strip()
    if tail:
        out.append(tail)
    return out


def _diag_record(diag, file: str, sql: str | None = None) -> dict:
    """One diagnostic in the shared ``lint``/``sanitize`` JSON shape."""
    from repro.minidb.sql.diagnostics import line_col

    line = col = 0
    if diag.span is not None and sql is not None:
        line, col = line_col(sql, diag.span.start)
    return {
        "code": diag.code,
        "severity": diag.severity,
        "message": diag.message,
        "file": file,
        "line": line,
        "col": col,
    }


def _emit_json(tool: str, records: list[dict], ok: bool) -> None:
    import json

    print(
        json.dumps(
            {
                "tool": tool,
                "diagnostics": records,
                "errors": sum(1 for r in records if r["severity"] == "error"),
                "warnings": sum(
                    1 for r in records if r["severity"] == "warning"
                ),
                "ok": ok,
            },
            indent=2,
        )
    )


def cmd_lint(args) -> int:
    from repro.errors import SQLError
    from repro.minidb.sql import ast
    from repro.minidb.sql.analyzer import analyze, check_paper_bounds
    from repro.minidb.sql.parser import parse
    from repro.ptldb.sqltext import corpus

    db = _lint_database()
    if args.corpus:
        cases = [(q.name, q.sql, q.family) for q in corpus()]
    elif args.sql:
        cases = [
            (f"stmt{i + 1}", sql, None)
            for i, sql in enumerate(_split_statements(args.sql))
        ]
    elif args.file:
        with open(args.file, encoding="utf-8") as handle:
            text = handle.read()
        cases = [
            (f"{args.file}:{i + 1}", sql, None)
            for i, sql in enumerate(_split_statements(text))
        ]
    else:
        raise ReproError("lint needs one of --corpus, --sql or --file")

    as_json = getattr(args, "json", False)
    records: list[dict] = []
    failures = 0
    for name, sql, family in cases:
        try:
            stmt = parse(sql)
        except SQLError as exc:
            if not as_json:
                print(f"{name}: SYNTAX {exc}")
            records.append(
                {
                    "code": "SYN001",
                    "severity": "error",
                    "message": str(exc),
                    "file": name,
                    "line": 0,
                    "col": 0,
                }
            )
            failures += 1
            continue
        analysis = analyze(stmt, db.catalog, sql=sql)
        if family is not None:
            check_paper_bounds(analysis, family)
        for diag in analysis.diagnostics:
            record = _diag_record(diag, name, sql)
            # APL diagnostics are warnings for execution but failures for
            # lint: the whole point is proving the access bounds hold.
            if diag.code.startswith("APL"):
                record["severity"] = "error"
            records.append(record)
        bad = analysis.errors or any(
            d.code.startswith("APL") for d in analysis.diagnostics
        )
        if bad:
            failures += 1
            if not as_json:
                print(f"{name}: FAIL")
                print(analysis.render())
        elif not as_json:
            paths = ", ".join(p.describe() for p in analysis.access_paths)
            print(f"{name}: ok — {paths or 'no table access'}")
            for diag in analysis.warnings:
                print(diag.render(sql))
            if args.plan and analysis.plan is not None:
                from repro.minidb.sql.plan import explain_lines

                for line in explain_lines(analysis.plan):
                    print(f"    {line}")
        # Apply DDL so later statements in the same script see the table.
        if isinstance(stmt, (ast.CreateTable, ast.DropTable)) and analysis.ok:
            db.execute(sql, analyze=False)
    if as_json:
        _emit_json("lint", records, ok=failures == 0)
        return 1 if failures else 0
    if failures:
        print(f"lint: {failures} of {len(cases)} statement(s) failed")
        return 1
    print(f"lint: {len(cases)} statement(s) ok")
    return 0


def cmd_sanitize(args) -> int:
    """Run the static concurrency-discipline checks (docs/SANITIZER.md)."""
    from pathlib import Path

    import repro
    from repro.minidb.sanitize.static import check_tree

    root = Path(args.path) if args.path else Path(repro.__file__).parent
    if not root.exists():
        raise ReproError(f"sanitize: no such path {str(root)!r}")
    reports = check_tree(root)
    records = []
    errors = warnings = 0
    for report in reports:
        for diag in report.diagnostics:
            records.append(_diag_record(diag, report.path, report.source))
        errors += len(report.errors)
        warnings += len(report.warnings)
    # --strict promotes warnings to failures (the CI gate); the exit-code
    # convention otherwise matches lint: nonzero on any error diagnostic.
    failing = errors + (warnings if args.strict else 0)
    if args.json:
        _emit_json("sanitize", records, ok=failing == 0)
        return 1 if failing else 0
    for report in reports:
        if report.diagnostics:
            print(report.render())
    checked = len(reports)
    if failing:
        print(
            f"sanitize: {errors} error(s), {warnings} warning(s) "
            f"in {checked} file(s)"
        )
        return 1
    print(f"sanitize: {checked} file(s) clean ({warnings} warning(s))")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table 7 dataset profiles")

    p = sub.add_parser("generate", help="write a dataset as a GTFS feed")
    p.add_argument("--dataset", choices=DATASET_NAMES)
    p.add_argument("--gtfs", help="input GTFS dir (instead of --dataset)")
    p.add_argument("--gtfs-out", required=True)
    p.add_argument("--scale", default="small", choices=SCALE_NAMES)

    p = sub.add_parser("preprocess", help="run TTL preprocessing, save labels")
    p.add_argument("--dataset", choices=DATASET_NAMES)
    p.add_argument("--gtfs")
    p.add_argument("--labels", required=True, help="output label file")
    p.add_argument("--ordering", default="event_degree")
    p.add_argument("--scale", default="small", choices=SCALE_NAMES)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for the per-hub profile scans (1 = the "
        "sequential reference build; labels are identical either way)",
    )
    p.add_argument(
        "--cache-dir",
        help="label cache directory keyed by dataset digest; a repeat run "
        "over the same timetable reuses the cached labels",
    )

    p = sub.add_parser("query", help="answer a PTLDB query")
    p.add_argument("kind", choices=["ea", "ld", "sd", "knn", "otm"])
    p.add_argument("--dataset", choices=DATASET_NAMES)
    p.add_argument("--gtfs")
    p.add_argument("--labels", help="precomputed label file (else preprocess)")
    p.add_argument("--device", default="ram", choices=["ram", "hdd", "ssd"])
    p.add_argument("--source", type=int, required=True)
    p.add_argument("--goal", type=int)
    p.add_argument("--time", type=int, required=True)
    p.add_argument("--time2", type=int, help="window end for sd")
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--targets", help="comma-separated target stops")
    p.add_argument("--ld", action="store_true", help="LD variant for knn/otm")
    p.add_argument("--scale", default="small", choices=SCALE_NAMES)
    p.add_argument(
        "--trace",
        action="store_true",
        help="print the per-operator query trace (stderr) after the result",
    )

    p = sub.add_parser("bench", help="run one experiment, print its table")
    p.add_argument("--experiment", required=True)
    p.add_argument("--datasets")
    p.add_argument("--device", default="hdd", choices=["ram", "hdd", "ssd"])
    p.add_argument("--queries", type=int, default=50)

    p = sub.add_parser(
        "serve",
        help="serve queries through the sharded multi-process router",
    )
    p.add_argument("--dataset", choices=DATASET_NAMES)
    p.add_argument("--gtfs")
    p.add_argument("--scale", default="small", choices=SCALE_NAMES)
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--replicas", type=int, default=1)
    p.add_argument("--queries", type=int, default=20, help="sample workload size")
    p.add_argument("--k", type=int, default=2)
    p.add_argument(
        "--depth", type=int, default=8, help="per-worker admission bound"
    )
    p.add_argument(
        "--dir",
        help="shard directory (kept and reused across runs; default: temp)",
    )

    p = sub.add_parser(
        "lint",
        help="statically analyze SQL and check the paper's access bounds",
    )
    p.add_argument(
        "--corpus",
        action="store_true",
        help="lint the canned paper query corpus (all seven families)",
    )
    p.add_argument("--sql", help="ad-hoc SQL text (';'-separated)")
    p.add_argument("--file", help="path to a SQL script")
    p.add_argument(
        "--plan",
        action="store_true",
        help="print each clean statement's physical plan (planner output)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable diagnostic report",
    )

    p = sub.add_parser(
        "sanitize",
        help="statically check the storage layer's concurrency discipline",
    )
    p.add_argument(
        "--path",
        help="file or directory to check (default: the repro package)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (the CI gate)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable diagnostic report",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": cmd_datasets,
        "generate": cmd_generate,
        "preprocess": cmd_preprocess,
        "query": cmd_query,
        "bench": cmd_bench,
        "serve": cmd_serve,
        "lint": cmd_lint,
        "sanitize": cmd_sanitize,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
