"""Schedule-based public-transportation network model.

Following the paper (§2.2), a timetable is a multigraph: vertices are stops
and each arc is a tuple ``<u, v, td, ta, b>`` — trip *b* departs stop *u* at
timestamp *td* and arrives at stop *v* at *ta*. Timestamps are integer
seconds (seconds-after-midnight for the single service day the paper's
datasets record).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TimetableError


@dataclass(frozen=True, order=True)
class Connection:
    """One elementary arc of the timetable multigraph.

    Ordering is by ``(dep, arr, u, v, trip)`` which is the canonical scan
    order of the Connection Scan Algorithm.
    """

    dep: int
    arr: int
    u: int
    v: int
    trip: int

    def __post_init__(self) -> None:
        if self.arr < self.dep:
            raise TimetableError(
                f"connection arrives before it departs: {self}"
            )
        if self.u == self.v:
            raise TimetableError(f"self-loop connection: {self}")

    @property
    def duration(self) -> int:
        return self.arr - self.dep


@dataclass
class Timetable:
    """An immutable-after-validation timetable multigraph.

    Attributes:
        num_stops: |V|; stops are the integers ``0..num_stops-1``.
        connections: all arcs, sorted by ``(dep, arr)``.
        stop_names: optional human-readable stop names.
    """

    num_stops: int
    connections: list[Connection]
    stop_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_stops <= 0:
            raise TimetableError("timetable needs at least one stop")
        for c in self.connections:
            if not (0 <= c.u < self.num_stops and 0 <= c.v < self.num_stops):
                raise TimetableError(f"connection references unknown stop: {c}")
        if self.stop_names and len(self.stop_names) != self.num_stops:
            raise TimetableError("stop_names length must equal num_stops")
        self.connections = sorted(self.connections)
        self._validate_trips()

    def _validate_trips(self) -> None:
        """Within a trip, consecutive legs must chain in space and time."""
        by_trip: dict[int, list[Connection]] = {}
        for c in self.connections:
            by_trip.setdefault(c.trip, []).append(c)
        for trip, legs in by_trip.items():
            legs.sort(key=lambda c: c.dep)
            for prev, nxt in zip(legs, legs[1:]):
                if nxt.dep < prev.arr:
                    raise TimetableError(
                        f"trip {trip} departs leg {nxt} before arriving {prev}"
                    )
                if nxt.u != prev.v:
                    raise TimetableError(
                        f"trip {trip} teleports between {prev.v} and {nxt.u}"
                    )

    # ------------------------------------------------------------------
    @property
    def num_connections(self) -> int:
        return len(self.connections)

    @property
    def average_degree(self) -> float:
        """|E| / |V| — the paper's Table 7 "avg degree"."""
        return self.num_connections / self.num_stops

    @property
    def num_trips(self) -> int:
        return len({c.trip for c in self.connections})

    def time_range(self) -> tuple[int, int]:
        """(earliest departure, latest arrival) over the whole timetable."""
        if not self.connections:
            raise TimetableError("empty timetable has no time range")
        return (
            min(c.dep for c in self.connections),
            max(c.arr for c in self.connections),
        )

    def outgoing(self) -> list[list[Connection]]:
        """Per-stop outgoing connections, each list sorted by departure."""
        out: list[list[Connection]] = [[] for _ in range(self.num_stops)]
        for c in self.connections:
            out[c.u].append(c)
        return out

    def incoming(self) -> list[list[Connection]]:
        """Per-stop incoming connections, each list sorted by arrival."""
        inc: list[list[Connection]] = [[] for _ in range(self.num_stops)]
        for c in sorted(self.connections, key=lambda c: (c.arr, c.dep)):
            inc[c.v].append(c)
        return inc

    def reverse(self) -> "Timetable":
        """The time-reversed timetable.

        A journey u -> v departing td / arriving ta exists in G exactly when
        a journey v -> u departing -ta / arriving -td exists in reverse(G).
        Used to derive latest-departure searches from earliest-arrival ones.
        """
        reversed_connections = [
            Connection(dep=-c.arr, arr=-c.dep, u=c.v, v=c.u, trip=c.trip)
            for c in self.connections
        ]
        return Timetable(
            num_stops=self.num_stops,
            connections=reversed_connections,
            stop_names=list(self.stop_names),
        )

    def stats(self) -> dict:
        """Table 7-style statistics for this timetable."""
        low, high = self.time_range() if self.connections else (0, 0)
        return {
            "stops": self.num_stops,
            "connections": self.num_connections,
            "avg_degree": round(self.average_degree, 1),
            "trips": self.num_trips,
            "first_departure": low,
            "last_arrival": high,
        }
