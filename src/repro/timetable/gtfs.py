"""Minimal GTFS feed reader/writer.

The paper's datasets are GTFS feeds from the public registry ("each dataset
records the timetable of the public transportation network of a major city
or country on a weekday"). We cannot download those offline, so the
synthetic generator produces :class:`~repro.timetable.model.Timetable`
objects directly — but this module lets a user load a *real* feed into the
same model (and round-trips our synthetic cities through GTFS files, which
the tests exercise).

Supported files: ``stops.txt``, ``routes.txt``, ``trips.txt``,
``stop_times.txt``. Only the columns the timetable model needs are read;
service calendars are out of scope (feeds are treated as one service day,
exactly like the paper's preprocessed datasets).
"""

from __future__ import annotations

import csv
import os
from functools import lru_cache

from repro.errors import GTFSError
from repro.timetable.model import Connection, Timetable


@lru_cache(maxsize=65536)
def parse_gtfs_time(text: str) -> int:
    """``HH:MM:SS`` -> seconds after midnight. Hours may exceed 23.

    Memoized: a real-city feed repeats the same time strings across
    millions of ``stop_times`` rows (headway patterns), and a service day
    has at most ~10⁵ distinct timestamps — caching makes loading a
    Table-7-scale feed substantially cheaper. Parse failures raise and are
    therefore never cached.
    """
    parts = text.strip().split(":")
    if len(parts) != 3:
        raise GTFSError(f"bad GTFS time {text!r}")
    try:
        hours, minutes, seconds = (int(p) for p in parts)
    except ValueError:
        raise GTFSError(f"bad GTFS time {text!r}") from None
    if not (0 <= minutes < 60 and 0 <= seconds < 60 and hours >= 0):
        raise GTFSError(f"bad GTFS time {text!r}")
    return hours * 3600 + minutes * 60 + seconds


def format_gtfs_time(seconds: int) -> str:
    if seconds < 0:
        raise GTFSError("GTFS times cannot be negative")
    return f"{seconds // 3600:02d}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"


def load_feed(directory: str) -> Timetable:
    """Read a GTFS directory into a :class:`Timetable`."""
    stops_path = os.path.join(directory, "stops.txt")
    stop_times_path = os.path.join(directory, "stop_times.txt")
    for required in (stops_path, stop_times_path):
        if not os.path.exists(required):
            raise GTFSError(f"missing required GTFS file {required}")

    stop_ids: dict[str, int] = {}
    stop_names: list[str] = []
    with open(stops_path, newline="") as handle:
        for row in csv.DictReader(handle):
            stop_id = row.get("stop_id")
            if not stop_id:
                raise GTFSError("stops.txt row without stop_id")
            if stop_id in stop_ids:
                raise GTFSError(f"duplicate stop_id {stop_id!r}")
            stop_ids[stop_id] = len(stop_names)
            stop_names.append(row.get("stop_name", stop_id))
    if not stop_ids:
        raise GTFSError("stops.txt contains no stops")

    # stop_times -> per-trip ordered stop events -> connections
    events: dict[str, list[tuple[int, int, int, int]]] = {}
    with open(stop_times_path, newline="") as handle:
        for row in csv.DictReader(handle):
            trip_id = row.get("trip_id")
            stop_id = row.get("stop_id")
            if trip_id is None or stop_id is None:
                raise GTFSError("stop_times.txt row missing trip_id/stop_id")
            if stop_id not in stop_ids:
                raise GTFSError(f"stop_times references unknown stop {stop_id!r}")
            try:
                seq = int(row["stop_sequence"])
            except (KeyError, ValueError):
                raise GTFSError("stop_times row without integer stop_sequence") from None
            arrival = parse_gtfs_time(row.get("arrival_time") or row["departure_time"])
            departure = parse_gtfs_time(row.get("departure_time") or row["arrival_time"])
            events.setdefault(trip_id, []).append(
                (seq, stop_ids[stop_id], arrival, departure)
            )

    connections: list[Connection] = []
    trip_numbers: dict[str, int] = {}
    for trip_id, trip_events in events.items():
        trip_events.sort()
        trip_num = trip_numbers.setdefault(trip_id, len(trip_numbers))
        for (s1, stop1, _, dep1), (s2, stop2, arr2, _) in zip(
            trip_events, trip_events[1:]
        ):
            if s1 == s2:
                raise GTFSError(f"trip {trip_id!r} repeats stop_sequence {s1}")
            if stop1 == stop2:
                continue  # dwell rows at the same stop
            connections.append(
                Connection(dep=dep1, arr=arr2, u=stop1, v=stop2, trip=trip_num)
            )

    return Timetable(
        num_stops=len(stop_names), connections=connections, stop_names=stop_names
    )


def write_feed(timetable: Timetable, directory: str, city: str = "synthetic") -> None:
    """Write *timetable* out as a minimal GTFS feed directory."""
    os.makedirs(directory, exist_ok=True)
    names = timetable.stop_names or [
        f"stop_{i}" for i in range(timetable.num_stops)
    ]

    with open(os.path.join(directory, "stops.txt"), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["stop_id", "stop_name"])
        for i, name in enumerate(names):
            writer.writerow([f"S{i}", name])

    with open(os.path.join(directory, "routes.txt"), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["route_id", "route_short_name", "route_type"])
        writer.writerow(["R0", city, 3])

    trips = sorted({c.trip for c in timetable.connections})
    with open(os.path.join(directory, "trips.txt"), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["route_id", "service_id", "trip_id"])
        for trip in trips:
            writer.writerow(["R0", "WEEKDAY", f"T{trip}"])

    by_trip: dict[int, list[Connection]] = {}
    for c in timetable.connections:
        by_trip.setdefault(c.trip, []).append(c)
    with open(os.path.join(directory, "stop_times.txt"), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["trip_id", "arrival_time", "departure_time", "stop_id", "stop_sequence"]
        )
        for trip in trips:
            legs = sorted(by_trip[trip], key=lambda c: c.dep)
            seq = 1
            for i, leg in enumerate(legs):
                arrival = legs[i - 1].arr if i else leg.dep
                writer.writerow(
                    [
                        f"T{trip}",
                        format_gtfs_time(arrival),
                        format_gtfs_time(leg.dep),
                        f"S{leg.u}",
                        seq,
                    ]
                )
                seq += 1
            last = legs[-1]
            writer.writerow(
                [
                    f"T{trip}",
                    format_gtfs_time(last.arr),
                    format_gtfs_time(last.arr),
                    f"S{last.v}",
                    seq,
                ]
            )
