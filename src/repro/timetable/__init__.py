"""Timetable substrate: model, GTFS I/O, synthetic cities, paper datasets."""

from repro.timetable.datasets import (
    DATASET_NAMES,
    PAPER_TABLE7,
    SCALE_NAMES,
    TABLE7_SCALE_NAMES,
    dataset_config,
    load_dataset,
)
from repro.timetable.generator import (
    CityConfig,
    config_for_degree,
    generate_city,
    random_timetable,
)
from repro.timetable.model import Connection, Timetable

__all__ = [
    "Connection",
    "Timetable",
    "CityConfig",
    "config_for_degree",
    "generate_city",
    "random_timetable",
    "DATASET_NAMES",
    "PAPER_TABLE7",
    "SCALE_NAMES",
    "TABLE7_SCALE_NAMES",
    "dataset_config",
    "load_dataset",
]
