"""Synthetic city generator.

Produces timetables with the structure of real metropolitan GTFS feeds:

* a small set of *hub* stops (interchange stations) that every line passes
  through, so transfers make the network well connected;
* lines are stop sequences operated in both directions;
* each line runs trips all service day at a fixed headway (with optional
  jitter), with per-leg travel times that are constant across the day.

The generator is fully deterministic given a seed, so tests and benchmarks
are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import TimetableError
from repro.timetable.model import Connection, Timetable

DAY_START = 6 * 3600  # 06:00
DAY_END = 24 * 3600  # 24:00


@dataclass(frozen=True)
class CityConfig:
    """Parameters of one synthetic city."""

    name: str
    num_stops: int
    num_lines: int
    line_length: int  # stops per line (including hubs)
    headway_s: int  # time between consecutive trips of a line
    hub_count: int = 3
    min_leg_s: int = 60  # fastest single-leg travel time
    max_leg_s: int = 420
    span_start: int = DAY_START
    span_end: int = DAY_END
    headway_jitter_s: int = 0
    # Real feeds run denser service in the morning than late evening (the
    # paper leans on this: LD queries, sampled from the fourth quartile,
    # see fewer trips). Headway grows linearly to headway_s * this factor
    # by the end of the service span.
    evening_thinning: float = 1.75
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_stops < 2:
            raise TimetableError("need at least two stops")
        if self.line_length < 2:
            raise TimetableError("lines need at least two stops")
        if self.line_length > self.num_stops:
            raise TimetableError("line longer than the city")
        if self.headway_s <= 0:
            raise TimetableError("headway must be positive")
        if self.span_end <= self.span_start:
            raise TimetableError("empty service span")
        if not 1 <= self.hub_count <= self.num_stops:
            raise TimetableError("bad hub count")

    def expected_connections(self) -> int:
        """Rough |E| estimate (both directions, full-day service).

        Accounts for evening thinning: the effective headway averaged over
        the service span is ``headway_s * (1 + evening_thinning) / 2``, so
        fewer trips run than a naive ``span / headway_s`` would suggest.
        Used to size the ``table7``-scale dataset profiles, where hitting
        the paper's degree column matters.
        """
        effective_headway = self.headway_s * (1.0 + self.evening_thinning) / 2.0
        trips_per_direction = int(
            (self.span_end - self.span_start) / max(60.0, effective_headway)
        )
        return 2 * self.num_lines * trips_per_direction * (self.line_length - 1)


def config_for_degree(
    name: str,
    num_stops: int,
    target_degree: float,
    hub_count: int = 3,
    seed: int = 1,
    line_length: int | None = None,
) -> CityConfig:
    """Derive a :class:`CityConfig` hitting a target average degree |E|/|V|.

    Used by :mod:`repro.timetable.datasets` to mirror the degree column of
    the paper's Table 7 at reduced scale.
    """
    if line_length is None:
        line_length = max(4, min(14, num_stops // 6))
    # Enough lines that, together with the shared hubs, every stop is served.
    num_lines = max(2, (num_stops + line_length - 2) // max(1, line_length - 1))
    span = DAY_END - DAY_START
    target_connections = target_degree * num_stops
    trips_per_direction = target_connections / (2 * num_lines * (line_length - 1))
    # Evening thinning (default factor 1.75) stretches the effective headway
    # by its day-average of (1 + 1.75) / 2; compensate to hit the target.
    headway = max(120, int(span / max(1.0, trips_per_direction) / 1.375))
    return CityConfig(
        name=name,
        num_stops=num_stops,
        num_lines=num_lines,
        line_length=line_length,
        headway_s=headway,
        hub_count=hub_count,
        seed=seed,
    )


def generate_city(config: CityConfig) -> Timetable:
    """Build the timetable for *config*."""
    rng = random.Random(config.seed)
    hubs = list(range(config.hub_count))  # low ids are hubs, by convention
    non_hubs = list(range(config.hub_count, config.num_stops))
    rng.shuffle(non_hubs)

    # Deal non-hub stops to lines round-robin so that every stop is served,
    # then splice one hub into each line.
    per_line = config.line_length - 1  # one slot is reserved for the hub
    lines: list[list[int]] = []
    cursor = 0
    for line_index in range(config.num_lines):
        stops: list[int] = []
        for _ in range(per_line):
            if cursor >= len(non_hubs):
                cursor = 0
                rng.shuffle(non_hubs)
            if not non_hubs:
                break
            candidate = non_hubs[cursor]
            cursor += 1
            if candidate not in stops:
                stops.append(candidate)
        if len(stops) < 1:
            stops = [rng.randrange(config.num_stops)]
        hub = hubs[line_index % len(hubs)]
        stops.insert(rng.randrange(len(stops) + 1), hub)
        # Occasionally pass through a second hub to tighten connectivity.
        if len(hubs) > 1 and rng.random() < 0.5:
            other = hubs[(line_index + 1) % len(hubs)]
            if other not in stops:
                stops.insert(rng.randrange(len(stops) + 1), other)
        lines.append(stops)

    # Guarantee coverage: splice any stop no line visits into some line
    # (possible when num_lines * line_length < num_stops).
    served = set(hubs)
    for stops in lines:
        served.update(stops)
    for orphan in range(config.num_stops):
        if orphan not in served:
            line = lines[orphan % len(lines)]
            line.insert(rng.randrange(1, len(line) + 1), orphan)
            served.add(orphan)

    connections: list[Connection] = []
    trip_counter = 0
    for stops in lines:
        leg_times = [
            rng.randint(config.min_leg_s, config.max_leg_s)
            for _ in range(len(stops) - 1)
        ]
        for direction in (stops, list(reversed(stops))):
            legs = leg_times if direction is stops else list(reversed(leg_times))
            departure = config.span_start + rng.randrange(config.headway_s)
            while departure < config.span_end:
                when = departure
                for (u, v), leg in zip(zip(direction, direction[1:]), legs):
                    arrive = when + leg
                    connections.append(
                        Connection(dep=when, arr=arrive, u=u, v=v, trip=trip_counter)
                    )
                    when = arrive + rng.randint(0, 30)  # dwell
                trip_counter += 1
                jitter = (
                    rng.randint(-config.headway_jitter_s, config.headway_jitter_s)
                    if config.headway_jitter_s
                    else 0
                )
                progress = (departure - config.span_start) / (
                    config.span_end - config.span_start
                )
                local_headway = config.headway_s * (
                    1.0 + (config.evening_thinning - 1.0) * progress
                )
                departure += max(60, int(local_headway) + jitter)

    names = [
        f"{config.name} hub {i}" if i < config.hub_count else f"{config.name} stop {i}"
        for i in range(config.num_stops)
    ]
    return Timetable(
        num_stops=config.num_stops, connections=connections, stop_names=names
    )


def random_timetable(
    num_stops: int,
    num_connections: int,
    seed: int = 0,
    span_start: int = DAY_START,
    span_end: int = DAY_END,
) -> Timetable:
    """A fully random (trip-consistent) timetable for property-based tests.

    Every connection is its own single-leg trip, so any (dep, arr, u, v)
    combination is legal; this explores corners the structured city
    generator cannot reach.
    """
    rng = random.Random(seed)
    connections = []
    for trip in range(num_connections):
        u = rng.randrange(num_stops)
        v = rng.randrange(num_stops - 1)
        if v >= u:
            v += 1
        dep = rng.randrange(span_start, span_end)
        arr = dep + rng.randint(60, 1800)
        connections.append(Connection(dep=dep, arr=arr, u=u, v=v, trip=trip))
    return Timetable(num_stops=num_stops, connections=connections)
