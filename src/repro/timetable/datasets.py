"""The eleven evaluation datasets (paper Table 7), scaled for pure Python.

The paper benchmarks eleven GTFS feeds (Austin ... Toronto). Offline we
synthesize cities whose *relative* shape mirrors Table 7 — the ranking of
|V|, average degree, and (through degree) the per-vertex label count
|HL|/|V|, which is what drives every performance figure: Madrid (highest
degree, highest |HL|/|V|) must remain the hardest instance, Salt Lake City
the lightest, Sweden the largest |V|.

Three scales are provided:

* ``small`` (default) — ~1/100 of the paper's |V| and ~1/6 of its degree;
  TTL preprocessing for all 11 cities completes in minutes on a laptop.
* ``paper`` — ~1/20 of |V|, ~1/3 of degree; closer to the original ratios
  but slower to preprocess.
* ``table7`` — the paper's *actual* Table 7 row (|V| and degree taken
  verbatim), available for the cities in ``TABLE7_SCALE_NAMES``. These are
  full-size instances (~10⁴ stops, 10⁵–10⁶ connections) meant for the
  parallel preprocessing pipeline (``repro preprocess --workers N``,
  docs/PREPROCESSING.md) — not for casual test runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TimetableError
from repro.timetable.generator import CityConfig, config_for_degree, generate_city
from repro.timetable.model import Timetable


@dataclass(frozen=True)
class PaperDataset:
    """One row of the paper's Table 7 (original numbers, for reference)."""

    name: str
    stops: int  # |V| in the paper (thousands are written out)
    connections: int  # |E| in the paper
    avg_degree: int
    labels_per_vertex: int  # |HL|/|V|
    preprocessing_s: float  # TTL preprocessing time reported by the paper


# The original Table 7, used by EXPERIMENTS.md comparisons and the bench
# report headers.
PAPER_TABLE7: list[PaperDataset] = [
    PaperDataset("Austin", 2_000, 317_000, 119, 1_600, 11.3),
    PaperDataset("Berlin", 12_000, 2_081_000, 153, 1_734, 184.7),
    PaperDataset("Budapest", 5_000, 1_446_000, 252, 2_486, 54.4),
    PaperDataset("Denver", 10_000, 711_000, 75, 1_190, 27.3),
    PaperDataset("Houston", 10_000, 1_113_000, 113, 2_196, 72.6),
    PaperDataset("Los Angeles", 15_000, 1_928_000, 127, 2_572, 194.5),
    PaperDataset("Madrid", 4_000, 1_913_000, 413, 7_230, 338.5),
    PaperDataset("Roma", 9_000, 2_281_000, 258, 4_370, 353.6),
    PaperDataset("Salt Lake City", 6_000, 330_000, 53, 630, 4.5),
    PaperDataset("Sweden", 51_000, 4_072_000, 76, 775, 179.1),
    PaperDataset("Toronto", 10_000, 3_300_000, 305, 2_987, 262.1),
]

# name -> (stops_small, degree_small, stops_paper, degree_paper)
_SCALED = {
    "Austin": (30, 20, 100, 40),
    "Berlin": (110, 26, 480, 51),
    "Budapest": (55, 42, 200, 84),
    "Denver": (90, 13, 400, 25),
    "Houston": (90, 19, 400, 38),
    "Los Angeles": (130, 21, 600, 42),
    "Madrid": (50, 69, 160, 138),
    "Roma": (95, 43, 360, 86),
    "Salt Lake City": (60, 9, 240, 18),
    "Sweden": (380, 13, 2040, 25),
    "Toronto": (95, 51, 400, 102),
}

# Cities generated at the paper's verbatim Table 7 size (|V|, degree read
# straight off PAPER_TABLE7). Denver is the canonical ~10^4-stop instance;
# Madrid is the densest (1.65M connections from 4k stops).
TABLE7_SCALE_NAMES = ["Denver", "Madrid"]

DATASET_NAMES = [d.name for d in PAPER_TABLE7]

SCALE_NAMES = ["small", "paper", "table7"]


def dataset_config(name: str, scale: str = "small", seed: int | None = None) -> CityConfig:
    """The generator configuration for one named dataset."""
    if name not in _SCALED:
        raise TimetableError(
            f"unknown dataset {name!r}; choose from {DATASET_NAMES}"
        )
    small_stops, small_degree, paper_stops, paper_degree = _SCALED[name]
    if scale == "small":
        stops, degree = small_stops, small_degree
    elif scale == "paper":
        stops, degree = paper_stops, paper_degree
    elif scale == "table7":
        if name not in TABLE7_SCALE_NAMES:
            raise TimetableError(
                f"no table7-scale profile for {name!r}; "
                f"choose from {TABLE7_SCALE_NAMES}"
            )
        row = paper_row(name)
        stops, degree = row.stops, row.avg_degree
    else:
        raise TimetableError(
            f"unknown scale {scale!r} (use one of {SCALE_NAMES})"
        )
    if seed is None:
        seed = 1 + DATASET_NAMES.index(name)
    hub_count = max(2, stops // 25)
    return config_for_degree(
        name, num_stops=stops, target_degree=degree, hub_count=hub_count, seed=seed
    )


def load_dataset(name: str, scale: str = "small", seed: int | None = None) -> Timetable:
    """Generate the named dataset's timetable."""
    return generate_city(dataset_config(name, scale=scale, seed=seed))


def paper_row(name: str) -> PaperDataset:
    for row in PAPER_TABLE7:
        if row.name == name:
            return row
    raise TimetableError(f"unknown dataset {name!r}")
