"""Exception hierarchy shared by every repro subsystem."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TimetableError(ReproError):
    """Invalid timetable data (negative durations, unknown stops, ...)."""


class GTFSError(TimetableError):
    """Malformed GTFS feed content."""


class LabelingError(ReproError):
    """TTL label construction or validation failed."""


class DatabaseError(ReproError):
    """Base class for minidb failures."""


class StorageError(DatabaseError):
    """Page/heap/disk level failure (corruption, out-of-space, bad page id)."""


class CatalogError(DatabaseError):
    """Unknown or duplicate table/column, schema mismatch."""


class WALError(StorageError):
    """Write-ahead-log corruption or protocol misuse."""


class CrashPoint(StorageError):
    """Raised by the WAL fault injector at a named crash point.

    Crash-recovery tests arm :attr:`WriteAheadLog.fault_injector` with a
    hook that raises this at a chosen point (``"commit:mid-append"``,
    ``"checkpoint:before-truncate"``, ...), then call
    :meth:`Database.simulate_crash` and reopen the file to exercise replay.
    ``point`` names the crash site so a matrix test can assert where it
    fired.
    """

    def __init__(self, point: str):
        self.point = point
        super().__init__(f"simulated crash at {point}")


class ServingError(ReproError):
    """Base class for the multi-process serving tier."""


class BackpressureError(ServingError):
    """Admission control rejected a request: the target worker's queue is
    full. Typed so clients can distinguish overload (retry later / shed
    load) from a real failure; the router never queues past the bound."""

    def __init__(self, shard: int, depth: int, limit: int):
        self.shard = shard
        self.depth = depth
        self.limit = limit
        super().__init__(
            f"shard {shard} over admission limit ({depth}/{limit} in flight)"
        )


class WorkerDiedError(ServingError):
    """The worker process closed its pipe mid-conversation (crash/kill)."""


class ProtocolError(ServingError):
    """Malformed frame on the router<->worker pipe."""


class SanitizerError(DatabaseError):
    """A concurrency-discipline violation caught by the dynamic sanitizer.

    Raised only while the sanitizer is enabled (``SANITIZE=1`` or
    :func:`repro.minidb.sanitize.enable`). Structured: ``code`` is the
    stable ``SAND*`` diagnostic code and ``traces`` holds the formatted
    acquisition stacks involved (both sides of a lock-order inversion, the
    pin site of a leak, ...) so reports survive being stringified.
    """

    def __init__(self, code: str, message: str, traces=()):
        self.code = code
        self.traces = [str(t) for t in traces]
        detail = ""
        if self.traces:
            detail = "\n" + "\n".join(self.traces)
        super().__init__(f"{code}: {message}{detail}")


class SQLError(DatabaseError):
    """Base class for SQL front-end failures."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenized or parsed."""


class SQLNameError(SQLError):
    """An identifier (table, column, alias, function) does not resolve."""


class SQLTypeError(SQLError):
    """An expression is applied to values of the wrong type."""


class SQLAnalysisError(SQLError):
    """A statement was rejected by static analysis before execution.

    Concrete subclasses below multiply-inherit from the exception the
    executor would have raised for the same fault at runtime, so existing
    ``except CatalogError`` / ``except SQLNameError`` handlers (and tests)
    keep working when the analyzer fires first."""


class AnalyzerCatalogError(SQLAnalysisError, CatalogError):
    """Static analysis: unknown relation or invalid DDL (SEM001/SEM006)."""


class AnalyzerNameError(SQLAnalysisError, SQLNameError):
    """Static analysis: unresolved or ambiguous name (SEM002-SEM004)."""


class AnalyzerTypeError(SQLAnalysisError, SQLTypeError):
    """Static analysis: type rule violation (TYP*)."""


class AnalyzerStructureError(SQLAnalysisError, SQLSyntaxError):
    """Static analysis: structural rule violation (SEM005, AGG*, WIN*, SRF*)."""


class BenchmarkError(ReproError):
    """Benchmark harness misconfiguration."""
