"""Row vs batch executor on the paper's query families (perf smoke).

The vectorized executor must be a pure optimization: identical result sets,
identical per-query page-I/O (reads and pool misses), zero plan divergence
— only CPU time may change. This harness runs the v2v, kNN and one-to-many
families twice on the same loaded PTLDB, once with ``db.vectorize = False``
(the row-at-a-time executor) and once with the default batch executor, and
verifies all of the above per query before reporting speedups.

CI runs it as a perf-smoke gate: the run **fails** if the batch path is
slower than the row path on any family, if any query's rows differ, or if
any query's page-read/miss counts differ. The JSON report
(``BENCH_vectorized.json`` in CI) carries the full per-family breakdown.

Usage::

    PYTHONPATH=src python -m repro.bench.experiment_vectorized \
        --dataset "Salt Lake City" --queries 30 --out BENCH_vectorized.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.runner import BenchResult, run_batch
from repro.bench.workload import batch_workload, v2v_workload
from repro.ptldb.framework import PTLDB

TAG_DENSITY = 0.05
FAMILIES = ("v2v", "knn", "otm")


def _build_thunk_lists(ptldb: PTLDB, timetable, k: int, n_queries: int, seed: int):
    """Per-family lists of zero-arg callables, one PTLDB query each."""
    from repro.bench.experiments import _ensure_targets

    tag = _ensure_targets(
        ptldb, timetable, TAG_DENSITY, max(4, k), ("knn_ea", "otm_ea")
    )
    v2v = v2v_workload(timetable, n=n_queries, seed=seed)
    batch = batch_workload(timetable, n=n_queries, seed=seed + 1)
    return {
        "v2v": [
            (lambda q=q: ptldb.earliest_arrival(q.source, q.goal, q.depart_at))
            for q in v2v
        ],
        "knn": [
            (lambda q=q: ptldb.ea_knn(tag, q.source, q.depart_at, k))
            for q in batch
        ],
        "otm": [
            (lambda q=q: ptldb.ea_one_to_many(tag, q.source, q.depart_at))
            for q in batch
        ],
    }


def _measure(ptldb: PTLDB, name: str, thunks, vectorize: bool):
    """Run the family cold with the chosen executor, recording each query's
    result value and page-I/O so the two modes can be diffed exactly."""
    db = ptldb.db
    values: list = []
    io: list[tuple[int, int]] = []

    def observed(call):
        def wrapped():
            value = call()
            cost = db.last_cost
            values.append(value)
            io.append((cost.page_reads, cost.pool_misses) if cost else (0, 0))
            return value

        return wrapped

    db.vectorize = vectorize
    result = run_batch(
        ptldb, name, (observed(t) for t in thunks), registry=None
    )
    return result, values, io


def _family_report(
    family: str, row: BenchResult, batch: BenchResult, checks: dict
) -> dict:
    speedup = (
        row.avg_cpu_ms / batch.avg_cpu_ms if batch.avg_cpu_ms > 0 else 0.0
    )
    return {
        "family": family,
        "queries": row.queries,
        "row_cpu_ms": round(row.avg_cpu_ms, 3),
        "batch_cpu_ms": round(batch.avg_cpu_ms, 3),
        "cpu_speedup": round(speedup, 2),
        "row_io_ms": round(row.avg_io_ms, 3),
        "batch_io_ms": round(batch.avg_io_ms, 3),
        "row_page_reads": row.page_reads,
        "batch_page_reads": batch.page_reads,
        "row_plan_divergence": row.plan_divergence(),
        "batch_plan_divergence": batch.plan_divergence(),
        **checks,
        "ok": (
            checks["results_identical"]
            and checks["page_io_identical"]
            and speedup >= 1.0
            and not batch.plan_divergence()
        ),
    }


def run_vectorized_experiment(
    dataset: str = "Salt Lake City",
    device: str = "ssd",
    k: int = 4,
    n_queries: int = 30,
    scale: str = "small",
    seed: int = 42,
) -> dict:
    from repro.bench.experiments import get_bundle, get_ptldb

    bundle = get_bundle(dataset, scale)
    ptldb = get_ptldb(dataset, device, scale)
    thunk_lists = _build_thunk_lists(
        ptldb, bundle.timetable, k, n_queries, seed
    )
    families = []
    try:
        for family in FAMILIES:
            thunks = thunk_lists[family]
            row, row_values, row_io = _measure(
                ptldb, f"{dataset}/{family}/row", thunks, vectorize=False
            )
            batch, batch_values, batch_io = _measure(
                ptldb, f"{dataset}/{family}/batch", thunks, vectorize=True
            )
            checks = {
                "results_identical": row_values == batch_values,
                "page_io_identical": row_io == batch_io,
            }
            families.append(_family_report(family, row, batch, checks))
    finally:
        ptldb.db.vectorize = True  # the instance is cached across experiments
    return {
        "dataset": dataset,
        "device": device,
        "k": k,
        "queries_per_family": n_queries,
        "families": families,
        "ok": all(f["ok"] for f in families),
    }


def experiment_vectorized(
    datasets=None,
    device: str = "ssd",
    n_queries: int = 30,
    scale: str = "small",
) -> list[dict]:
    """CLI-table rows: one per (dataset, family)."""
    rows = []
    for name in datasets or ["Salt Lake City"]:
        report = run_vectorized_experiment(
            name, device=device, n_queries=n_queries, scale=scale
        )
        for fam in report["families"]:
            rows.append(
                {
                    "dataset": name,
                    "device": device,
                    "family": fam["family"],
                    "row_cpu_ms": fam["row_cpu_ms"],
                    "batch_cpu_ms": fam["batch_cpu_ms"],
                    "cpu_speedup": fam["cpu_speedup"],
                    "identical": fam["results_identical"]
                    and fam["page_io_identical"],
                    "ok": fam["ok"],
                }
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Row vs batch executor perf smoke (fails if batch loses)"
    )
    parser.add_argument("--dataset", default="Salt Lake City")
    parser.add_argument("--device", default="ssd", choices=["hdd", "ssd", "ram"])
    parser.add_argument("--queries", type=int, default=30, help="per family")
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--scale", default="small")
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)
    report = run_vectorized_experiment(
        args.dataset,
        device=args.device,
        k=args.k,
        n_queries=args.queries,
        scale=args.scale,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
    for fam in report["families"]:
        print(
            f"{fam['family']:4s} row={fam['row_cpu_ms']:8.3f} ms "
            f"batch={fam['batch_cpu_ms']:8.3f} ms "
            f"speedup={fam['cpu_speedup']:5.2f}x "
            f"results_identical={fam['results_identical']} "
            f"page_io_identical={fam['page_io_identical']} ok={fam['ok']}"
        )
        if fam["batch_plan_divergence"]:
            print(f"  divergence: {fam['batch_plan_divergence']}", file=sys.stderr)
    if not report["ok"]:
        print("vectorized perf smoke FAILED", file=sys.stderr)
        return 1
    print("vectorized perf smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
