"""Sequential vs parallel TTL preprocessing (scaling curve + identity gate).

The same dataset is preprocessed once per requested worker count.
``workers=1`` is the untouched sequential reference implementation in
:mod:`repro.labeling.ttl`; every other count runs the process-pool build
in :mod:`repro.labeling.parallel` (per-hub profile scans on workers, the
order-dependent PLL pruning serial in the coordinator).

Three gates, all of which must hold for the run to pass:

* **identity** — every build's label file is byte-identical to the
  sequential one (compared via the serialized ``save_labels`` bytes, so
  tuple order, dummy tuples and the header all participate);
* **speedup** — the largest worker count is at least ``--min-speedup``
  (default 2x) faster than ``workers=1`` wall-clock;
* **oracle** — random EA/LD vertex-to-vertex queries answered from the
  parallel-built labels match the Connection Scan baseline
  (:mod:`repro.baselines.csa`) exactly.

The host's ``os.cpu_count()`` is recorded in the report: on a single-core
host the speedup comes from the numpy scan kernel and the indexed cover
checks that only the parallel path uses; real parallelism compounds on
multi-core hosts.

Usage::

    PYTHONPATH=src python -m repro.bench.experiment_preprocess \
        --dataset Austin --scale paper --workers 1,2,4 \
        --out BENCH_preprocess.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import sys
import tempfile

from repro.baselines import csa
from repro.labeling.io import save_labels
from repro.labeling.query import TTLQueryEngine
from repro.labeling.ttl import build_labels
from repro.timetable.datasets import load_dataset


def _label_digest(labels) -> str:
    """SHA-256 of the serialized label file — the byte-identity witness."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "labels.ttl")
        save_labels(labels, path)
        with open(path, "rb") as handle:
            return hashlib.sha256(handle.read()).hexdigest()


def _oracle_checks(timetable, labels, n_queries: int, seed: int) -> dict:
    """Random EA/LD spot checks against the Connection Scan baseline."""
    engine = TTLQueryEngine(labels)
    rng = random.Random(seed)
    deps = [c.dep for c in timetable.connections]
    lo, hi = (min(deps), max(deps) + 1) if deps else (0, 1)
    mismatches = 0
    for _ in range(n_queries):
        source = rng.randrange(timetable.num_stops)
        goal = rng.randrange(timetable.num_stops - 1)
        if goal >= source:
            goal += 1
        when = rng.randrange(lo, hi)
        if engine.earliest_arrival(source, goal, when) != csa.earliest_arrival(
            timetable, source, goal, when
        ):
            mismatches += 1
        if engine.latest_departure(source, goal, when) != csa.latest_departure(
            timetable, source, goal, when
        ):
            mismatches += 1
    return {
        "queries": 2 * n_queries,
        "mismatches": mismatches,
        "ok": mismatches == 0,
    }


def run_preprocess_experiment(
    dataset: str = "Austin",
    scale: str = "paper",
    workers_list: tuple[int, ...] = (1, 2, 4),
    ordering: str = "event_degree",
    min_speedup: float = 2.0,
    oracle_queries: int = 40,
    seed: int = 23,
) -> dict:
    if 1 not in workers_list:
        workers_list = (1, *workers_list)
    workers_list = tuple(sorted(set(workers_list)))
    timetable = load_dataset(dataset, scale=scale)

    rows = []
    sequential_s = None
    reference_digest = None
    labels = None
    for workers in workers_list:
        labels, report = build_labels(
            timetable, ordering=ordering, add_dummies=True, workers=workers
        )
        digest = _label_digest(labels)
        if workers == 1:
            sequential_s = report.seconds
            reference_digest = digest
        row = {
            "workers": workers,
            "wall_s": round(report.seconds, 4),
            "speedup": round(sequential_s / report.seconds, 2)
            if report.seconds
            else 0.0,
            "kept_tuples": report.kept_tuples,
            "identical": digest == reference_digest,
        }
        if hasattr(report, "pipeline_s"):
            row.update(
                window=report.window,
                setup_s=round(report.setup_s, 4),
                pipeline_s=round(report.pipeline_s, 4),
                finalize_s=round(report.finalize_s, 4),
                scan_cpu_s=round(report.scan_cpu_s, 4),
                coordinator_cpu_s=round(report.coordinator_cpu_s, 4),
                cpu_to_wall=round(report.cpu_to_wall, 3),
            )
        rows.append(row)

    oracle = _oracle_checks(timetable, labels, oracle_queries, seed)
    identical = all(row["identical"] for row in rows)
    best = rows[-1]
    return {
        "dataset": dataset,
        "scale": scale,
        "ordering": ordering,
        "num_stops": timetable.num_stops,
        "num_connections": timetable.num_connections,
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "min_speedup": min_speedup,
        "best_speedup": best["speedup"],
        "labels_identical": identical,
        "oracle": oracle,
        "ok": identical and oracle["ok"] and best["speedup"] >= min_speedup,
    }


def experiment_preprocess(datasets=None, scale: str = "small"):
    """``repro bench --experiment preprocess`` rows (one per worker count)."""
    names = datasets or ["Austin"]
    rows = []
    for name in names:
        report = run_preprocess_experiment(name, scale=scale, min_speedup=0.0)
        for row in report["rows"]:
            rows.append(
                {
                    "dataset": name,
                    "workers": row["workers"],
                    "wall_s": row["wall_s"],
                    "speedup": row["speedup"],
                    "identical": row["identical"],
                    "oracle_ok": report["oracle"]["ok"],
                }
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Sequential vs parallel TTL preprocessing; fails unless labels "
            "are byte-identical, the CSA oracle agrees, and the largest "
            "worker count clears the speedup gate"
        )
    )
    parser.add_argument("--dataset", default="Austin")
    parser.add_argument("--scale", default="paper")
    parser.add_argument("--workers", default="1,2,4", help="comma-separated")
    parser.add_argument("--ordering", default="event_degree")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--oracle-queries", type=int, default=40)
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)
    workers_list = tuple(int(w) for w in args.workers.split(","))
    report = run_preprocess_experiment(
        args.dataset,
        scale=args.scale,
        workers_list=workers_list,
        ordering=args.ordering,
        min_speedup=args.min_speedup,
        oracle_queries=args.oracle_queries,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
    for row in report["rows"]:
        extra = (
            f" pipeline={row['pipeline_s']:.2f}s cpu/wall={row['cpu_to_wall']:.2f}"
            if "pipeline_s" in row
            else ""
        )
        print(
            f"workers={row['workers']} wall={row['wall_s']:.2f}s "
            f"speedup={row['speedup']:.2f}x identical={row['identical']}{extra}"
        )
    oracle = report["oracle"]
    print(
        f"oracle: {oracle['mismatches']} mismatch(es) over {oracle['queries']} "
        f"CSA spot checks; best speedup {report['best_speedup']:.2f}x "
        f"(gate {report['min_speedup']:.1f}x) on {report['cpu_count']} CPU(s)"
    )
    if not report["ok"]:
        print("preprocess scaling gate FAILED", file=sys.stderr)
        return 1
    print("preprocess scaling gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
