"""Concurrent query serving: the paper's multi-client experiment.

The paper serves PTLDB from an unmodified PostgreSQL server, so many clients
can query one database concurrently. This harness reproduces that setup on
minidb: N worker threads, each with its own :class:`~repro.ptldb.framework.
PTLDBClient` (private session, prepared handles, cost attribution), replay a
mixed v2v / kNN / one-to-many workload against one shared database, and the
report gives per-thread latency percentiles plus aggregate throughput per
thread count — the Figure 6 throughput-vs-clients shape.

Time model: wall-clock alone would understate concurrency benefits (the
simulated device never sleeps) and the GIL serializes CPU anyway, so each
thread accumulates a *simulated clock* = measured CPU + simulated I/O per
query. Threads overlap I/O freely (a real disk queue would reorder across
connections), while CPU contention shows up naturally in the measured part;
the run's makespan is the slowest thread's clock and throughput is total
queries over that makespan.

The harness is also the concurrency *correctness* tripwire CI runs:

* every answer is checked against a sequential reference (lost or torn
  results fail the run),
* per-thread I/O counters must sum exactly to the global counters (a lost
  increment fails the run),
* a concurrent-insert check writes disjoint keys from every thread and
  verifies none were lost.

Usage::

    PYTHONPATH=src python -m repro.bench.experiment_concurrency \
        --threads 1,2,4,8 --queries 25 --out concurrency.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from repro.bench.workload import batch_workload, random_targets, v2v_workload
from repro.errors import BackpressureError
from repro.labeling.ttl import build_labels
from repro.minidb.metrics import Histogram
from repro.ptldb.framework import PTLDB

TAG = "serving"
FAMILIES = ("v2v_ea", "v2v_ld", "knn_ea", "otm_ea")


def build_fixture(
    dataset: str,
    device: str,
    scale: str,
    density: float,
    kmax: int,
    timetable=None,
):
    """A loaded PTLDB with the serving target set, plus its timetable."""
    if timetable is None:
        from repro.bench.experiments import get_bundle

        bundle = get_bundle(dataset, scale)
        timetable, labels = bundle.timetable, bundle.labels
    else:
        labels, _ = build_labels(timetable, add_dummies=True)
    ptldb = PTLDB.from_timetable(timetable, device=device, labels=labels)
    targets = random_targets(timetable, density=density, seed=7)
    ptldb.build_target_set(
        TAG, targets, kmax=kmax, families=("knn_ea", "otm_ea")
    )
    return ptldb, timetable


def build_workload(timetable, total: int, k: int, seed: int) -> list[tuple]:
    """``total`` (family, query) items, families round-robin interleaved."""
    v2v = v2v_workload(timetable, n=total, seed=seed)
    batch = batch_workload(timetable, n=total, seed=seed + 1)
    items = []
    for i in range(total):
        family = FAMILIES[i % len(FAMILIES)]
        query = v2v[i] if family.startswith("v2v") else batch[i]
        items.append((family, query, k))
    return items


def run_query(api, item):
    """Run one workload item through *api* (a PTLDB or a PTLDBClient)."""
    family, query, k = item
    if family == "v2v_ea":
        return api.earliest_arrival(query.source, query.goal, query.depart_at)
    if family == "v2v_ld":
        return api.latest_departure(query.source, query.goal, query.arrive_by)
    if family == "knn_ea":
        return api.ea_knn(TAG, query.source, query.depart_at, k)
    if family == "otm_ea":
        return api.ea_one_to_many(TAG, query.source, query.depart_at)
    raise ValueError(f"unknown family {family!r}")


def _serve(client, items, reference):
    """One worker thread: replay *items*, checking against *reference*.

    Returns this thread's latency histogram, simulated clock, I/O counter
    deltas and mismatch/error tallies.
    """
    latencies = Histogram("latency_ms")
    disk_stats = client.db.disk.thread_stats()
    pool_stats = client.db.pool.thread_stats()
    disk_before = disk_stats.snapshot()
    pool_before = pool_stats.snapshot()
    clock_ms = 0.0
    mismatches = 0
    errors = []
    for index, item in items:
        try:
            started = time.perf_counter()
            answer = run_query(client, item)
            cpu_ms = (time.perf_counter() - started) * 1000.0
            io_ms = client.last_cost.simulated_io_ms
        except Exception as exc:  # noqa: BLE001 - reported, fails the run
            errors.append(f"{item[0]}[{index}]: {type(exc).__name__}: {exc}")
            continue
        if answer != reference[index]:
            mismatches += 1
        latency = cpu_ms + io_ms
        latencies.observe(latency)
        clock_ms += latency
    disk_delta = disk_stats.delta(disk_before)
    pool_delta = pool_stats.delta(pool_before)
    return {
        "queries": latencies.count,
        "clock_ms": clock_ms,
        "latencies": latencies,
        "page_reads": disk_delta.reads,
        "pool_hits": pool_delta.hits,
        "pool_misses": pool_delta.misses,
        "mismatches": mismatches,
        "errors": errors,
    }


def run_thread_count(ptldb: PTLDB, items, reference, threads: int) -> dict:
    """One serving run at a fixed thread count, from a cold cache."""
    ptldb.restart()
    disk_before = ptldb.db.disk.stats.snapshot()
    pool_before = ptldb.db.pool.stats.snapshot()
    clients = [ptldb.client(tracing=False) for _ in range(threads)]
    shards = [
        [(i, item) for i, item in enumerate(items) if i % threads == worker]
        for worker in range(threads)
    ]
    with ThreadPoolExecutor(max_workers=threads) as executor:
        outcomes = list(
            executor.map(_serve, clients, shards, [reference] * threads)
        )
    disk_delta = ptldb.db.disk.stats.delta(disk_before)
    pool_delta = ptldb.db.pool.stats.delta(pool_before)
    # Lost-increment check: per-thread counters must sum to the global ones.
    stats_consistent = (
        sum(o["page_reads"] for o in outcomes) == disk_delta.reads
        and sum(o["pool_hits"] for o in outcomes) == pool_delta.hits
        and sum(o["pool_misses"] for o in outcomes) == pool_delta.misses
    )
    makespan_ms = max((o["clock_ms"] for o in outcomes), default=0.0)
    total_queries = sum(o["queries"] for o in outcomes)
    errors = [err for o in outcomes for err in o["errors"]]
    mismatches = sum(o["mismatches"] for o in outcomes)
    return {
        "threads": threads,
        "total_queries": total_queries,
        "makespan_ms": round(makespan_ms, 3),
        "throughput_qps": round(
            total_queries / makespan_ms * 1000.0 if makespan_ms else 0.0, 3
        ),
        "errors": errors,
        "mismatches": mismatches,
        "stats_consistent": stats_consistent,
        "pool_hit_rate": round(
            pool_delta.hits / pool_delta.accesses if pool_delta.accesses else 0.0,
            4,
        ),
        "per_thread": [
            {
                "thread": worker,
                "queries": o["queries"],
                "clock_ms": round(o["clock_ms"], 3),
                "p50_ms": round(o["latencies"].percentile(50), 3),
                "p95_ms": round(o["latencies"].percentile(95), 3),
                "page_reads": o["page_reads"],
            }
            for worker, o in enumerate(outcomes)
        ],
    }


def run_insert_check(ptldb: PTLDB, threads: int, rows_per_thread: int = 20) -> dict:
    """Concurrent disjoint inserts from one session per thread.

    Every (thread, i) key must be present afterwards: a lost update means a
    writer observed a stale page image despite the single-writer latch.
    """
    db = ptldb.db
    db.execute(
        "CREATE TABLE serving_scratch (k BIGINT, v BIGINT, PRIMARY KEY (k))"
    )

    def writer(worker: int) -> None:
        session = db.session(tracing=False)
        for i in range(rows_per_thread):
            key = worker * rows_per_thread + i
            session.execute(
                "INSERT INTO serving_scratch VALUES ($1, $2)", (key, worker)
            )

    try:
        with ThreadPoolExecutor(max_workers=threads) as executor:
            list(executor.map(writer, range(threads)))
        rows = db.execute("SELECT k, v FROM serving_scratch").rows
        expected = {
            (w * rows_per_thread + i, w)
            for w in range(threads)
            for i in range(rows_per_thread)
        }
        lost = sorted(k for k, _ in expected - set(rows))
        return {
            "threads": threads,
            "rows_expected": len(expected),
            "rows_found": len(rows),
            "lost_keys": lost,
            "ok": not lost and len(rows) == len(expected),
        }
    finally:
        db.execute("DROP TABLE serving_scratch")


def run_wall_clock(api_factory, items, reference, threads: int) -> dict:
    """One *wall-clock* serving run: real elapsed time, no simulated I/O.

    The simulated-clock runs above model device queueing for the Figure 6
    curve; this driver instead measures what actually elapses, which is the
    only time base that compares fairly across process topologies (the
    serving bench drives a multi-process router and a single-process PTLDB
    through this same loop). ``api_factory`` is called once per client
    thread and may return a shared thread-safe object (a router) or a
    private one (a PTLDB client).

    A :class:`~repro.errors.BackpressureError` is not a failure — it is the
    admission controller doing its job under saturation — so the driver
    backs off briefly and retries, reporting the rejection count.
    """
    clients = [api_factory() for _ in range(threads)]
    slices = [
        [(i, item) for i, item in enumerate(items) if i % threads == worker]
        for worker in range(threads)
    ]

    failed = object()  # distinct from None, a legitimate "no journey" answer

    def drive(client, part):
        latencies = Histogram("latency_ms")
        mismatches = 0
        rejections = 0
        errors = []
        for index, item in part:
            attempts = 0
            while True:
                started = time.perf_counter()
                try:
                    answer = run_query(client, item)
                except BackpressureError:
                    rejections += 1
                    attempts += 1
                    if attempts > 1000:
                        errors.append(f"{item[0]}[{index}]: backpressure livelock")
                        answer = failed
                        break
                    time.sleep(0.001)
                    continue
                except Exception as exc:  # noqa: BLE001 - reported, fails run
                    errors.append(
                        f"{item[0]}[{index}]: {type(exc).__name__}: {exc}"
                    )
                    answer = failed
                    break
                latencies.observe((time.perf_counter() - started) * 1000.0)
                break
            if answer is not failed and answer != reference[index]:
                mismatches += 1
        return latencies, mismatches, rejections, errors

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=threads) as executor:
        outcomes = list(executor.map(drive, clients, slices))
    wall_seconds = time.perf_counter() - started
    merged = Histogram("latency_ms")
    for latencies, _, _, _ in outcomes:
        merged.values.extend(latencies.values)
    total = merged.count
    return {
        "threads": threads,
        "queries": total,
        "wall_seconds": round(wall_seconds, 4),
        "throughput_qps": round(total / wall_seconds if wall_seconds else 0.0, 2),
        "p50_ms": round(merged.percentile(50), 3),
        "p95_ms": round(merged.percentile(95), 3),
        "p99_ms": round(merged.percentile(99), 3),
        "mismatches": sum(o[1] for o in outcomes),
        "backpressure_rejections": sum(o[2] for o in outcomes),
        "errors": [err for o in outcomes for err in o[3]],
    }


def single_process_ceiling(
    ptldb: PTLDB, items, reference, thread_counts: tuple[int, ...] = (1, 2, 4)
) -> dict:
    """The single-process thread ceiling in wall-clock terms.

    Threads over one in-process database cannot scale past the interpreter
    lock on this CPU-bound workload; the best throughput over
    *thread_counts* is therefore the ceiling a multi-process serving tier
    has to beat. Measured with :func:`run_wall_clock` so the comparison
    uses one time base."""
    runs = [
        run_wall_clock(
            lambda: ptldb.client(tracing=False), items, reference, threads
        )
        for threads in thread_counts
    ]
    best = max(runs, key=lambda run: run["throughput_qps"])
    return {
        "thread_counts": list(thread_counts),
        "best_threads": best["threads"],
        "throughput_qps": best["throughput_qps"],
        "p95_ms": best["p95_ms"],
        "runs": runs,
    }


def run_serving_experiment(
    dataset: str = "Austin",
    device: str = "hdd",
    thread_counts: tuple[int, ...] = (1, 2, 4, 8),
    queries_per_thread: int = 25,
    k: int = 2,
    density: float = 0.1,
    scale: str = "small",
    seed: int = 17,
    timetable=None,
) -> dict:
    """The full experiment: one serving run per thread count + insert check.

    The workload is sized to the *largest* thread count and identical for
    every run (smaller counts just spread it across fewer threads), so the
    throughput column is an apples-to-apples Figure 6 curve."""
    ptldb, timetable = build_fixture(
        dataset, device, scale, density, kmax=max(k, 1), timetable=timetable
    )
    total = queries_per_thread * max(thread_counts)
    items = build_workload(timetable, total, k, seed)
    # Sequential reference answers — ground truth for the lost-result check.
    reference = [run_query(ptldb, item) for item in items]
    runs = [
        run_thread_count(ptldb, items, reference, threads)
        for threads in thread_counts
    ]
    insert_check = run_insert_check(ptldb, max(thread_counts))
    ok = (
        all(
            not run["errors"]
            and run["mismatches"] == 0
            and run["stats_consistent"]
            and run["total_queries"] == total
            for run in runs
        )
        and insert_check["ok"]
    )
    return {
        "experiment": "concurrency",
        "dataset": dataset,
        "device": device,
        "queries_per_thread": queries_per_thread,
        "total_queries": total,
        "k": k,
        "density": density,
        "runs": runs,
        "insert_check": insert_check,
        "ok": ok,
    }


def experiment_concurrency(
    datasets=None,
    device: str = "hdd",
    thread_counts: tuple[int, ...] = (1, 2, 4, 8),
    queries_per_thread: int = 25,
    scale: str = "small",
) -> list[dict]:
    """CLI-table rows: one per (dataset, thread count)."""
    rows = []
    for name in datasets or ["Austin"]:
        report = run_serving_experiment(
            name,
            device=device,
            thread_counts=thread_counts,
            queries_per_thread=queries_per_thread,
            scale=scale,
        )
        for run in report["runs"]:
            rows.append(
                {
                    "dataset": name,
                    "device": device,
                    "threads": run["threads"],
                    "queries": run["total_queries"],
                    "throughput_qps": run["throughput_qps"],
                    "makespan_ms": run["makespan_ms"],
                    "p95_ms": max(t["p95_ms"] for t in run["per_thread"]),
                    "ok": (
                        not run["errors"]
                        and run["mismatches"] == 0
                        and run["stats_consistent"]
                    ),
                }
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Concurrent serving experiment (Figure 6 shape)"
    )
    parser.add_argument("--dataset", default="Austin")
    parser.add_argument("--device", default="hdd", choices=["hdd", "ssd", "ram"])
    parser.add_argument(
        "--threads",
        default="1,2,4,8",
        help="comma-separated thread counts (default 1,2,4,8)",
    )
    parser.add_argument("--queries", type=int, default=25, help="per thread")
    parser.add_argument("--scale", default="small")
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)
    thread_counts = tuple(int(part) for part in args.threads.split(","))
    report = run_serving_experiment(
        args.dataset,
        device=args.device,
        thread_counts=thread_counts,
        queries_per_thread=args.queries,
        scale=args.scale,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
    for run in report["runs"]:
        print(
            f"threads={run['threads']:2d} queries={run['total_queries']} "
            f"throughput={run['throughput_qps']:.1f} q/s "
            f"makespan={run['makespan_ms']:.1f} ms "
            f"errors={len(run['errors'])} mismatches={run['mismatches']} "
            f"stats_consistent={run['stats_consistent']}"
        )
        for err in run["errors"]:
            print(f"  ERROR {err}", file=sys.stderr)
    check = report["insert_check"]
    print(
        f"insert check: {check['rows_found']}/{check['rows_expected']} rows, "
        f"lost={check['lost_keys']}"
    )
    if not report["ok"]:
        print("concurrency experiment FAILED", file=sys.stderr)
        return 1
    print("concurrency experiment OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
