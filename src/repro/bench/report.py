"""Paper-style result tables (plain text + markdown)."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def format_stage_breakdown(stages: dict[str, dict], title: str | None = None) -> str:
    """Per-operator-stage table from ``BenchResult.stages`` (or a single
    trace's ``stage_totals()``), costliest simulated I/O first."""
    headers = [
        "stage", "calls", "rows", "pool_hits", "pool_misses",
        "page_reads", "io_ms", "time_ms",
    ]
    rows = []
    for stage in sorted(stages, key=lambda s: -stages[s]["io_ms"]):
        figures = stages[stage]
        rows.append(
            [
                stage,
                figures["calls"],
                figures["rows"],
                figures["pool_hits"],
                figures["pool_misses"],
                figures["page_reads"],
                round(figures["io_ms"], 3),
                round(figures["time_ms"], 3),
            ]
        )
    return format_table(headers, rows, title=title)


def speedup(base_ms: float, other_ms: float) -> float:
    """How many times faster *other* is than *base*."""
    if other_ms <= 0:
        return float("inf")
    return base_ms / other_ms


def ascii_bar_chart(
    series: dict[str, float],
    title: str | None = None,
    width: int = 50,
    log_scale: bool = True,
    unit: str = "ms",
) -> str:
    """Horizontal bar chart, log-scale by default (the paper plots all kNN
    and one-to-many charts in logarithmic scale)."""
    import math

    lines = []
    if title:
        lines.append(title)
    if not series:
        lines.append("(no data)")
        return "\n".join(lines)
    positives = [v for v in series.values() if v > 0]
    label_width = max(len(label) for label in series)
    if not positives:
        for label, value in series.items():
            lines.append(f"{label.ljust(label_width)} | {value:g} {unit}")
        return "\n".join(lines)
    high = max(positives)
    low = min(positives)
    for label, value in series.items():
        if value <= 0:
            bar = ""
        elif log_scale:
            # map [low, high] to [1, width] in log space
            if high == low:
                bar_len = width
            else:
                span = math.log(high) - math.log(low)
                bar_len = 1 + int(
                    (math.log(value) - math.log(low)) / span * (width - 1)
                )
            bar = "#" * bar_len
        else:
            bar = "#" * max(1, int(value / high * width))
        lines.append(
            f"{label.ljust(label_width)} | {bar} {value:g} {unit}"
        )
    return "\n".join(lines)


def series_chart(
    rows: list[dict],
    label_keys: list[str],
    value_key: str,
    title: str | None = None,
    width: int = 50,
) -> str:
    """Chart one value column of experiment rows; labels join *label_keys*."""
    series = {
        " ".join(str(row[k]) for k in label_keys): row[value_key] for row in rows
    }
    return ascii_bar_chart(series, title=title, width=width)
