"""Timing harness with simulated-I/O accounting.

Reported per-query time = measured CPU wall time of executing the SQL in
minidb **plus** the simulated device latency charged by the
:class:`~repro.minidb.disk.DeviceModel` for every buffer-pool miss. The two
components are also reported separately, because the paper's HDD-vs-SSD
findings (Figures 2/7/8) are exactly statements about their ratio: v2v
queries are I/O-bound (few random page reads dominate), kNN/OTM are
CPU-bound (the join does the work, I/O is minimal).

Before each batch the buffer pool is cleared — the paper restarts the
PostgreSQL server and drops the OS cache before each experiment.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from repro.ptldb.framework import PTLDB


@dataclass
class BenchResult:
    """Aggregated timings of one query batch."""

    name: str
    queries: int
    cpu_ms: list[float] = field(default_factory=list)
    io_ms: list[float] = field(default_factory=list)
    page_reads: int = 0
    empty_results: int = 0

    @property
    def avg_cpu_ms(self) -> float:
        return statistics.fmean(self.cpu_ms) if self.cpu_ms else 0.0

    @property
    def avg_io_ms(self) -> float:
        return statistics.fmean(self.io_ms) if self.io_ms else 0.0

    @property
    def avg_total_ms(self) -> float:
        return self.avg_cpu_ms + self.avg_io_ms

    @property
    def median_total_ms(self) -> float:
        totals = [c + i for c, i in zip(self.cpu_ms, self.io_ms)]
        return statistics.median(totals) if totals else 0.0

    def row(self) -> dict:
        return {
            "name": self.name,
            "queries": self.queries,
            "avg_total_ms": round(self.avg_total_ms, 3),
            "avg_cpu_ms": round(self.avg_cpu_ms, 3),
            "avg_io_ms": round(self.avg_io_ms, 3),
            "page_reads": self.page_reads,
            "empty_results": self.empty_results,
        }


def run_batch(ptldb: PTLDB, name: str, calls, cold_start: bool = True) -> BenchResult:
    """Execute ``calls`` (iterable of zero-arg callables) against *ptldb*.

    Each callable should issue exactly one PTLDB query and return its
    result; ``None`` / empty results are counted (the paper's quartile
    timestamp sampling exists to keep those rare).
    """
    if cold_start:
        ptldb.restart()
    result = BenchResult(name=name, queries=0)
    for call in calls:
        started = time.perf_counter()
        value = call()
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        cost = ptldb.db.last_cost
        io_ms = cost.simulated_io_ms if cost else 0.0
        result.cpu_ms.append(elapsed_ms)
        result.io_ms.append(io_ms)
        result.page_reads += cost.page_reads if cost else 0
        if value is None or value == [] or value == {}:
            result.empty_results += 1
        result.queries += 1
    return result
