"""Timing harness with simulated-I/O accounting.

Reported per-query time = measured CPU wall time of executing the SQL in
minidb **plus** the simulated device latency charged by the
:class:`~repro.minidb.disk.DeviceModel` for every buffer-pool miss. The two
components are also reported separately, because the paper's HDD-vs-SSD
findings (Figures 2/7/8) are exactly statements about their ratio: v2v
queries are I/O-bound (few random page reads dominate), kNN/OTM are
CPU-bound (the join does the work, I/O is minimal).

Before each batch the buffer pool is cleared — the paper restarts the
PostgreSQL server and drops the OS cache before each experiment.

Per-stage attribution: every query's :class:`~repro.minidb.metrics.QueryTrace`
is folded into ``BenchResult.stages`` (exclusive per-operator-name figures),
so benchmark JSON can say *which* operator caused the simulated I/O — the
paper's v2v claim is literally "two Index Scan misses", not just "two misses
somewhere".
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from repro.minidb.metrics import REGISTRY, MetricsRegistry
from repro.ptldb.framework import PTLDB


@dataclass
class BenchResult:
    """Aggregated timings of one query batch."""

    name: str
    queries: int
    cpu_ms: list[float] = field(default_factory=list)
    io_ms: list[float] = field(default_factory=list)
    page_reads: int = 0
    pool_misses: int = 0
    empty_results: int = 0
    # operator name -> aggregated exclusive figures across the batch
    stages: dict = field(default_factory=dict)
    # static access-path classification of the batch's statement (from the
    # analyzer, recorded once) — the *predicted* plan next to the measured
    # stages above
    access_paths: list = field(default_factory=list)
    # plan-cache lookups attributable to this batch (hits / misses /
    # invalidations deltas plus the resulting hit rate)
    plan_cache: dict = field(default_factory=dict)

    @property
    def avg_cpu_ms(self) -> float:
        return statistics.fmean(self.cpu_ms) if self.cpu_ms else 0.0

    @property
    def avg_io_ms(self) -> float:
        return statistics.fmean(self.io_ms) if self.io_ms else 0.0

    @property
    def avg_total_ms(self) -> float:
        return self.avg_cpu_ms + self.avg_io_ms

    @property
    def median_total_ms(self) -> float:
        totals = [c + i for c, i in zip(self.cpu_ms, self.io_ms)]
        return statistics.median(totals) if totals else 0.0

    def row(self) -> dict:
        return {
            "name": self.name,
            "queries": self.queries,
            "avg_total_ms": round(self.avg_total_ms, 3),
            "avg_cpu_ms": round(self.avg_cpu_ms, 3),
            "avg_io_ms": round(self.avg_io_ms, 3),
            "page_reads": self.page_reads,
            "empty_results": self.empty_results,
        }

    def merge_trace(self, trace) -> None:
        """Fold one query's per-stage exclusive figures into the batch."""
        for stage, figures in trace.stage_totals().items():
            bucket = self.stages.get(stage)
            if bucket is None:
                self.stages[stage] = dict(figures)
            else:
                for key, value in figures.items():
                    bucket[key] += value

    def stage_rows(self) -> list[dict]:
        """Stage breakdown rows, costliest simulated I/O first."""
        out = []
        for stage in sorted(
            self.stages, key=lambda s: -self.stages[s]["io_ms"]
        ):
            figures = self.stages[stage]
            out.append(
                {
                    "stage": stage,
                    "calls": figures["calls"],
                    "rows": figures["rows"],
                    "pool_hits": figures["pool_hits"],
                    "pool_misses": figures["pool_misses"],
                    "page_reads": figures["page_reads"],
                    "io_ms": round(figures["io_ms"], 3),
                    "time_ms": round(figures["time_ms"], 3),
                }
            )
        return out

    def plan_divergence(self) -> list[str]:
        """Statically predicted operators that never showed up in the
        measured traces — an empty list means the executor did exactly what
        the analyzer proved it would (e.g. v2v really ran two Index Scans).
        """
        out = []
        for path in self.access_paths:
            expected = path["expected_operator"]
            if not any(stage.startswith(expected) for stage in self.stages):
                out.append(
                    f"{path['table']}: predicted {expected} "
                    f"({path['kind']}) not observed in traces"
                )
        return out

    def to_json(self) -> dict:
        """The ``row()`` summary plus per-stage I/O attribution and the
        static (predicted) access paths with any divergence from traces."""
        return {
            **self.row(),
            "pool_misses": self.pool_misses,
            "stages": self.stage_rows(),
            "access_paths": self.access_paths,
            "plan_divergence": self.plan_divergence(),
            "plan_cache": self.plan_cache,
        }


def run_batch(
    ptldb: PTLDB,
    name: str,
    calls,
    cold_start: bool = True,
    registry: MetricsRegistry | None = REGISTRY,
) -> BenchResult:
    """Execute ``calls`` (iterable of zero-arg callables) against *ptldb*.

    Each callable should issue exactly one PTLDB query and return its
    result; ``None`` / empty results are counted (the paper's quartile
    timestamp sampling exists to keep those rare). Each query's trace is
    folded into ``result.stages`` and observed in *registry* (pass ``None``
    to skip registry updates).
    """
    if cold_start:
        ptldb.restart()
    result = BenchResult(name=name, queries=0)
    cache_before = ptldb.db.plan_cache_stats()
    for call in calls:
        started = time.perf_counter()
        value = call()
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        cost = ptldb.db.last_cost
        io_ms = cost.simulated_io_ms if cost else 0.0
        result.cpu_ms.append(elapsed_ms)
        result.io_ms.append(io_ms)
        result.page_reads += cost.page_reads if cost else 0
        result.pool_misses += cost.pool_misses if cost else 0
        trace = getattr(ptldb.db, "last_trace", None)
        if trace is not None:
            result.merge_trace(trace)
        if not result.access_paths:
            analysis = getattr(ptldb.db, "last_analysis", None)
            if analysis is not None:
                result.access_paths = analysis.summary()
        if registry is not None:
            registry.counter(f"bench.{name}.queries").inc()
            registry.histogram(f"bench.{name}.total_ms").observe(
                elapsed_ms + io_ms
            )
            if cost:
                registry.counter(f"bench.{name}.page_reads").inc(cost.page_reads)
        if value is None or value == [] or value == {}:
            result.empty_results += 1
        result.queries += 1
    cache_after = ptldb.db.plan_cache_stats()
    hits = cache_after["hits"] - cache_before["hits"]
    misses = cache_after["misses"] - cache_before["misses"]
    lookups = hits + misses
    result.plan_cache = {
        "hits": hits,
        "misses": misses,
        "invalidations": (
            cache_after["invalidations"] - cache_before["invalidations"]
        ),
        "hit_rate": round(hits / lookups, 4) if lookups else 1.0,
    }
    return result
