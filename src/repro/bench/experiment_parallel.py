"""Serial vs morsel-parallel batch executor (perf smoke + scaling gate).

Morsel-driven parallelism must be a pure optimization: identical result
sets, identical per-query page I/O (reads and pool misses) — only the
simulated-clock completion time may change. This harness runs the
scan-heavy analytics family and the one-to-many family once per worker
count on otherwise-identical databases (fresh :class:`PTLDB` per worker
setting, cold restart before every query) and verifies all of the above
per query before reporting speedups.

Speedup is measured on the simulated clock, because CI runs on however
many cores it happens to get (often one) and the engine charges device
time per page through :mod:`~repro.minidb.disk` anyway:

* serial cost of a query  = coordinator CPU time + simulated I/O time
  (``Session.last_cpu_ms`` + ``last_cost.simulated_io_ms``);
* parallel cost of a query = ``last_parallel["makespan_ms"]``: the
  coordinator's CPU + I/O plus, per gather, its *slowest* worker's
  CPU + simulated-I/O time (the critical path under the model that
  workers run concurrently — see docs/PERFORMANCE.md, "Parallel
  scaling").

CI runs it as a perf-smoke gate: the run **fails** if the top worker
count is below ``--min-speedup`` on either family, if any query's rows
differ from the serial run, or if any query's page-read/miss counts
differ. The JSON report (``BENCH_parallel.json`` in CI) carries the full
per-family, per-worker-count breakdown.

Usage::

    PYTHONPATH=src python -m repro.bench.experiment_parallel \
        --dataset Denver --scale paper --workers 1,2,4 \
        --out BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.workload import batch_workload
from repro.ptldb.framework import PTLDB

#: One-to-many target density (fraction of stops) and kNN table depth for
#: the benchmark target set. Density 0.5 is the paper's dense regime —
#: the OTM tables are large enough that per-query work dwarfs the fixed
#: per-gather costs.
OTM_DENSITY = 0.5
OTM_KMAX = 4

FAMILIES = ("analytics", "otm")


def _analytics_thunks(ptldb: PTLDB):
    """The scan-heavy analytics family: whole-table scans, grouped
    aggregates and UNNEST expansions over the connections table."""
    return [
        ("busiest_hubs", lambda: ptldb.busiest_hubs(10)),
        ("route_trip_stats", lambda: ptldb.route_trip_stats()),
        ("hourly_departures", lambda: ptldb.hourly_departures(3600)),
        ("route_leg_volume", lambda: ptldb.route_leg_volume()),
        ("network_span", lambda: ptldb.network_span()),
    ]


def _otm_thunks(ptldb: PTLDB, tag: str, timetable, n_queries: int, seed: int):
    queries = batch_workload(timetable, n=n_queries, seed=seed)
    return [
        (
            f"otm[{q.source}@{q.depart_at}]",
            lambda q=q: ptldb.ea_one_to_many(tag, q.source, q.depart_at),
        )
        for q in queries
    ]


def _build_ptldb(bundle, device: str, workers: int) -> tuple[PTLDB, str]:
    """A fresh database with *workers* parallel workers and the benchmark
    target set. Every worker count loads the same timetable and labels, so
    the only degree of freedom across runs is the executor's fan-out."""
    from repro.bench.experiments import _ensure_targets

    ptldb = PTLDB.from_timetable(
        bundle.timetable,
        device=device,
        labels=bundle.labels,
        parallel_workers=workers,
    )
    tag = _ensure_targets(
        ptldb, bundle.timetable, OTM_DENSITY, OTM_KMAX, ("otm_ea",)
    )
    return ptldb, tag


def _measure_query(db, call, repeats: int) -> dict:
    """One query, cold, best-of-*repeats*.

    Each repeat restarts the database (cold buffer pool — the page I/O is
    therefore identical across repeats) and keeps the *minimum* busy and
    makespan time: CPU-time noise from a shared host only ever adds, so
    the minimum is the robust estimator. The cyclic GC is parked during
    the measured call (and run to completion before it): a gen-2
    collection over the loaded labels takes milliseconds and lands in
    whichever thread happens to allocate, so with it enabled the critical
    path of a random gather absorbs a full collection that a serial run
    amortizes evenly — pure measurement noise, identical heap either way.
    """
    import gc

    out: dict = {"busy_ms": float("inf"), "makespan_ms": float("inf")}
    for _ in range(repeats):
        db.restart()
        gc.collect()
        gc.disable()
        try:
            value = call()
        finally:
            gc.enable()
        cost = db.last_cost
        busy = db.last_cpu_ms + (cost.simulated_io_ms if cost else 0.0)
        par = db.last_parallel
        makespan = busy if par is None else par["makespan_ms"]
        if "value" not in out:
            out["value"] = value
            out["io"] = (
                (cost.page_reads, cost.pool_misses) if cost else (0, 0)
            )
            out["gathers"] = 0 if par is None else par["gathers"]
            out["workers_seen"] = 0 if par is None else par["workers"]
        out["busy_ms"] = min(out["busy_ms"], busy)
        out["makespan_ms"] = min(out["makespan_ms"], makespan)
    return out


def _measure_family(dbs: dict[int, PTLDB], thunk_lists: dict, repeats: int):
    """Measure one family on every worker count, query-paired.

    The worker counts are interleaved *per query* — query i runs on the
    serial database, then on each parallel one, before query i+1 starts —
    so a noise burst on the host (another tenant, a frequency change)
    lands on every worker count's measurement of the same query instead
    of skewing one side of the speedup ratio."""
    runs = {
        count: {
            "values": [],
            "io": [],
            "busy_ms": 0.0,
            "makespan_ms": 0.0,
            "gathers": 0,
            "workers_seen": 0,
        }
        for count in dbs
    }
    for index in range(len(next(iter(thunk_lists.values())))):
        for count, ptldb in dbs.items():
            _name, call = thunk_lists[count][index]
            one = _measure_query(ptldb.db, call, repeats)
            run = runs[count]
            run["values"].append(one["value"])
            run["io"].append(one["io"])
            run["busy_ms"] += one["busy_ms"]
            run["makespan_ms"] += one["makespan_ms"]
            run["gathers"] += one["gathers"]
            run["workers_seen"] = max(
                run["workers_seen"], one["workers_seen"]
            )
    return runs


def run_parallel_experiment(
    dataset: str = "Denver",
    device: str = "ssd",
    scale: str = "paper",
    n_queries: int = 10,
    workers: tuple[int, ...] = (1, 2, 4),
    min_speedup: float = 1.8,
    repeats: int = 5,
    seed: int = 42,
) -> dict:
    from repro.bench.experiments import get_bundle

    workers = tuple(sorted(set(int(w) for w in workers)))
    if workers[0] != 1:
        workers = (1,) + workers
    bundle = get_bundle(dataset, scale)
    dbs: dict[int, PTLDB] = {}
    tags: dict[int, str] = {}
    runs: dict[int, dict[str, dict]] = {count: {} for count in workers}
    try:
        for count in workers:
            dbs[count], tags[count] = _build_ptldb(bundle, device, count)
        for family in FAMILIES:
            thunk_lists = {
                count: (
                    _analytics_thunks(ptldb)
                    if family == "analytics"
                    else _otm_thunks(
                        ptldb,
                        tags[count],
                        bundle.timetable,
                        n_queries,
                        seed,
                    )
                )
                for count, ptldb in dbs.items()
            }
            for count, run in _measure_family(
                dbs, thunk_lists, repeats
            ).items():
                runs[count][family] = run
    finally:
        for ptldb in dbs.values():
            ptldb.db.close()

    top = workers[-1]
    families = []
    for family in FAMILIES:
        serial = runs[1][family]
        scaling = []
        for count in workers:
            run = runs[count][family]
            scaling.append(
                {
                    "workers": count,
                    "makespan_ms": round(run["makespan_ms"], 3),
                    "busy_ms": round(run["busy_ms"], 3),
                    "gathers": run["gathers"],
                    "speedup": round(
                        serial["busy_ms"] / run["makespan_ms"], 2
                    )
                    if run["makespan_ms"] > 0
                    else 0.0,
                }
            )
        best = runs[top][family]
        speedup = (
            serial["busy_ms"] / best["makespan_ms"]
            if best["makespan_ms"] > 0
            else 0.0
        )
        checks = {
            "results_identical": all(
                runs[count][family]["values"] == serial["values"]
                for count in workers
            ),
            "page_io_identical": all(
                runs[count][family]["io"] == serial["io"]
                for count in workers
            ),
            "fanned_out": best["gathers"] > 0 and best["workers_seen"] > 1,
        }
        families.append(
            {
                "family": family,
                "queries": len(serial["values"]),
                "serial_busy_ms": round(serial["busy_ms"], 3),
                "scaling": scaling,
                "speedup": round(speedup, 2),
                **checks,
                "ok": (
                    checks["results_identical"]
                    and checks["page_io_identical"]
                    and checks["fanned_out"]
                    and speedup >= min_speedup
                ),
            }
        )
    return {
        "dataset": dataset,
        "device": device,
        "scale": scale,
        "workers": list(workers),
        "min_speedup": min_speedup,
        "repeats": repeats,
        "otm_density": OTM_DENSITY,
        "families": families,
        "ok": all(f["ok"] for f in families),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Serial vs morsel-parallel executor scaling gate "
            "(fails below --min-speedup at the top worker count)"
        )
    )
    parser.add_argument("--dataset", default="Denver")
    parser.add_argument("--scale", default="paper")
    parser.add_argument(
        "--device", default="ssd", choices=["hdd", "ssd", "ram"]
    )
    parser.add_argument(
        "--queries", type=int, default=10, help="one-to-many query count"
    )
    parser.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated worker counts (1 = the serial baseline)",
    )
    parser.add_argument("--min-speedup", type=float, default=1.8)
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="cold repeats per query (best-of, noise suppression)",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report here"
    )
    args = parser.parse_args(argv)
    report = run_parallel_experiment(
        args.dataset,
        device=args.device,
        scale=args.scale,
        n_queries=args.queries,
        workers=tuple(int(w) for w in args.workers.split(",")),
        min_speedup=args.min_speedup,
        repeats=args.repeats,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
    for fam in report["families"]:
        curve = " ".join(
            f"w{s['workers']}={s['speedup']:.2f}x" for s in fam["scaling"]
        )
        print(
            f"{fam['family']:9s} serial={fam['serial_busy_ms']:8.1f} ms  "
            f"{curve}  results_identical={fam['results_identical']} "
            f"page_io_identical={fam['page_io_identical']} ok={fam['ok']}"
        )
    if not report["ok"]:
        print("parallel perf smoke FAILED", file=sys.stderr)
        return 1
    print("parallel perf smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
