"""Benchmark harness: workloads, timing, experiment drivers, reports."""

from repro.bench.report import format_markdown, format_table, speedup
from repro.bench.runner import BenchResult, run_batch
from repro.bench.workload import (
    BatchQuery,
    V2VQuery,
    batch_workload,
    random_targets,
    v2v_workload,
)

__all__ = [
    "BatchQuery",
    "V2VQuery",
    "batch_workload",
    "random_targets",
    "v2v_workload",
    "BenchResult",
    "run_batch",
    "format_markdown",
    "format_table",
    "speedup",
]
