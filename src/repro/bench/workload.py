"""Query workload generation following the paper's protocol (§4).

"For each experiment, we used 1,000 random start vertices (and goal
vertices for vertex-to-vertex queries) ... Starting timestamps for EA and
SD queries are randomly selected from the first quarter of timestamp
ranges, whereas ending timestamps for LD and SD queries are randomly
selected from the fourth quarter of timestamp ranges."
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import BenchmarkError
from repro.timetable.model import Timetable


@dataclass(frozen=True)
class V2VQuery:
    source: int
    goal: int
    depart_at: int  # first-quartile timestamp (EA / SD)
    arrive_by: int  # fourth-quartile timestamp (LD / SD)


@dataclass(frozen=True)
class BatchQuery:
    """A kNN / one-to-many query instance."""

    source: int
    depart_at: int
    arrive_by: int


def _quartiles(low: int, high: int) -> tuple[tuple[int, int], tuple[int, int]]:
    span = high - low
    if span <= 4:
        raise BenchmarkError("timestamp range too small for quartile sampling")
    first = (low, low + span // 4)
    fourth = (low + 3 * span // 4, high)
    return first, fourth


def v2v_workload(
    timetable: Timetable, n: int = 1000, seed: int = 42
) -> list[V2VQuery]:
    """Random vertex-to-vertex queries per the paper's protocol."""
    rng = random.Random(seed)
    low, high = timetable.time_range()
    first, fourth = _quartiles(low, high)
    queries = []
    for _ in range(n):
        queries.append(
            V2VQuery(
                source=rng.randrange(timetable.num_stops),
                goal=rng.randrange(timetable.num_stops),
                depart_at=rng.randint(*first),
                arrive_by=rng.randint(*fourth),
            )
        )
    return queries


def batch_workload(
    timetable: Timetable, n: int = 1000, seed: int = 42
) -> list[BatchQuery]:
    """Random kNN / one-to-many query instances."""
    rng = random.Random(seed)
    low, high = timetable.time_range()
    first, fourth = _quartiles(low, high)
    return [
        BatchQuery(
            source=rng.randrange(timetable.num_stops),
            depart_at=rng.randint(*first),
            arrive_by=rng.randint(*fourth),
        )
        for _ in range(n)
    ]


def random_targets(
    timetable: Timetable, density: float, seed: int = 7, minimum: int = 2
) -> frozenset[int]:
    """``D * |V|`` random target stops (the paper's density parameter D).

    The scaled-down datasets have ~30-400 stops, so very low densities are
    floored at *minimum* targets to stay meaningful.
    """
    if not 0 < density <= 1:
        raise BenchmarkError(f"density must be in (0, 1], got {density}")
    count = max(minimum, round(density * timetable.num_stops))
    count = min(count, timetable.num_stops)
    rng = random.Random(seed)
    return frozenset(rng.sample(range(timetable.num_stops), count))
