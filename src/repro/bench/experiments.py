"""Experiment drivers: one function per table/figure of the paper's §4.

Each driver returns a list of result-row dicts and is consumed by

* the pytest-benchmark files under ``benchmarks/`` (timing kernels), and
* ``python -m repro.bench.run_all`` which regenerates EXPERIMENTS.md.

Dataset bundles (timetable + TTL labels) are cached per process because TTL
preprocessing is the expensive part of every experiment.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.bench.runner import run_batch
from repro.bench.workload import batch_workload, random_targets, v2v_workload
from repro.labeling.io import load_or_build
from repro.labeling.labels import TTLLabels
from repro.labeling.ttl import BuildReport, build_labels
from repro.ptldb.framework import PTLDB
from repro.timetable.datasets import DATASET_NAMES, load_dataset, paper_row
from repro.timetable.model import Timetable

# A diverse default subset for quick runs: lightest (Salt Lake City),
# densest (Madrid), largest (Sweden) plus two mid-range cities.
QUICK_DATASETS = ["Austin", "Denver", "Madrid", "Salt Lake City"]
FULL_DATASETS = list(DATASET_NAMES)

PAPER_DENSITIES = [0.001, 0.005, 0.01, 0.05, 0.1]
PAPER_KS = [1, 2, 4, 8, 16]


@dataclass
class DatasetBundle:
    name: str
    timetable: Timetable
    labels: TTLLabels
    report: BuildReport


_BUNDLES: dict[tuple[str, str], DatasetBundle] = {}
_PTLDBS: dict[tuple[str, str, str], PTLDB] = {}


def get_bundle(name: str, scale: str = "small") -> DatasetBundle:
    """Timetable + labels for one dataset, preprocessed at most once.

    Honors ``REPRO_LABEL_CACHE`` (a directory; labels persist across
    processes, keyed by the dataset digest) and
    ``REPRO_PREPROCESS_WORKERS`` (process-pool size for cache misses) so
    bench runs share preprocessing with the CLI — see docs/PREPROCESSING.md.
    """
    key = (name, scale)
    if key not in _BUNDLES:
        timetable = load_dataset(name, scale=scale)
        cache_dir = os.environ.get("REPRO_LABEL_CACHE") or None
        workers = int(os.environ.get("REPRO_PREPROCESS_WORKERS", "1") or 1)
        labels, report, _ = load_or_build(
            timetable, cache_dir=cache_dir, add_dummies=True, workers=workers
        )
        _BUNDLES[key] = DatasetBundle(name, timetable, labels, report)
    return _BUNDLES[key]


def get_ptldb(name: str, device: str = "hdd", scale: str = "small") -> PTLDB:
    """A cached PTLDB instance per (dataset, device)."""
    key = (name, scale, device)
    if key not in _PTLDBS:
        bundle = get_bundle(name, scale)
        _PTLDBS[key] = PTLDB.from_timetable(
            bundle.timetable, device=device, labels=bundle.labels
        )
    return _PTLDBS[key]


def clear_caches() -> None:
    _BUNDLES.clear()
    _PTLDBS.clear()


# ---------------------------------------------------------------------------
# Table 7 — dataset statistics and preprocessing time
# ---------------------------------------------------------------------------
def experiment_table7(datasets=None, scale: str = "small") -> list[dict]:
    rows = []
    for name in datasets or QUICK_DATASETS:
        bundle = get_bundle(name, scale)
        stats = bundle.timetable.stats()
        paper = paper_row(name)
        rows.append(
            {
                "dataset": name,
                "V": stats["stops"],
                "E": stats["connections"],
                "avg_degree": stats["avg_degree"],
                "HL_per_V": round(bundle.labels.tuples_per_vertex, 1),
                "preproc_s": round(bundle.report.seconds, 2),
                "paper_V": paper.stops,
                "paper_degree": paper.avg_degree,
                "paper_HL_per_V": paper.labels_per_vertex,
                "paper_preproc_s": paper.preprocessing_s,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 2 and 7 — vertex-to-vertex queries on HDD / SSD
# ---------------------------------------------------------------------------
def experiment_v2v(
    datasets=None,
    device: str = "hdd",
    n_queries: int = 200,
    scale: str = "small",
    seed: int = 42,
) -> list[dict]:
    rows = []
    for name in datasets or QUICK_DATASETS:
        bundle = get_bundle(name, scale)
        ptldb = get_ptldb(name, device, scale)
        queries = v2v_workload(bundle.timetable, n=n_queries, seed=seed)
        ea = run_batch(
            ptldb,
            f"{name}/EA/{device}",
            (
                (lambda q=q: ptldb.earliest_arrival(q.source, q.goal, q.depart_at))
                for q in queries
            ),
        )
        ld = run_batch(
            ptldb,
            f"{name}/LD/{device}",
            (
                (lambda q=q: ptldb.latest_departure(q.source, q.goal, q.arrive_by))
                for q in queries
            ),
        )
        sd = run_batch(
            ptldb,
            f"{name}/SD/{device}",
            (
                (
                    lambda q=q: ptldb.shortest_duration(
                        q.source, q.goal, q.depart_at, q.arrive_by
                    )
                )
                for q in queries
            ),
        )
        rows.append(
            {
                "dataset": name,
                "device": device,
                "EA_ms": round(ea.avg_total_ms, 3),
                "LD_ms": round(ld.avg_total_ms, 3),
                "SD_ms": round(sd.avg_total_ms, 3),
                "EA_io_ms": round(ea.avg_io_ms, 3),
                "EA_cpu_ms": round(ea.avg_cpu_ms, 3),
                "empty": ea.empty_results + ld.empty_results + sd.empty_results,
            }
        )
    return rows


def experiment_prepared(
    dataset: str = "Austin",
    device: str = "hdd",
    n_queries: int = 200,
    scale: str = "small",
    seed: int = 42,
) -> list[dict]:
    """Prepared-statement effect on the EA v2v batch.

    The prepared batch runs through the framework's prepared handles, so
    after the first execution every query is a plan-cache hit (zero parse /
    analyze / plan work). The unprepared baseline clears the plan cache
    before every call, forcing the full front half of the pipeline each
    time. Page I/O is identical in both, so the CPU column isolates the
    planning overhead. The ``batched_cpu_ms`` column additionally runs the
    whole workload through ``PreparedStatement.execute_many`` — one plan
    probe and one statement-latch acquisition for the entire batch — which
    amortizes the remaining per-``execute`` fixed costs."""
    from repro.ptldb import sqltext

    bundle = get_bundle(dataset, scale)
    ptldb = get_ptldb(dataset, device, scale)
    queries = v2v_workload(bundle.timetable, n=n_queries, seed=seed)
    prepared = run_batch(
        ptldb,
        f"{dataset}/EA-prepared/{device}",
        (
            (lambda q=q: ptldb.earliest_arrival(q.source, q.goal, q.depart_at))
            for q in queries
        ),
    )

    def _unprepared_call(q):
        ptldb.db._plan_cache.clear()
        return ptldb.earliest_arrival(q.source, q.goal, q.depart_at)

    unprepared = run_batch(
        ptldb,
        f"{dataset}/EA-unprepared/{device}",
        ((lambda q=q: _unprepared_call(q)) for q in queries),
    )
    speedup = (
        unprepared.avg_cpu_ms / prepared.avg_cpu_ms
        if prepared.avg_cpu_ms
        else 0.0
    )
    # Batched binding: one plan-cache probe + one latch acquisition for the
    # whole workload, so the per-call amortized cost is pure execution.
    stmt = ptldb.db.prepare(sqltext.V2V_EA)
    param_rows = [(q.source, q.goal, q.depart_at) for q in queries]
    ptldb.restart()
    started = time.perf_counter()
    batched_results = stmt.execute_many(param_rows)
    batched_ms = (time.perf_counter() - started) * 1000.0
    batched_cpu_ms = batched_ms / max(len(param_rows), 1)
    assert len(batched_results) == len(param_rows)
    return [
        {
            "dataset": dataset,
            "device": device,
            "prepared_cpu_ms": round(prepared.avg_cpu_ms, 3),
            "unprepared_cpu_ms": round(unprepared.avg_cpu_ms, 3),
            "batched_cpu_ms": round(batched_cpu_ms, 3),
            "plan_cache_hit_rate": prepared.plan_cache.get("hit_rate", 0.0),
            "cpu_speedup": round(speedup, 2),
            "batched_speedup": round(
                prepared.avg_cpu_ms / batched_cpu_ms if batched_cpu_ms else 0.0,
                2,
            ),
        }
    ]


# ---------------------------------------------------------------------------
# kNN experiments (Figures 3, 4, 5, 8)
# ---------------------------------------------------------------------------
def _ensure_targets(
    ptldb: PTLDB,
    timetable: Timetable,
    density: float,
    kmax: int,
    families: tuple[str, ...],
    interval_s: int = 3600,
    seed: int = 7,
) -> str:
    """Build (or reuse) the aux tables for one (D, kmax) configuration."""
    tag = f"d{str(density).replace('.', '_')}_k{kmax}_i{interval_s}"
    existing = ptldb._handles.get(tag)
    if existing is not None:
        missing = tuple(f for f in families if f not in existing.built)
        if not missing:
            return tag
        targets = existing.targets
        previously_built = set(existing.built)
    else:
        missing = families
        targets = random_targets(timetable, density, seed=seed)
        previously_built = set()
    ptldb.build_target_set(
        tag, targets, kmax=kmax, interval_s=interval_s, families=missing
    )
    ptldb.handle(tag).built.update(previously_built)
    return tag


def experiment_knn(
    datasets=None,
    device: str = "hdd",
    density: float = 0.01,
    ks=(1, 2, 4, 8, 16),
    n_queries: int = 100,
    scale: str = "small",
    naive: bool = False,
    seed: int = 42,
) -> list[dict]:
    """EA/LD kNN times for varying k (Figure 4; Figure 8 with device=ssd;
    with ``naive=True`` also runs Code 2 and reports speedups — Figure 3)."""
    rows = []
    for name in datasets or QUICK_DATASETS:
        bundle = get_bundle(name, scale)
        ptldb = get_ptldb(name, device, scale)
        queries = batch_workload(bundle.timetable, n=n_queries, seed=seed)
        for k in ks:
            kmax = 4 if k <= 4 else 16
            families = ["knn_ea", "knn_ld"]
            if naive:
                families += ["naive_ea", "naive_ld"]
            tag = _ensure_targets(
                ptldb, bundle.timetable, density, kmax, tuple(families)
            )
            ea = run_batch(
                ptldb,
                f"{name}/EA-kNN/k={k}",
                (
                    (lambda q=q: ptldb.ea_knn(tag, q.source, q.depart_at, k))
                    for q in queries
                ),
            )
            ld = run_batch(
                ptldb,
                f"{name}/LD-kNN/k={k}",
                (
                    (lambda q=q: ptldb.ld_knn(tag, q.source, q.arrive_by, k))
                    for q in queries
                ),
            )
            row = {
                "dataset": name,
                "device": device,
                "D": density,
                "k": k,
                "EA_kNN_ms": round(ea.avg_total_ms, 3),
                "LD_kNN_ms": round(ld.avg_total_ms, 3),
            }
            if naive:
                ea_naive = run_batch(
                    ptldb,
                    f"{name}/EA-kNN-naive/k={k}",
                    (
                        (
                            lambda q=q: ptldb.ea_knn_naive(
                                tag, q.source, q.depart_at, k
                            )
                        )
                        for q in queries
                    ),
                )
                ld_naive = run_batch(
                    ptldb,
                    f"{name}/LD-kNN-naive/k={k}",
                    (
                        (
                            lambda q=q: ptldb.ld_knn_naive(
                                tag, q.source, q.arrive_by, k
                            )
                        )
                        for q in queries
                    ),
                )
                row["EA_naive_ms"] = round(ea_naive.avg_total_ms, 3)
                row["LD_naive_ms"] = round(ld_naive.avg_total_ms, 3)
                row["EA_speedup"] = round(
                    ea_naive.avg_total_ms / max(ea.avg_total_ms, 1e-9), 1
                )
                row["LD_speedup"] = round(
                    ld_naive.avg_total_ms / max(ld.avg_total_ms, 1e-9), 1
                )
            rows.append(row)
    return rows


def experiment_knn_density(
    datasets=None,
    device: str = "hdd",
    densities=PAPER_DENSITIES,
    k: int = 4,
    n_queries: int = 100,
    scale: str = "small",
    seed: int = 42,
) -> list[dict]:
    """Figure 5: kNN for k=4 and varying density D."""
    rows = []
    for name in datasets or QUICK_DATASETS:
        bundle = get_bundle(name, scale)
        ptldb = get_ptldb(name, device, scale)
        queries = batch_workload(bundle.timetable, n=n_queries, seed=seed)
        for density in densities:
            tag = _ensure_targets(
                ptldb, bundle.timetable, density, 4, ("knn_ea", "knn_ld")
            )
            ea = run_batch(
                ptldb,
                f"{name}/EA-kNN/D={density}",
                (
                    (lambda q=q: ptldb.ea_knn(tag, q.source, q.depart_at, k))
                    for q in queries
                ),
            )
            ld = run_batch(
                ptldb,
                f"{name}/LD-kNN/D={density}",
                (
                    (lambda q=q: ptldb.ld_knn(tag, q.source, q.arrive_by, k))
                    for q in queries
                ),
            )
            rows.append(
                {
                    "dataset": name,
                    "device": device,
                    "D": density,
                    "k": k,
                    "EA_kNN_ms": round(ea.avg_total_ms, 3),
                    "LD_kNN_ms": round(ld.avg_total_ms, 3),
                }
            )
    return rows


def experiment_otm(
    datasets=None,
    device: str = "hdd",
    densities=PAPER_DENSITIES,
    n_queries: int = 50,
    scale: str = "small",
    seed: int = 42,
) -> list[dict]:
    """Figure 6: EA/LD one-to-many for varying density D."""
    rows = []
    for name in datasets or QUICK_DATASETS:
        bundle = get_bundle(name, scale)
        ptldb = get_ptldb(name, device, scale)
        queries = batch_workload(bundle.timetable, n=n_queries, seed=seed)
        for density in densities:
            tag = _ensure_targets(
                ptldb, bundle.timetable, density, 4, ("otm_ea", "otm_ld")
            )
            ea = run_batch(
                ptldb,
                f"{name}/EA-OTM/D={density}",
                (
                    (lambda q=q: ptldb.ea_one_to_many(tag, q.source, q.depart_at))
                    for q in queries
                ),
            )
            ld = run_batch(
                ptldb,
                f"{name}/LD-OTM/D={density}",
                (
                    (lambda q=q: ptldb.ld_one_to_many(tag, q.source, q.arrive_by))
                    for q in queries
                ),
            )
            rows.append(
                {
                    "dataset": name,
                    "device": device,
                    "D": density,
                    "EA_OTM_ms": round(ea.avg_total_ms, 3),
                    "LD_OTM_ms": round(ld.avg_total_ms, 3),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# §4.3 — storage footprint
# ---------------------------------------------------------------------------
def experiment_storage(datasets=None, scale: str = "small") -> list[dict]:
    rows = []
    for name in datasets or QUICK_DATASETS:
        ptldb = get_ptldb(name, "ram", scale)
        bundle = get_bundle(name, scale)
        # make sure a representative aux family exists
        _ensure_targets(
            ptldb, bundle.timetable, 0.05, 4, ("knn_ea", "knn_ld", "otm_ea", "otm_ld")
        )
        report = ptldb.storage_report()
        rows.append(
            {
                "dataset": name,
                "tables": len(report["tables"]),
                "total_pages": report["total_pages"],
                "total_MiB": round(report["total_bytes"] / (1024 * 1024), 2),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md extensions)
# ---------------------------------------------------------------------------
def experiment_interval_ablation(
    dataset: str = "Madrid",
    intervals=(1800, 3600, 10800),
    density: float = 0.05,
    k: int = 4,
    n_queries: int = 50,
    scale: str = "small",
    seed: int = 42,
) -> list[dict]:
    """§3.2.1: the one-hour grouping interval vs smaller/larger intervals."""
    bundle = get_bundle(dataset, scale)
    ptldb = get_ptldb(dataset, "hdd", scale)
    queries = batch_workload(bundle.timetable, n=n_queries, seed=seed)
    rows = []
    for interval in intervals:
        tag = _ensure_targets(
            ptldb, bundle.timetable, density, 4, ("knn_ea",), interval_s=interval
        )
        ea = run_batch(
            ptldb,
            f"{dataset}/EA-kNN/interval={interval}",
            (
                (lambda q=q: ptldb.ea_knn(tag, q.source, q.depart_at, k))
                for q in queries
            ),
        )
        table = ptldb.db.catalog.get(ptldb.handle(tag).aux.knn_ea)
        rows.append(
            {
                "dataset": dataset,
                "interval_s": interval,
                "EA_kNN_ms": round(ea.avg_total_ms, 3),
                "table_rows": table.row_count,
                "heap_pages": len(table.heap.page_ids()),
            }
        )
    return rows


def experiment_ordering_ablation(
    dataset: str = "Austin",
    orderings=("event_degree", "neighbor_degree", "hub_sample", "random"),
    scale: str = "small",
) -> list[dict]:
    """Effect of the vertex-ordering strategy on label size and build time."""
    timetable = load_dataset(dataset, scale=scale)
    rows = []
    for ordering in orderings:
        started = time.perf_counter()
        labels, report = build_labels(timetable, ordering=ordering)
        rows.append(
            {
                "dataset": dataset,
                "ordering": ordering,
                "HL_per_V": round(labels.tuples_per_vertex, 1),
                "preproc_s": round(time.perf_counter() - started, 2),
                "pruned": report.pruned_tuples,
            }
        )
    return rows


def experiment_transfers(
    dataset: str = "Austin",
    max_trips: int = 3,
    n_queries: int = 100,
    scale: str = "small",
    seed: int = 42,
) -> list[dict]:
    """Future-work extension: transfer-bounded queries.

    Reports label size / build time of the transfer-aware labeling and, per
    trips budget, the SQL query time plus the measured exactness rate
    against the round-limited CSA oracle.
    """
    import random

    from repro.transfers import (
        TransferPTLDB,
        build_transfer_labels,
        earliest_arrival_bounded,
    )

    bundle = get_bundle(dataset, scale)
    labels, build = build_transfer_labels(
        bundle.timetable, max_trips=max_trips, add_dummies=True
    )
    ptldb = TransferPTLDB.from_timetable(
        bundle.timetable, device="hdd", labels=labels
    )
    rng = random.Random(seed)
    queries = v2v_workload(bundle.timetable, n=n_queries, seed=seed)
    rows = []
    for budget in range(1, max_trips + 1):
        batch = run_batch(
            _PtldbShim(ptldb),
            f"{dataset}/EA<=${budget}trips",
            (
                (
                    lambda q=q: ptldb.earliest_arrival(
                        q.source, q.goal, q.depart_at, budget
                    )
                )
                for q in queries
            ),
            cold_start=False,
        )
        sample = rng.sample(queries, min(30, len(queries)))
        exact = sum(
            1
            for q in sample
            if q.source == q.goal
            or ptldb.earliest_arrival(q.source, q.goal, q.depart_at, budget)
            == earliest_arrival_bounded(
                bundle.timetable, q.source, q.goal, q.depart_at, budget
            )
        )
        rows.append(
            {
                "dataset": dataset,
                "max_trips": budget,
                "EA_ms": round(batch.avg_total_ms, 3),
                "exact_rate": round(exact / len(sample), 3),
                "label_tuples_per_V": round(labels.tuples_per_vertex, 1),
                "build_s": round(build.seconds, 2),
            }
        )
    return rows


class _PtldbShim:
    """Adapts TransferPTLDB to run_batch's restart/cost interface."""

    def __init__(self, inner):
        self.db = inner.db

    def restart(self) -> None:
        self.db.restart()


def experiment_bufferpool_ablation(
    dataset: str = "Madrid",
    pool_sizes=(16, 64, 256, 4096),
    n_queries: int = 100,
    scale: str = "small",
    seed: int = 42,
) -> list[dict]:
    """Cold vs warm cache: EA v2v time as the buffer pool shrinks."""
    bundle = get_bundle(dataset, scale)
    rows = []
    for pool_pages in pool_sizes:
        ptldb = PTLDB.from_timetable(
            bundle.timetable, device="hdd", pool_pages=pool_pages, labels=bundle.labels
        )
        queries = v2v_workload(bundle.timetable, n=n_queries, seed=seed)
        ea = run_batch(
            ptldb,
            f"{dataset}/EA/pool={pool_pages}",
            (
                (lambda q=q: ptldb.earliest_arrival(q.source, q.goal, q.depart_at))
                for q in queries
            ),
        )
        rows.append(
            {
                "dataset": dataset,
                "pool_pages": pool_pages,
                "EA_ms": round(ea.avg_total_ms, 3),
                "EA_io_ms": round(ea.avg_io_ms, 3),
                "page_reads": ea.page_reads,
            }
        )
    return rows
