"""Columnar labels + numpy kernels vs the PR-5 executor (perf + footprint gate).

Two PTLDB instances are loaded from the same preprocessed bundle:

* **baseline** — ``STORAGE=row`` label/aux tables and
  ``numpy_batches=False``: the batch executor moving ``list[tuple]``
  chunks, exactly the PR-5 configuration.
* **candidate** — ``STORAGE=COLUMNAR`` tables and ``numpy_batches=True``:
  delta-compressed column segments decoded straight into int64 ndarrays
  and the numpy batch kernels (docs/STORAGE.md, docs/PERFORMANCE.md).

Both run the same v2v / kNN / one-to-many workloads and must return
identical results; the run **fails** unless the candidate is at least
``--min-speedup`` (default 2x) faster on CPU on every family, and unless
the candidate's label-table bytes are at most ``--max-bytes-ratio``
(default 0.6x) of the baseline's.

The speedup gate needs label arrays long enough for the numpy decode to
matter, which is why the default configuration is the paper-scale Madrid
feed with a dense target set (``k=16``, target density 0.1) — smaller
feeds stay correct but their per-hub arrays sit below the
``NP_DECODE_MIN`` crossover and the measured ratio shrinks with them.

Usage::

    PYTHONPATH=src python -m repro.bench.experiment_columnar \
        --queries 60 --out BENCH_columnar.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.runner import run_batch
from repro.bench.workload import batch_workload, v2v_workload
from repro.minidb.values import is_array_type
from repro.ptldb.framework import PTLDB

FAMILIES = ("v2v", "knn", "otm")
#: Label tables proper (the aux target tables are derived from them).
LABEL_TABLES = ("lout", "lin")


def _build(bundle, device: str, storage: str, numpy_batches: bool,
           density: float, kmax: int):
    """One fully loaded PTLDB + target-set tag for the given configuration."""
    from repro.bench.experiments import _ensure_targets

    ptldb = PTLDB.from_timetable(
        bundle.timetable,
        device=device,
        labels=bundle.labels,
        storage=storage,
        numpy_batches=numpy_batches,
    )
    tag = _ensure_targets(
        ptldb, bundle.timetable, density, kmax, ("knn_ea", "otm_ea")
    )
    return ptldb, tag


def _thunks(ptldb: PTLDB, tag: str, timetable, k: int, n_queries: int,
            seed: int) -> dict:
    v2v = v2v_workload(timetable, n=n_queries, seed=seed)
    batch = batch_workload(timetable, n=n_queries, seed=seed + 1)
    return {
        "v2v": [
            (lambda q=q: ptldb.earliest_arrival(q.source, q.goal, q.depart_at))
            for q in v2v
        ],
        "knn": [
            (lambda q=q: ptldb.ea_knn(tag, q.source, q.depart_at, k))
            for q in batch
        ],
        "otm": [
            (lambda q=q: ptldb.ea_one_to_many(tag, q.source, q.depart_at))
            for q in batch
        ],
    }


def _measure(ptldb: PTLDB, name: str, thunks, warmup: int):
    """Run the family, returning (BenchResult, per-query result values).

    ``warmup`` unmeasured passes come first (prepared-statement compile,
    plan cache, branch-predictor warmth); the measured pass then starts
    from a cold buffer pool like every other bench in this repo.
    """
    for _ in range(warmup):
        for thunk in thunks:
            thunk()
    values: list = []

    def observed(call):
        def wrapped():
            value = call()
            values.append(value)
            return value

        return wrapped

    result = run_batch(
        ptldb, name, (observed(t) for t in thunks), registry=None
    )
    return result, values


def label_bytes(ptldb: PTLDB) -> dict[str, int]:
    """Stored record bytes of every array-bearing table (labels + aux)."""
    catalog = ptldb.db.catalog
    out = {}
    for name in catalog.table_names():
        table = catalog.get(name)
        if any(is_array_type(col.type_tag) for col in table.schema.columns):
            out[name] = table.data_bytes
    return out


def _label_count(ptldb: PTLDB) -> int:
    """Total label entries (one (hub, t) pair) across lout and lin."""
    total = 0
    for name in LABEL_TABLES:
        table = ptldb.db.catalog.get(name)
        hubs = [c.name for c in table.schema.columns].index("hubs")
        total += sum(len(row[hubs]) for row in table.scan())
    return total


def _footprint_report(base: PTLDB, cand: PTLDB, max_ratio: float) -> dict:
    base_bytes = label_bytes(base)
    cand_bytes = label_bytes(cand)
    base_total = sum(base_bytes.values())
    cand_total = sum(cand_bytes.values())
    labels = _label_count(base)
    ratio = cand_total / base_total if base_total else 0.0
    return {
        "row_bytes": base_total,
        "columnar_bytes": cand_total,
        "bytes_ratio": round(ratio, 4),
        "max_bytes_ratio": max_ratio,
        "label_entries": labels,
        "row_bytes_per_label": round(base_total / labels, 2) if labels else 0.0,
        "columnar_bytes_per_label": (
            round(cand_total / labels, 2) if labels else 0.0
        ),
        "tables": {
            name: {"row": base_bytes[name], "columnar": cand_bytes[name]}
            for name in sorted(base_bytes)
        },
        "ok": ratio <= max_ratio,
    }


def run_columnar_experiment(
    dataset: str = "Madrid",
    scale: str = "paper",
    device: str = "ram",
    k: int = 16,
    density: float = 0.1,
    n_queries: int = 60,
    seed: int = 42,
    warmup: int = 1,
    min_speedup: float = 2.0,
    max_bytes_ratio: float = 0.6,
) -> dict:
    from repro.bench.experiments import get_bundle

    bundle = get_bundle(dataset, scale)
    kmax = 4 if k <= 4 else 16
    base, base_tag = _build(bundle, device, "row", False, density, kmax)
    cand, cand_tag = _build(bundle, device, "columnar", True, density, kmax)
    base_thunks = _thunks(base, base_tag, bundle.timetable, k, n_queries, seed)
    cand_thunks = _thunks(cand, cand_tag, bundle.timetable, k, n_queries, seed)

    families = []
    for family in FAMILIES:
        row, row_values = _measure(
            base, f"{dataset}/{family}/row-pr5", base_thunks[family], warmup
        )
        col, col_values = _measure(
            cand, f"{dataset}/{family}/columnar", cand_thunks[family], warmup
        )
        speedup = row.avg_cpu_ms / col.avg_cpu_ms if col.avg_cpu_ms else 0.0
        identical = row_values == col_values
        families.append(
            {
                "family": family,
                "queries": row.queries,
                "row_cpu_ms": round(row.avg_cpu_ms, 3),
                "columnar_cpu_ms": round(col.avg_cpu_ms, 3),
                "cpu_speedup": round(speedup, 2),
                "min_speedup": min_speedup,
                "results_identical": identical,
                "ok": identical and speedup >= min_speedup,
            }
        )
    footprint = _footprint_report(base, cand, max_bytes_ratio)
    return {
        "dataset": dataset,
        "scale": scale,
        "device": device,
        "k": k,
        "target_density": density,
        "queries_per_family": n_queries,
        "families": families,
        "footprint": footprint,
        "ok": footprint["ok"] and all(f["ok"] for f in families),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Columnar storage + numpy kernels vs the PR-5 list-of-tuples "
            "batch path (fails below the speedup/footprint gates)"
        )
    )
    parser.add_argument("--dataset", default="Madrid")
    parser.add_argument("--scale", default="paper")
    parser.add_argument("--device", default="ram", choices=["hdd", "ssd", "ram"])
    parser.add_argument("--k", type=int, default=16)
    parser.add_argument("--density", type=float, default=0.1)
    parser.add_argument("--queries", type=int, default=60, help="per family")
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--max-bytes-ratio", type=float, default=0.6)
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)
    report = run_columnar_experiment(
        args.dataset,
        scale=args.scale,
        device=args.device,
        k=args.k,
        density=args.density,
        n_queries=args.queries,
        warmup=args.warmup,
        min_speedup=args.min_speedup,
        max_bytes_ratio=args.max_bytes_ratio,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
    for fam in report["families"]:
        print(
            f"{fam['family']:4s} row={fam['row_cpu_ms']:8.3f} ms "
            f"columnar={fam['columnar_cpu_ms']:8.3f} ms "
            f"speedup={fam['cpu_speedup']:5.2f}x "
            f"(gate {fam['min_speedup']:.1f}x) "
            f"identical={fam['results_identical']} ok={fam['ok']}"
        )
    foot = report["footprint"]
    print(
        f"footprint: columnar {foot['columnar_bytes']} / "
        f"row {foot['row_bytes']} bytes = {foot['bytes_ratio']:.3f}x "
        f"(gate {foot['max_bytes_ratio']:.2f}x, "
        f"{foot['columnar_bytes_per_label']} vs "
        f"{foot['row_bytes_per_label']} bytes/label) ok={foot['ok']}"
    )
    if not report["ok"]:
        print("columnar perf/footprint gate FAILED", file=sys.stderr)
        return 1
    print("columnar perf/footprint gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
