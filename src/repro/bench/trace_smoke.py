"""Trace smoke check: one traced query per PTLDB query type.

Runs every query family (v2v EA/LD/SD, kNN naive + optimized, one-to-many)
against a small random timetable on the HDD device model and fails — exit
status 1 — if any query's :class:`~repro.minidb.metrics.QueryTrace` is
missing its expected operators or reports a negative counter. This is the
CI tripwire for the observability layer: a refactor that drops an
operator's instrumentation (or breaks delta attribution) turns every later
benchmark's stage breakdown silently wrong, so we fail fast here instead.

Usage::

    PYTHONPATH=src python -m repro.bench.trace_smoke
"""

from __future__ import annotations

import sys

from repro.bench.report import format_stage_breakdown
from repro.labeling.ttl import build_labels
from repro.ptldb.framework import PTLDB
from repro.timetable.generator import random_timetable

#: operator names that must appear in each query type's trace
EXPECTED_OPERATORS = {
    "v2v_ea": {"CTE", "Index Scan", "ProjectSet", "Hash Join", "Aggregate"},
    "v2v_ld": {"CTE", "Index Scan", "ProjectSet", "Hash Join", "Aggregate"},
    "v2v_sd": {"CTE", "Index Scan", "ProjectSet"},
    "knn_ea_naive": {"Seq Scan", "Top-K Sort"},
    "knn_ld_naive": {"Seq Scan", "Top-K Sort"},
    "knn_ea": {"Index Nested Loop", "Top-K Sort"},
    "knn_ld": {"Index Nested Loop", "Top-K Sort"},
    "otm_ea": {"Index Nested Loop", "GroupAggregate"},
    "otm_ld": {"Index Nested Loop", "GroupAggregate"},
}


def build_fixture() -> PTLDB:
    timetable = random_timetable(18, 160, seed=11)
    labels, _ = build_labels(timetable, add_dummies=True)
    ptldb = PTLDB.from_timetable(timetable, device="hdd", labels=labels)
    ptldb.build_target_set(
        "smoke",
        targets={1, 4, 9, 13, 16},
        kmax=4,
        families=(
            "knn_ea", "knn_ld", "otm_ea", "otm_ld", "naive_ea", "naive_ld",
        ),
    )
    return ptldb


def query_calls(ptldb: PTLDB) -> dict:
    """One representative zero-arg call per query type."""
    noon = 12 * 3600
    return {
        "v2v_ea": lambda: ptldb.earliest_arrival(2, 9, noon),
        "v2v_ld": lambda: ptldb.latest_departure(2, 9, 2 * noon),
        "v2v_sd": lambda: ptldb.shortest_duration(2, 9, 0, 2 * noon),
        "knn_ea_naive": lambda: ptldb.ea_knn_naive("smoke", 2, noon, 2),
        "knn_ld_naive": lambda: ptldb.ld_knn_naive("smoke", 2, 2 * noon, 2),
        "knn_ea": lambda: ptldb.ea_knn("smoke", 2, noon, 2),
        "knn_ld": lambda: ptldb.ld_knn("smoke", 2, 2 * noon, 2),
        "otm_ea": lambda: ptldb.ea_one_to_many("smoke", 2, noon),
        "otm_ld": lambda: ptldb.ld_one_to_many("smoke", 2, 2 * noon),
    }


def check_trace(name: str, trace) -> list[str]:
    """All problems with one query's trace (empty = sound)."""
    if trace is None:
        return [f"{name}: no trace recorded"]
    problems = [f"{name}: {p}" for p in trace.validate()]
    present = {op.name for op in trace.operators()}
    for required in sorted(EXPECTED_OPERATORS[name]):
        if required not in present:
            problems.append(
                f"{name}: expected operator {required!r} missing "
                f"(trace has {sorted(present)})"
            )
    return problems


def check_prepared(ptldb: PTLDB) -> list[str]:
    """Plan-cache smoke: repeat v2v executions must be pure cache hits."""
    noon = 12 * 3600
    ptldb.earliest_arrival(2, 9, noon)  # ensure the entry is cached
    before = ptldb.db.plan_cache_stats()
    for _ in range(5):
        ptldb.earliest_arrival(2, 9, noon)
    after = ptldb.db.plan_cache_stats()
    problems = []
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    if hits != 5:
        problems.append(f"prepared: expected 5 plan-cache hits, got {hits}")
    if misses:
        problems.append(
            f"prepared: repeat executions re-planned ({misses} misses)"
        )
    return problems


def main(argv=None) -> int:
    args = list(argv or [])
    unknown = [a for a in args if a not in ("-q", "--quiet")]
    if unknown:
        print(f"error: unknown argument(s): {' '.join(unknown)}", file=sys.stderr)
        print("usage: python -m repro.bench.trace_smoke [-q]", file=sys.stderr)
        return 2
    verbose = not args
    ptldb = build_fixture()
    failures: list[str] = []
    for name, call in query_calls(ptldb).items():
        ptldb.restart()
        call()
        trace = ptldb.last_trace
        problems = check_trace(name, trace)
        failures.extend(problems)
        if verbose:
            status = "FAIL" if problems else "ok"
            detail = (
                f"{len(list(trace.operators()))} operators, "
                f"misses={trace.pool_misses}, io={trace.io_ms:.2f} ms"
                if trace is not None
                else "no trace"
            )
            print(f"{status:4s} {name:14s} {detail}")
            if not problems and trace is not None:
                print(format_stage_breakdown(trace.stage_totals()))
    prepared_problems = check_prepared(ptldb)
    failures.extend(prepared_problems)
    if verbose:
        status = "FAIL" if prepared_problems else "ok"
        print(f"{status:4s} {'prepared':14s} plan-cache hit batch")
    if failures:
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return 1
    if verbose:
        print(f"all {len(EXPECTED_OPERATORS)} query types traced cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
