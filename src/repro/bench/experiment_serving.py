"""Sharded multi-process serving: saturation grid + recovery drill.

PR-4's concurrency experiment established the single-process ceiling: client
threads over one in-process database stop scaling at the interpreter lock.
This experiment serves the same mixed v2v / kNN / one-to-many workload
through the process tier (:mod:`repro.serving`) instead and sweeps a
**processes x shards grid** — for each shard count, shard files are built
once and a router fans client threads out over one worker process per shard
(x replicas). Reported per cell: wall-clock throughput, latency
percentiles, admission-control rejections and result-cache hits; every
answer is compared against the sequential single-process reference, so a
wrong scatter/gather merge fails the run rather than flattering it.

The headline number is ``speedup_vs_single_process``: best grid throughput
over the PR-4 ceiling (:func:`~repro.bench.experiment_concurrency.
single_process_ceiling`), both measured by the same wall-clock driver over
the same workload. The workload replays its query set ``repeats`` times —
a hot serving mix — because the tier's advantage has two components and
only one of them needs spare cores: worker processes sidestep the
interpreter lock (visible when ``cpu_count`` > 1, reported for context),
and the router's result cache answers repeats without touching a worker at
all (visible everywhere). Every answer, cached or not, is still checked
against the reference.

The **recovery drill** proves the durability story end to end: commit a row
through a worker, SIGKILL that worker before any checkpoint, respawn it on
the same shard file, and require (a) the row back — WAL replay, not luck —
and (b) query answers over the respawned fleet byte-identical to the
reference. Reattach time is reported spawn-to-ready.

Usage::

    PYTHONPATH=src python -m repro.bench.experiment_serving \
        --shards 1,2 --threads 2,4 --queries 40 --out serving.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

from repro.bench.experiment_concurrency import (
    TAG,
    build_fixture,
    build_workload,
    run_query,
    run_wall_clock,
    single_process_ceiling,
)
from repro.bench.workload import random_targets
from repro.errors import WorkerDiedError
from repro.serving import Router, build_shards

def build_serving_manifest(
    directory: str,
    timetable,
    labels,
    num_shards: int,
    k: int,
    density: float,
):
    """Shard files for *labels* with the bench's target set, ready to serve."""
    targets = random_targets(timetable, density=density, seed=7)
    return build_shards(
        directory,
        labels,
        num_shards,
        target_sets=[
            {
                "tag": TAG,
                "targets": sorted(targets),
                "kmax": max(k, 1),
                "families": ["knn_ea", "otm_ea"],
            }
        ],
        device="ram",
    )


def run_grid_cell(
    manifest,
    items,
    reference,
    client_threads: int,
    replicas: int = 1,
    max_queue_depth: int = 8,
) -> dict:
    """One saturation-grid cell: a fresh router, *client_threads* drivers."""
    with Router(
        manifest, replicas=replicas, max_queue_depth=max_queue_depth
    ) as router:
        run = run_wall_clock(lambda: router, items, reference, client_threads)
        cache = router.cache_stats()
    run.update(
        {
            "shards": manifest.num_shards,
            "replicas": replicas,
            "processes": manifest.num_shards * replicas,
            "cache_hits": cache["hits"],
            "cache_misses": cache["misses"],
        }
    )
    return run


def run_recovery_drill(manifest, items, reference) -> dict:
    """SIGKILL a worker mid-load and prove WAL-replay recovery.

    Sequence: commit a marker row through shard 0 (WAL-committed, never
    checkpointed), replay a load slice, SIGKILL shard 0's worker, confirm
    routed queries fail fast, respawn on the same file, and require the
    marker row back plus reference-identical answers from the full fleet.
    """
    with Router(manifest) as router:
        router.execute(
            "CREATE TABLE drill_marker (k BIGINT, v BIGINT, PRIMARY KEY (k))",
            shard=0,
        )
        router.execute("INSERT INTO drill_marker VALUES (1, 42)", shard=0)
        # Warm load so the kill lands on a working fleet, not an idle one.
        for item in items[: max(1, len(items) // 2)]:
            run_query(router, item)
        router.kill_worker(0)
        failed_fast = False
        try:
            # Shard 0 owns vertex 0, so this must route to the dead worker.
            router.earliest_arrival(1, 0, 30000)
        except WorkerDiedError:
            failed_fast = True
        timing = router.respawn_worker(0)
        rows = router.execute("SELECT k, v FROM drill_marker", shard=0)
        wal_recovered = rows == [[1, 42]]
        router.execute("DROP TABLE drill_marker", shard=0)
        mismatches = sum(
            1
            for index, item in enumerate(items)
            if run_query(router, item) != reference[index]
        )
    return {
        "failed_fast": failed_fast,
        "reattach_seconds": round(timing["reattach_seconds"], 4),
        "open_seconds": round(timing["open_seconds"], 4),
        "wal_recovered": wal_recovered,
        "post_respawn_mismatches": mismatches,
        "ok": failed_fast and wal_recovered and mismatches == 0,
    }


def run_serving_tier_experiment(
    dataset: str = "Austin",
    scale: str = "small",
    shard_counts: tuple[int, ...] = (1, 2),
    client_threads: tuple[int, ...] = (2, 4),
    replicas: int = 1,
    queries: int = 40,
    repeats: int = 3,
    k: int = 2,
    density: float = 0.1,
    max_queue_depth: int = 8,
    seed: int = 17,
    timetable=None,
    workdir: str | None = None,
) -> dict:
    """The full experiment: ceiling, grid, recovery drill, one report."""
    ptldb, timetable = build_fixture(
        dataset, "ram", scale, density, kmax=max(k, 1), timetable=timetable
    )
    items = build_workload(timetable, queries, k, seed)
    reference = [run_query(ptldb, item) for item in items]
    # The hot serving mix: the same query set replayed ``repeats`` times,
    # served identically to the ceiling run and the grid runs.
    items = items * max(1, repeats)
    reference = reference * max(1, repeats)
    ceiling = single_process_ceiling(
        ptldb, items, reference, thread_counts=tuple(sorted(set(client_threads)))
    )
    labels = ptldb.labels
    directory = workdir or tempfile.mkdtemp(prefix="repro_serving_")
    cells = []
    manifests = {}
    try:
        for num_shards in shard_counts:
            shard_dir = os.path.join(directory, f"shards_{num_shards}")
            build_started = time.perf_counter()
            manifest = build_serving_manifest(
                shard_dir, timetable, labels, num_shards, k, density
            )
            build_seconds = time.perf_counter() - build_started
            manifests[num_shards] = manifest
            for threads in client_threads:
                cell = run_grid_cell(
                    manifest,
                    items,
                    reference,
                    threads,
                    replicas=replicas,
                    max_queue_depth=max_queue_depth,
                )
                cell["build_seconds"] = round(build_seconds, 3)
                cells.append(cell)
        drill = run_recovery_drill(manifests[max(shard_counts)], items, reference)
    finally:
        if workdir is None:
            shutil.rmtree(directory, ignore_errors=True)
    best = max(cells, key=lambda cell: cell["throughput_qps"])
    speedup = (
        best["throughput_qps"] / ceiling["throughput_qps"]
        if ceiling["throughput_qps"]
        else 0.0
    )
    ok = (
        all(not cell["errors"] and cell["mismatches"] == 0 for cell in cells)
        and drill["ok"]
    )
    return {
        "experiment": "serving",
        "dataset": dataset,
        "queries": queries,
        "repeats": repeats,
        "total_queries": len(items),
        "cpu_count": os.cpu_count(),
        "k": k,
        "density": density,
        "replicas": replicas,
        "max_queue_depth": max_queue_depth,
        "single_process_ceiling": ceiling,
        "grid": cells,
        "best_cell": {
            "shards": best["shards"],
            "threads": best["threads"],
            "throughput_qps": best["throughput_qps"],
        },
        "speedup_vs_single_process": round(speedup, 3),
        "recovery_drill": drill,
        "ok": ok,
    }


def experiment_serving(
    datasets=None,
    shard_counts: tuple[int, ...] = (1, 2),
    client_threads: tuple[int, ...] = (2, 4),
    queries: int = 40,
    scale: str = "small",
) -> list[dict]:
    """CLI-table rows: one per (dataset, shards, client threads) cell."""
    rows = []
    for name in datasets or ["Austin"]:
        report = run_serving_tier_experiment(
            name,
            scale=scale,
            shard_counts=shard_counts,
            client_threads=client_threads,
            queries=queries,
        )
        for cell in report["grid"]:
            rows.append(
                {
                    "dataset": name,
                    "shards": cell["shards"],
                    "procs": cell["processes"],
                    "threads": cell["threads"],
                    "throughput_qps": cell["throughput_qps"],
                    "p95_ms": cell["p95_ms"],
                    "rejections": cell["backpressure_rejections"],
                    "ok": not cell["errors"] and cell["mismatches"] == 0,
                }
            )
        rows.append(
            {
                "dataset": name,
                "shards": "1proc",
                "procs": 1,
                "threads": report["single_process_ceiling"]["best_threads"],
                "throughput_qps": report["single_process_ceiling"]["throughput_qps"],
                "p95_ms": report["single_process_ceiling"]["p95_ms"],
                "rejections": 0,
                "ok": report["ok"],
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Sharded multi-process serving grid + recovery drill"
    )
    parser.add_argument("--dataset", default="Austin")
    parser.add_argument("--scale", default="small")
    parser.add_argument(
        "--shards", default="1,2", help="comma-separated shard counts"
    )
    parser.add_argument(
        "--threads", default="2,4", help="comma-separated client thread counts"
    )
    parser.add_argument("--replicas", type=int, default=1)
    parser.add_argument("--queries", type=int, default=40, help="unique queries")
    parser.add_argument(
        "--repeats", type=int, default=3, help="workload replay passes"
    )
    parser.add_argument("--depth", type=int, default=8, help="admission bound")
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)
    report = run_serving_tier_experiment(
        args.dataset,
        scale=args.scale,
        shard_counts=tuple(int(part) for part in args.shards.split(",")),
        client_threads=tuple(int(part) for part in args.threads.split(",")),
        replicas=args.replicas,
        queries=args.queries,
        repeats=args.repeats,
        max_queue_depth=args.depth,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
    ceiling = report["single_process_ceiling"]
    print(
        f"workload: {report['queries']} unique x {report['repeats']} passes "
        f"on {report['cpu_count']} core(s)"
    )
    print(
        f"single-process ceiling: {ceiling['throughput_qps']:.1f} q/s "
        f"at {ceiling['best_threads']} threads"
    )
    for cell in report["grid"]:
        print(
            f"shards={cell['shards']} procs={cell['processes']} "
            f"threads={cell['threads']:2d} "
            f"throughput={cell['throughput_qps']:.1f} q/s "
            f"p95={cell['p95_ms']:.1f} ms "
            f"rejections={cell['backpressure_rejections']} "
            f"mismatches={cell['mismatches']}"
        )
        for err in cell["errors"]:
            print(f"  ERROR {err}", file=sys.stderr)
    drill = report["recovery_drill"]
    print(
        f"recovery drill: failed_fast={drill['failed_fast']} "
        f"wal_recovered={drill['wal_recovered']} "
        f"reattach={drill['reattach_seconds']:.3f}s "
        f"(open {drill['open_seconds']:.3f}s) "
        f"mismatches={drill['post_respawn_mismatches']}"
    )
    print(f"speedup vs single process: {report['speedup_vs_single_process']:.2f}x")
    if not report["ok"]:
        print("serving experiment FAILED", file=sys.stderr)
        return 1
    print("serving experiment OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
