"""In-memory TTL query answering.

This is the "main memory algorithm" the paper contrasts PTLDB with: answers
EA / LD / SD vertex-to-vertex queries straight from the label sets using the
three TTL cases (paper §3.1), plus reference implementations of the four new
PTLDB queries (EA/LD kNN and one-to-many) used as oracles for the SQL
versions, and journey reconstruction.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import LabelingError
from repro.labeling.labels import TTLLabels
from repro.timetable.model import Connection, Timetable


def _group_by_hub(tuples) -> dict[int, list[tuple[int, int]]]:
    """hub -> [(td, ta), ...] sorted by td (arr is then non-decreasing,
    because per-(vertex, hub) tuple sets are Pareto)."""
    groups: dict[int, list[tuple[int, int]]] = {}
    for t in tuples:
        groups.setdefault(t.hub, []).append((t.td, t.ta))
    for pairs in groups.values():
        pairs.sort()
    return groups


class TTLQueryEngine:
    """Vertex-to-vertex and batched queries over a TTL labeling."""

    def __init__(self, labels: TTLLabels):
        self.labels = labels
        self._out_index = [_group_by_hub(t) for t in labels.lout]
        self._in_index = [_group_by_hub(t) for t in labels.lin]

    # ------------------------------------------------------------------
    def earliest_arrival(self, source: int, goal: int, depart_at: int) -> int | None:
        """EA(s, g, t): earliest arrival at g departing s no sooner than t."""
        if source == goal:
            return depart_at
        return self._ea_join(source, goal, depart_at)

    def _ea_join(self, source: int, goal: int, depart_at: int) -> int | None:
        """The three-case TTL evaluation, without the s == g shortcut.

        With dummy tuples present this reproduces PTLDB's SQL semantics
        exactly (a self-query answers with the next witnessed event at the
        stop, e.g. the paper's EA(1,1,324) = 324), which is what the batch
        kNN/OTM reference methods must match.
        """
        best: int | None = None
        # Case (i): Lout(s) tuples whose hub is g itself.
        for td, ta in self._out_index[source].get(goal, ()):
            if td >= depart_at:
                best = ta if best is None else min(best, ta)
                break  # arrivals are non-decreasing along the group
        # Case (ii): Lin(g) tuples whose hub is s itself.
        for td, ta in self._in_index[goal].get(source, ()):
            if td >= depart_at:
                best = ta if best is None else min(best, ta)
                break
        # Case (iii): two-hop join.
        in_goal = self._in_index[goal]
        for hub, out_pairs in self._out_index[source].items():
            in_pairs = in_goal.get(hub)
            if not in_pairs:
                continue
            idx = bisect_left(out_pairs, (depart_at, -1))
            if idx == len(out_pairs):
                continue
            transfer_at = out_pairs[idx][1]
            jdx = bisect_left(in_pairs, (transfer_at, -1))
            if jdx == len(in_pairs):
                continue
            arrival = in_pairs[jdx][1]
            best = arrival if best is None else min(best, arrival)
        return best

    def latest_departure(self, source: int, goal: int, arrive_by: int) -> int | None:
        """LD(s, g, t'): latest departure from s arriving at g by t'."""
        if source == goal:
            return arrive_by
        return self._ld_join(source, goal, arrive_by)

    def _ld_join(self, source: int, goal: int, arrive_by: int) -> int | None:
        """Three-case LD evaluation without the s == g shortcut."""
        best: int | None = None
        for td, ta in reversed(self._out_index[source].get(goal, ())):
            if ta <= arrive_by:
                best = td if best is None else max(best, td)
                break
        for td, ta in reversed(self._in_index[goal].get(source, ())):
            if ta <= arrive_by:
                best = td if best is None else max(best, td)
                break
        in_goal = self._in_index[goal]
        for hub, out_pairs in self._out_index[source].items():
            in_pairs = in_goal.get(hub)
            if not in_pairs:
                continue
            # Latest Lin(g) tuple arriving by t' (arrivals track departures).
            jdx = self._last_arriving_by(in_pairs, arrive_by)
            if jdx < 0:
                continue
            hub_departure = in_pairs[jdx][0]
            idx = self._last_arriving_by(out_pairs, hub_departure)
            if idx < 0:
                continue
            departure = out_pairs[idx][0]
            best = departure if best is None else max(best, departure)
        return best

    @staticmethod
    def _last_arriving_by(pairs: list[tuple[int, int]], bound: int) -> int:
        """Index of the last pair with ta <= bound (-1 if none); relies on
        arrivals being non-decreasing in td order."""
        lo, hi = 0, len(pairs)
        while lo < hi:
            mid = (lo + hi) // 2
            if pairs[mid][1] <= bound:
                lo = mid + 1
            else:
                hi = mid
        return lo - 1

    def shortest_duration(
        self, source: int, goal: int, depart_at: int, arrive_by: int
    ) -> int | None:
        """SD(s, g, t, t'): shortest journey inside the window."""
        if source == goal:
            return 0 if depart_at <= arrive_by else None
        best: int | None = None
        for td, ta in self._out_index[source].get(goal, ()):
            if td >= depart_at and ta <= arrive_by:
                duration = ta - td
                best = duration if best is None else min(best, duration)
        for td, ta in self._in_index[goal].get(source, ()):
            if td >= depart_at and ta <= arrive_by:
                duration = ta - td
                best = duration if best is None else min(best, duration)
        in_goal = self._in_index[goal]
        for hub, out_pairs in self._out_index[source].items():
            in_pairs = in_goal.get(hub)
            if not in_pairs:
                continue
            idx = bisect_left(out_pairs, (depart_at, -1))
            for td1, ta1 in out_pairs[idx:]:
                jdx = bisect_left(in_pairs, (ta1, -1))
                if jdx == len(in_pairs):
                    continue
                ta2 = in_pairs[jdx][1]
                if ta2 > arrive_by:
                    continue
                duration = ta2 - td1
                best = duration if best is None else min(best, duration)
        return best

    # ------------------------------------------------------------------
    # Reference implementations of the paper's four new query types.
    # ------------------------------------------------------------------
    def ea_one_to_many(
        self, source: int, targets, depart_at: int
    ) -> dict[int, int]:
        """EA-OTM(q, T, t): earliest arrival per reachable target."""
        out = {}
        for target in targets:
            value = self._ea_join(source, target, depart_at)
            if value is not None:
                out[target] = value
        return out

    def ld_one_to_many(
        self, source: int, targets, arrive_by: int
    ) -> dict[int, int]:
        """LD-OTM(q, T, t): latest departure per reachable target."""
        out = {}
        for target in targets:
            value = self._ld_join(source, target, arrive_by)
            if value is not None:
                out[target] = value
        return out

    def ea_knn(
        self, source: int, targets, depart_at: int, k: int
    ) -> list[tuple[int, int]]:
        """EA-kNN(q, T, t, k): the k targets with earliest arrival,
        ties broken by stop id (matching the SQL's ORDER BY ta, v)."""
        reachable = self.ea_one_to_many(source, targets, depart_at)
        ranked = sorted(reachable.items(), key=lambda item: (item[1], item[0]))
        return ranked[:k]

    def ld_knn(
        self, source: int, targets, arrive_by: int, k: int
    ) -> list[tuple[int, int]]:
        """LD-kNN(q, T, t, k): the k targets with latest departure."""
        reachable = self.ld_one_to_many(source, targets, arrive_by)
        ranked = sorted(reachable.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]


# ---------------------------------------------------------------------------
# Journey reconstruction
# ---------------------------------------------------------------------------
def reconstruct_journey(
    timetable: Timetable, source: int, goal: int, depart_at: int
) -> list[Connection] | None:
    """The actual connection sequence of an optimal EA journey.

    The paper stores no pivot/trip columns in PTLDB ("it would make more
    sense to store the expanded path"); this is that expansion, computed
    with a parent-tracking connection scan. Returns ``None`` when g is
    unreachable, ``[]`` when source == goal.
    """
    if source == goal:
        return []
    inf = float("inf")
    ea = [inf] * timetable.num_stops
    ea[source] = depart_at
    # For each improved stop: the connection that improved it and the
    # connection at which its trip was boarded.
    via: list[tuple[Connection, Connection] | None] = [None] * timetable.num_stops
    max_trip = max((c.trip for c in timetable.connections), default=-1)
    boarded: list[Connection | None] = [None] * (max_trip + 1)
    trip_legs: dict[int, list[Connection]] = {}
    for c in timetable.connections:
        trip_legs.setdefault(c.trip, []).append(c)
        if c.dep < depart_at:
            continue
        enter = boarded[c.trip]
        if enter is None and ea[c.u] <= c.dep:
            enter = c
        if enter is not None:
            boarded[c.trip] = enter
            if c.arr < ea[c.v]:
                ea[c.v] = c.arr
                via[c.v] = (c, enter)
    if ea[goal] == inf:
        return None
    # Backward walk. Each step prepends the boarded trip's segment from the
    # boarding connection through the improving connection; feasibility of
    # the boarding stop is guaranteed because ea[] only ever decreases after
    # the boarding test passed.
    path: list[Connection] = []
    stop = goal
    for _ in range(timetable.num_stops + 1):
        if stop == source:
            return path
        entry = via[stop]
        if entry is None:
            raise LabelingError("broken parent chain during reconstruction")
        last, enter = entry
        segment = [
            c
            for c in trip_legs[last.trip]
            if enter.dep <= c.dep and c.arr <= last.arr
        ]
        segment.sort(key=lambda c: c.dep)
        path = segment + path
        stop = enter.u
    raise LabelingError("reconstruction did not converge")


def journey_is_feasible(path: list[Connection], source: int, goal: int, depart_at: int) -> bool:
    """Validate a reconstructed journey: chained stops, monotone times."""
    if not path:
        return source == goal
    if path[0].u != source or path[-1].v != goal:
        return False
    if path[0].dep < depart_at:
        return False
    for prev, nxt in zip(path, path[1:]):
        if prev.v != nxt.u:
            return False
        if nxt.dep < prev.arr:
            return False
    return True
