"""Parallel TTL preprocessing: per-hub profile scans on a worker pool.

The sequential build (:func:`repro.labeling.ttl.build_labels`) spends almost
all of its time in two places, per hub *h*:

1. the forward and reverse :func:`~repro.labeling.ttl.journey_profiles`
   scans — a full profile CSA over every connection, and
2. the PLL cover checks that prune candidate tuples against the labels
   built for higher-ranked hubs.

Stage 1 depends only on the timetable and the target hub, never on the
labels built so far, so it parallelizes perfectly across hubs. Stage 2 is
order-dependent (hub *h*'s pruning reads labels produced by every
higher-ranked hub) and stays serial in the coordinator. The pool computes
profile-entry windows ahead of the coordinator in rank order
(``Pool.imap`` pipelining — Public Transit Labeling, Delling et al.,
arXiv:1505.01446, makes the same observation for static hub labels).

Two further accelerations keep the single-core speedup honest as well:

* **Connection columns decoded once per worker** — each worker turns the
  timetable into int64 numpy column arrays exactly once
  (:class:`ConnectionColumns`), derives the reverse-timetable scan order
  with one ``np.lexsort``, and feeds the profile-CSA inner loop from plain
  pre-materialized rows instead of `Connection` attribute lookups.
* **Indexed cover checks** — the coordinator maintains, per vertex, a
  per-hub sorted ``(td, ta)`` index so one cover check costs two bisects
  per common hub instead of a linear scan over every label tuple.

The result is guaranteed **bit-identical** to the sequential build: the
scan kernel reproduces ``journey_profiles`` entry lists exactly (asserted
in tests), candidates are consumed in the same (hub-rank, vertex, entry)
order, and the indexed cover check is an exact rewrite of
``_covered``/``_covered_in`` (see docs/PREPROCESSING.md for the argument).
"""

from __future__ import annotations

import multiprocessing as mp
import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass

import numpy as np

from repro.errors import LabelingError
from repro.labeling.labels import LabelTuple, TTLLabels
from repro.labeling.ordering import make_order
from repro.labeling.ttl import BuildReport
from repro.timetable.model import Timetable

INF = float("inf")

#: One scanned vertex: (v, descending departures, descending arrivals,
#: first trips, pivots) — the same entries ``journey_profiles`` produces,
#: stored as parallel lists so they pickle compactly across the pool pipe.
ScanEntries = tuple[int, list[int], list[int], list[int], list[int]]


# ---------------------------------------------------------------------------
# Connection columns — decoded once per worker
# ---------------------------------------------------------------------------
@dataclass
class ConnectionColumns:
    """The timetable's connections as int64 column arrays.

    ``dep``/``arr``/``u``/``v``/``trip`` are aligned with the timetable's
    canonical (ascending CSA) connection order. :meth:`scan_rows`
    materializes the exact row sequence each profile scan iterates — the
    decode happens once per worker process, not once per hub.
    """

    dep: np.ndarray
    arr: np.ndarray
    u: np.ndarray
    v: np.ndarray
    trip: np.ndarray
    num_stops: int

    @classmethod
    def from_timetable(cls, timetable: Timetable) -> "ConnectionColumns":
        n = timetable.num_connections
        dep = np.empty(n, dtype=np.int64)
        arr = np.empty(n, dtype=np.int64)
        u = np.empty(n, dtype=np.int64)
        v = np.empty(n, dtype=np.int64)
        trip = np.empty(n, dtype=np.int64)
        for i, c in enumerate(timetable.connections):
            dep[i] = c.dep
            arr[i] = c.arr
            u[i] = c.u
            v[i] = c.v
            trip[i] = c.trip
        return cls(dep=dep, arr=arr, u=u, v=v, trip=trip,
                   num_stops=timetable.num_stops)

    @property
    def num_trips(self) -> int:
        return int(self.trip.max()) + 1 if len(self.trip) else 0

    def scan_rows(self, reverse: bool) -> list[tuple[int, int, int, int, int]]:
        """Rows ``(dep, arr, u, v, trip)`` in profile-CSA iteration order.

        Forward: the canonical ascending connection order, reversed.
        Reverse: the time-reversed timetable's connections
        ``(-arr, -dep, v, u, trip)`` in *its* canonical order, reversed —
        derived with one stable ``np.lexsort`` instead of constructing a
        second :class:`~repro.timetable.model.Timetable`, with identical
        tie-breaking (``Connection`` sorts by the full 5-tuple).
        """
        if not len(self.dep):
            return []
        if not reverse:
            return list(
                zip(
                    self.dep[::-1].tolist(),
                    self.arr[::-1].tolist(),
                    self.u[::-1].tolist(),
                    self.v[::-1].tolist(),
                    self.trip[::-1].tolist(),
                )
            )
        rdep, rarr = -self.arr, -self.dep
        # lexsort: last key is primary -> ascending (-arr, -dep, v, u, trip)
        asc = np.lexsort((self.trip, self.u, self.v, rarr, rdep))
        desc = asc[::-1]
        return list(
            zip(
                rdep[desc].tolist(),
                rarr[desc].tolist(),
                self.v[desc].tolist(),
                self.u[desc].tolist(),
                self.trip[desc].tolist(),
            )
        )


# ---------------------------------------------------------------------------
# The profile-scan kernel
# ---------------------------------------------------------------------------
def profile_scan(
    rows: list[tuple[int, int, int, int, int]],
    num_stops: int,
    num_trips: int,
    target: int,
    rank: list[int] | None = None,
) -> list[ScanEntries]:
    """All-to-one profile CSA over pre-decoded connection rows.

    Produces exactly the entries :func:`~repro.labeling.ttl.journey_profiles`
    would (same values, same order), but ~2x faster: rows are plain tuples
    (no dataclass attribute chasing), the Pareto profile per stop is kept
    as parallel lists keyed by *negated* departure so the profile
    evaluation is one C-level ``bisect_right``, and only vertices that can
    contribute label tuples (``rank[v] > rank[target]``) are returned.
    """
    sdeps: list[list[int]] = [[] for _ in range(num_stops)]  # -dep, ascending
    sarrs: list[list[int]] = [[] for _ in range(num_stops)]
    strips: list[list[int]] = [[] for _ in range(num_stops)]
    spivots: list[list[int]] = [[] for _ in range(num_stops)]
    trip_arrival = [INF] * num_trips
    br = bisect_right
    for cd, ca, cu, cv, ct in rows:
        best = ca if cv == target else INF
        sd = sdeps[cv]
        if sd:
            hi = br(sd, -ca)  # entries departing >= ca
            if hi:
                via = sarrs[cv][hi - 1]
                if via < best:
                    best = via
        tb = trip_arrival[ct]
        if tb < best:
            best = tb
        if best == INF:
            continue
        if best < tb:
            trip_arrival[ct] = best
        sa = sarrs[cu]
        if sa and sa[-1] <= best:
            continue  # dominated by a later-departing journey
        sd = sdeps[cu]
        nd = -cd
        while sd and sd[-1] == nd:  # equal-departure pop chain
            sd.pop()
            sa.pop()
            strips[cu].pop()
            spivots[cu].pop()
        sd.append(nd)
        sa.append(best)
        strips[cu].append(ct)
        spivots[cu].append(cv)

    out: list[ScanEntries] = []
    target_rank = rank[target] if rank is not None else -1
    for s in range(num_stops):
        if not sdeps[s] or s == target:
            continue
        if rank is not None and rank[s] <= target_rank:
            continue
        out.append(
            (s, [-d for d in sdeps[s]], sarrs[s], strips[s], spivots[s])
        )
    return out


# ---------------------------------------------------------------------------
# Worker pool plumbing
# ---------------------------------------------------------------------------
_WORKER: dict | None = None


def _init_worker(payload) -> None:
    """Pool initializer: decode the connection columns exactly once."""
    global _WORKER
    dep, arr, u, v, trip, num_stops, rank = payload
    cols = ConnectionColumns(
        dep=dep, arr=arr, u=u, v=v, trip=trip, num_stops=num_stops
    )
    _WORKER = {
        "fwd": cols.scan_rows(reverse=False),
        "rev": cols.scan_rows(reverse=True),
        "num_stops": num_stops,
        "num_trips": cols.num_trips,
        "rank": rank,
    }


def _scan_window(hubs: list[int]):
    """Worker task: forward + reverse profile scans for a hub window."""
    state = _WORKER
    assert state is not None, "worker pool not initialized"
    started = time.process_time()
    results = []
    for h in hubs:
        fwd = profile_scan(
            state["fwd"], state["num_stops"], state["num_trips"], h,
            state["rank"],
        )
        rev = profile_scan(
            state["rev"], state["num_stops"], state["num_trips"], h,
            state["rank"],
        )
        results.append((h, fwd, rev))
    return results, time.process_time() - started


def _window_size(num_hubs: int, workers: int, window: int | None) -> int:
    """Hubs per worker task: small enough to keep the coordinator fed
    shortly after startup, large enough to amortize dispatch (~8 windows
    per worker)."""
    if window is not None:
        if window < 1:
            raise LabelingError(f"window must be positive, got {window}")
        return window
    return max(1, min(64, (num_hubs + workers * 8 - 1) // (workers * 8)))


def _windows(order: list[int], window: int) -> list[list[int]]:
    """Rank-ordered hub windows."""
    return [order[i:i + window] for i in range(0, len(order), window)]


# ---------------------------------------------------------------------------
# Indexed cover checks (exact rewrites of ttl._covered / ttl._covered_in)
# ---------------------------------------------------------------------------
def _covered_fast(out_idx_v: dict, lin_h: dict, dep: int, arr: int) -> bool:
    """Is a candidate v -> h journey (dep, arr) answerable from
    ``Lout(v) x Lin(h)``?

    For each hub *x* both sides know, the per-hub entries are Pareto —
    strictly increasing ``(td, ta)`` — so the only ``Lout(v)`` tuple worth
    testing is the earliest one departing >= *dep* (it has the smallest
    arrival among feasible ones, making the transfer easiest), and the only
    ``Lin(h)`` entry worth testing is the earliest one departing after that
    arrival. Two bisects replace the sequential build's linear scan; the
    boolean outcome is identical.
    """
    bl = bisect_left
    for x, (tds, tas) in out_idx_v.items():
        candidates = lin_h.get(x)
        if candidates is None:
            continue
        i = bl(tds, dep)
        if i == len(tds):
            continue
        ta1 = tas[i]
        if ta1 > arr:
            continue
        ctds, ctas = candidates
        j = bl(ctds, ta1)
        if j < len(ctds) and ctas[j] <= arr:
            return True
    return False


def _covered_in_fast(lout_h: dict, in_idx_v: dict, dep: int, arr: int) -> bool:
    """Cover check for a candidate h -> v journey: join Lout(h) x Lin(v).

    Mirror image of :func:`_covered_fast`: the best ``Lin(v)`` entry per
    hub is the latest-departing one arriving <= *arr*, and the best
    ``Lout(h)`` entry is the earliest one departing >= *dep*.
    """
    bl = bisect_left
    for x, (tds, tas) in in_idx_v.items():
        candidates = lout_h.get(x)
        if candidates is None:
            continue
        j = bisect_right(tas, arr)
        if j == 0:
            continue
        td2 = tds[j - 1]
        ctds, ctas = candidates
        i = bl(ctds, dep)
        if i < len(ctds) and ctas[i] <= td2:
            return True
    return False


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------
@dataclass
class ParallelBuildReport(BuildReport):
    """Per-stage accounting of one parallel build.

    Wall-clock split: ``setup_s`` (ordering + column decode + pool
    spawn), ``pipeline_s`` (overlapped worker scans + coordinator
    pruning), ``finalize_s`` (sort + dummy tuples). CPU split:
    ``scan_cpu_s`` is summed across workers, ``coordinator_cpu_s`` is
    the pruning process's share. ``cpu_to_wall`` > 1 means the pool
    achieved real parallelism (CPU-seconds burned per wall-second).
    """

    workers: int = 1
    window: int = 1
    setup_s: float = 0.0
    pipeline_s: float = 0.0
    finalize_s: float = 0.0
    scan_cpu_s: float = 0.0
    coordinator_cpu_s: float = 0.0
    cpu_to_wall: float = 0.0


# ---------------------------------------------------------------------------
# The parallel build
# ---------------------------------------------------------------------------
def build_labels_parallel(
    timetable: Timetable,
    workers: int,
    order: list[int] | None = None,
    ordering: str = "event_degree",
    prune: bool = True,
    add_dummies: bool = False,
    window: int | None = None,
    mp_context: str | None = None,
) -> tuple[TTLLabels, "ParallelBuildReport"]:
    """TTL preprocessing with profile scans fanned out over *workers*
    processes; bit-identical to ``build_labels(..., workers=1)``.

    Args:
        timetable: the input network.
        workers: pool size (>= 1).
        order / ordering / prune / add_dummies: as in
            :func:`repro.labeling.ttl.build_labels`.
        window: hubs per worker task (default: auto, ~8 windows/worker).
        mp_context: multiprocessing start method (default: ``fork`` where
            available, the platform default otherwise).

    Returns:
        (labels, :class:`ParallelBuildReport`).
    """
    if workers < 1:
        raise LabelingError(f"need at least one worker, got {workers}")
    wall_started = time.perf_counter()
    cpu_started = time.process_time()
    if order is None:
        order = make_order(timetable, ordering)
    labels = TTLLabels(timetable.num_stops, order)
    rank = labels.rank
    cols = ConnectionColumns.from_timetable(timetable)
    payload = (
        cols.dep, cols.arr, cols.u, cols.v, cols.trip,
        cols.num_stops, rank,
    )
    if mp_context is None:
        methods = mp.get_all_start_methods()
        mp_context = "fork" if "fork" in methods else methods[0]
    ctx = mp.get_context(mp_context)
    window = _window_size(len(order), workers, window)
    pool = ctx.Pool(
        processes=workers, initializer=_init_worker, initargs=(payload,)
    )
    setup_s = time.perf_counter() - wall_started

    candidates = pruned = 0
    scan_cpu_s = 0.0
    # Per-vertex per-hub ascending (td, ta) indexes for the cover checks.
    out_idx: list[dict] = [{} for _ in range(timetable.num_stops)]
    in_idx: list[dict] = [{} for _ in range(timetable.num_stops)]
    pipeline_started = time.perf_counter()
    try:
        for results, worker_cpu in pool.imap(
            _scan_window, _windows(order, window)
        ):
            scan_cpu_s += worker_cpu
            for h, fwd, rev in results:
                # --- journeys v -> h: tuples for Lout(v) ----------------
                lin_h = in_idx[h]
                for v, deps, arrs, trips, pivots in fwd:
                    lout_v = labels.lout[v]
                    oi = out_idx[v]
                    keep_td: list[int] = []
                    keep_ta: list[int] = []
                    for dep, arr, trip, pivot in zip(deps, arrs, trips, pivots):
                        candidates += 1
                        if prune and _covered_fast(oi, lin_h, dep, arr):
                            pruned += 1
                            continue
                        lout_v.append(
                            LabelTuple(
                                hub=h, td=dep, ta=arr, pivot=pivot, trip=trip
                            )
                        )
                        keep_td.append(dep)
                        keep_ta.append(arr)
                    if keep_td:
                        # entries arrive departure-descending; index ascending
                        keep_td.reverse()
                        keep_ta.reverse()
                        oi[h] = (keep_td, keep_ta)

                # --- journeys h -> v: tuples for Lin(v) -----------------
                lout_h = out_idx[h]
                for v, rdeps, rarrs, trips, pivots in rev:
                    lin_v = labels.lin[v]
                    ii = in_idx[v]
                    keep_td = []
                    keep_ta = []
                    for rdep, rarr, trip, pivot in zip(
                        rdeps, rarrs, trips, pivots
                    ):
                        dep, arr = -rarr, -rdep  # undo the time reversal
                        candidates += 1
                        if prune and _covered_in_fast(lout_h, ii, dep, arr):
                            pruned += 1
                            continue
                        lin_v.append(
                            LabelTuple(
                                hub=h, td=dep, ta=arr, pivot=pivot, trip=trip
                            )
                        )
                        keep_td.append(dep)
                        keep_ta.append(arr)
                    if keep_td:
                        # reversed entries arrive rev-departure-descending,
                        # i.e. already ascending in real (td, ta)
                        ii[h] = (keep_td, keep_ta)
        pool.close()
        pool.join()
    except BaseException:
        pool.terminate()
        pool.join()
        raise
    pipeline_s = time.perf_counter() - pipeline_started

    finalize_started = time.perf_counter()
    labels.sort()
    if add_dummies:
        labels.add_dummy_tuples()
    finalize_s = time.perf_counter() - finalize_started

    wall_s = time.perf_counter() - wall_started
    coordinator_cpu_s = time.process_time() - cpu_started
    report = ParallelBuildReport(
        seconds=wall_s,
        candidate_tuples=candidates,
        pruned_tuples=pruned,
        kept_tuples=candidates - pruned,
        workers=workers,
        window=window,
        setup_s=setup_s,
        pipeline_s=pipeline_s,
        finalize_s=finalize_s,
        scan_cpu_s=scan_cpu_s,
        coordinator_cpu_s=coordinator_cpu_s,
        cpu_to_wall=(scan_cpu_s + coordinator_cpu_s) / wall_s if wall_s else 0.0,
    )
    return labels, report
