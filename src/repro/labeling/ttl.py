"""Timetable Labeling (TTL) construction.

Re-implements the preprocessing of Wang et al. (SIGMOD'15) that the paper
consumes: given a timetable and a strict vertex order, compute for every
vertex the label sets ``Lout(v)`` (fast journeys from v to higher-ranked
hubs) and ``Lin(v)`` (fast journeys from higher-ranked hubs to v) such that
the **cover property** holds: every optimal journey s -> g is witnessed by
some hub in ``Lout(s) x Lin(g)`` with a feasible transfer
(``l1.ta <= l2.td``).

Construction processes hubs from most to least important. For hub *h* a
profile connection scan yields the Pareto ``(td, ta)`` journey set between
*h* and every other vertex; each candidate tuple is kept only if the labels
built so far (which reference strictly higher-ranked hubs only) cannot
already answer it — PLL-style pruning adapted to the temporal setting.

Each kept tuple also records the first boarded trip and the *pivot* — the
next stop along the journey from the label's vertex side (the hub itself
for direct connections), matching the paper's Table 1. For ``Lin`` tuples
these refer to the journey's final trip / penultimate stop, mirroring the
reversed search that produced them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.labeling.labels import LabelTuple, TTLLabels
from repro.labeling.ordering import make_order
from repro.timetable.model import Timetable

INF = float("inf")


# ---------------------------------------------------------------------------
# Profile scan with journey information
# ---------------------------------------------------------------------------
class _JourneyProfile:
    """Pareto (dep, arr) pairs plus (trip, exit stop) journey witnesses.

    Insertions arrive in decreasing *dep* order (profile CSA invariant), so
    arrivals are strictly decreasing along the pair list.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: list[tuple[int, int, int, int]] = []  # dep, arr, trip, exit

    def insert(self, dep: int, arr: int, trip: int, pivot: int) -> bool:
        entries = self.entries
        if entries and entries[-1][1] <= arr:
            return False  # dominated by a later-departing journey
        while entries and entries[-1][0] == dep:
            entries.pop()
        entries.append((dep, arr, trip, pivot))
        return True

    def evaluate(self, not_before: int) -> float:
        """Earliest arrival among entries with dep >= not_before."""
        entries = self.entries
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid][0] >= not_before:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return INF
        return entries[lo - 1][1]


def journey_profiles(timetable: Timetable, target: int) -> list[_JourneyProfile]:
    """All-to-one profile CSA that also records journey witnesses.

    Each Pareto pair carries the first boarded trip and the *pivot* — the
    next stop along the journey (the first connection's arrival stop). This
    matches the paper's Table 1, where the pivot of a direct connection is
    the hub itself and dummies use NULL.
    """
    profiles = [_JourneyProfile() for _ in range(timetable.num_stops)]
    max_trip = max((c.trip for c in timetable.connections), default=-1)
    trip_arrival = [INF] * (max_trip + 1)
    for c in reversed(timetable.connections):  # decreasing (dep, arr)
        best = INF
        if c.v == target:
            best = c.arr
        via_transfer = profiles[c.v].evaluate(c.arr)
        if via_transfer < best:
            best = via_transfer
        if trip_arrival[c.trip] < best:
            best = trip_arrival[c.trip]
        if best == INF:
            continue
        if best < trip_arrival[c.trip]:
            trip_arrival[c.trip] = best
        profiles[c.u].insert(c.dep, int(best), c.trip, c.v)
    return profiles


# ---------------------------------------------------------------------------
# Cover check (PLL pruning)
# ---------------------------------------------------------------------------
def _covered(
    lout_v: list[LabelTuple],
    lin_h_by_hub: dict[int, list[tuple[int, int]]],
    dep: int,
    arr: int,
) -> bool:
    """Can the existing labels answer "journey departing >= dep, arriving
    <= arr" by joining ``Lout(v)`` with ``Lin(h)``?"""
    for l1 in lout_v:
        if l1.td < dep or l1.ta > arr:
            continue
        candidates = lin_h_by_hub.get(l1.hub)
        if not candidates:
            continue
        for td2, ta2 in candidates:
            if td2 >= l1.ta and ta2 <= arr:
                return True
    return False


def _by_hub(tuples: list[LabelTuple]) -> dict[int, list[tuple[int, int]]]:
    out: dict[int, list[tuple[int, int]]] = {}
    for t in tuples:
        out.setdefault(t.hub, []).append((t.td, t.ta))
    return out


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------
@dataclass
class BuildReport:
    """What happened during label construction."""

    seconds: float
    candidate_tuples: int
    pruned_tuples: int
    kept_tuples: int


def build_labels(
    timetable: Timetable,
    order: list[int] | None = None,
    ordering: str = "event_degree",
    prune: bool = True,
    add_dummies: bool = False,
    workers: int = 1,
) -> tuple[TTLLabels, BuildReport]:
    """Run TTL preprocessing.

    Args:
        timetable: the input network.
        order: explicit vertex order (most important first); computed with
            *ordering* when omitted.
        ordering: strategy name from :mod:`repro.labeling.ordering`.
        prune: disable to measure how much PLL-style pruning saves
            (ablation); the labels stay correct either way, only bigger.
        add_dummies: also add PTLDB's dummy tuples before returning.
        workers: with ``workers > 1`` the per-hub profile scans run on a
            process pool (:mod:`repro.labeling.parallel`); the labels are
            bit-identical to this sequential reference implementation and
            the report is a :class:`~repro.labeling.parallel.ParallelBuildReport`.

    Returns:
        (labels, build report).
    """
    if workers > 1:
        from repro.labeling.parallel import build_labels_parallel

        return build_labels_parallel(
            timetable,
            workers,
            order=order,
            ordering=ordering,
            prune=prune,
            add_dummies=add_dummies,
        )
    started = time.perf_counter()
    if order is None:
        order = make_order(timetable, ordering)
    labels = TTLLabels(timetable.num_stops, order)
    rank = labels.rank
    reverse = timetable.reverse()

    candidates = pruned = 0
    for h in order:
        # --- journeys v -> h: tuples for Lout(v) ------------------------
        lin_h_by_hub = _by_hub(labels.lin[h])
        for v, prof in enumerate(journey_profiles(timetable, h)):
            if v == h or rank[v] <= rank[h]:
                continue
            for dep, arr, trip, pivot in prof.entries:
                candidates += 1
                if prune and _covered(labels.lout[v], lin_h_by_hub, dep, arr):
                    pruned += 1
                    continue
                labels.lout[v].append(
                    LabelTuple(hub=h, td=dep, ta=arr, pivot=pivot, trip=trip)
                )

        # --- journeys h -> v: tuples for Lin(v) -------------------------
        lout_h_by_hub = _by_hub(labels.lout[h])
        for v, prof in enumerate(journey_profiles(reverse, h)):
            if v == h or rank[v] <= rank[h]:
                continue
            for rev_dep, rev_arr, trip, pivot in prof.entries:
                dep, arr = -rev_arr, -rev_dep  # undo the time reversal
                candidates += 1
                if prune and _covered_in(
                    lout_h_by_hub, labels.lin[v], dep, arr
                ):
                    pruned += 1
                    continue
                labels.lin[v].append(
                    LabelTuple(hub=h, td=dep, ta=arr, pivot=pivot, trip=trip)
                )

    labels.sort()
    if add_dummies:
        labels.add_dummy_tuples()
    report = BuildReport(
        seconds=time.perf_counter() - started,
        candidate_tuples=candidates,
        pruned_tuples=pruned,
        kept_tuples=candidates - pruned,
    )
    return labels, report


def _covered_in(
    lout_h_by_hub: dict[int, list[tuple[int, int]]],
    lin_v: list[LabelTuple],
    dep: int,
    arr: int,
) -> bool:
    """Cover check for a candidate h -> v journey: join Lout(h) x Lin(v)."""
    for l2 in lin_v:
        if l2.ta > arr:
            continue
        candidates = lout_h_by_hub.get(l2.hub)
        if not candidates:
            continue
        for td1, ta1 in candidates:
            if td1 >= dep and ta1 <= l2.td:
                return True
    return False


def preprocess(
    timetable: Timetable,
    ordering: str = "event_degree",
    workers: int = 1,
) -> TTLLabels:
    """One-call preprocessing with dummy tuples, ready for PTLDB loading."""
    labels, _ = build_labels(
        timetable, ordering=ordering, add_dummies=True, workers=workers
    )
    return labels
