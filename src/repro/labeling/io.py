"""Binary (de)serialization of TTL labels.

The TTL authors distribute preprocessed label files; PTLDB loads them into
the database. This module gives the reproduction the same decoupling: build
labels once, save them, reload into any number of PTLDB databases.

Format (little-endian): magic ``TTL1``, u32 num_stops, the vertex order
(u32 each), then for each vertex two tuple lists (lout, lin), each a u32
count followed by ``<q q q q q>`` records (hub, td, ta, pivot, trip) with
-1 encoding NULL pivot/trip.
"""

from __future__ import annotations

import struct

from repro.errors import LabelingError
from repro.labeling.labels import LabelTuple, TTLLabels

_MAGIC = b"TTL1"
_U32 = struct.Struct("<I")
_TUPLE = struct.Struct("<qqqqq")


def save_labels(labels: TTLLabels, path: str) -> None:
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(_U32.pack(labels.num_stops))
        for vertex in labels.order:
            handle.write(_U32.pack(vertex))
        for side in (labels.lout, labels.lin):
            for tuples in side:
                handle.write(_U32.pack(len(tuples)))
                for t in tuples:
                    handle.write(
                        _TUPLE.pack(
                            t.hub,
                            t.td,
                            t.ta,
                            -1 if t.pivot is None else t.pivot,
                            -1 if t.trip is None else t.trip,
                        )
                    )


def load_labels(path: str) -> TTLLabels:
    with open(path, "rb") as handle:
        magic = handle.read(4)
        if magic != _MAGIC:
            raise LabelingError(f"{path} is not a TTL label file")
        (num_stops,) = _U32.unpack(handle.read(4))
        order = [
            _U32.unpack(handle.read(4))[0] for _ in range(num_stops)
        ]
        labels = TTLLabels(num_stops, order)
        for side in (labels.lout, labels.lin):
            for vertex in range(num_stops):
                (count,) = _U32.unpack(handle.read(4))
                tuples = []
                for _ in range(count):
                    hub, td, ta, pivot, trip = _TUPLE.unpack(
                        handle.read(_TUPLE.size)
                    )
                    tuples.append(
                        LabelTuple(
                            hub=hub,
                            td=td,
                            ta=ta,
                            pivot=None if pivot == -1 else pivot,
                            trip=None if trip == -1 else trip,
                        )
                    )
                side[vertex] = tuples
        # Restore the dummy flag so a reloaded labeling refuses re-adding.
        labels._has_dummies = labels.dummy_count() > 0
        return labels
