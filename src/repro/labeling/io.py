"""Binary (de)serialization of TTL labels + the preprocessing cache.

The TTL authors distribute preprocessed label files; PTLDB loads them into
the database. This module gives the reproduction the same decoupling: build
labels once, save them, reload into any number of PTLDB databases.

Format v2 (little-endian): magic ``TTL2``, u32 num_stops, u8 flags
(bit 0 = dummy tuples were added), the vertex order (u32 each), then for
each vertex two tuple lists (lout, lin), each a u32 count followed by
``<q q q q q>`` records (hub, td, ta, pivot, trip) with -1 encoding NULL
pivot/trip. Legacy ``TTL1`` files (no flags byte) still load; the dummy
flag is then reconstructed by probing, which misclassifies the (legal)
empty-labeling-with-dummies case — the reason the flag moved into the
header.

Every read is length-checked: a truncated or corrupt file raises
:class:`~repro.errors.LabelingError` with the byte offset instead of a
raw ``struct.error``, and trailing garbage after the last tuple list is
rejected.

The cache half (:func:`timetable_digest`, :func:`load_or_build`) keys a
saved label file by a SHA-256 over the exact preprocessing inputs —
format version, connection multiset, vertex order recipe, dummy flag — so
every entry point (CLI, bench, PTLDB) can make preprocessing pay-once.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct

from repro.errors import LabelingError
from repro.labeling.labels import LabelTuple, TTLLabels
from repro.timetable.model import Timetable

_MAGIC = b"TTL2"
_MAGIC_V1 = b"TTL1"
_U32 = struct.Struct("<I")
_U8 = struct.Struct("<B")
_TUPLE = struct.Struct("<qqqqq")
_FLAG_HAS_DUMMIES = 0x01

_U32_MAX = 2**32 - 1
_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


# ---------------------------------------------------------------------------
# Saving (with range validation)
# ---------------------------------------------------------------------------
def _check_u32(value: int, what: str) -> int:
    if not isinstance(value, int) or not 0 <= value <= _U32_MAX:
        raise LabelingError(f"{what} {value!r} does not fit in u32")
    return value


def _check_field(value: int, what: str) -> int:
    if not _I64_MIN <= value <= _I64_MAX:
        raise LabelingError(f"{what} {value!r} does not fit in i64")
    return value


def _check_tuple(t: LabelTuple, where: str) -> tuple[int, int, int, int, int]:
    if t.hub < 0:
        raise LabelingError(f"{where}: negative hub in {t!r}")
    _check_field(t.hub, f"{where}: hub")
    _check_field(t.td, f"{where}: td")
    _check_field(t.ta, f"{where}: ta")
    # -1 is the NULL encoding on disk; a real -1 (or any negative) pivot or
    # trip would silently come back as None, so refuse to write one.
    for name, value in (("pivot", t.pivot), ("trip", t.trip)):
        if value is not None:
            if value < 0:
                raise LabelingError(
                    f"{where}: negative {name} in {t!r} would collide with "
                    "the NULL encoding"
                )
            _check_field(value, f"{where}: {name}")
    return (
        t.hub,
        t.td,
        t.ta,
        -1 if t.pivot is None else t.pivot,
        -1 if t.trip is None else t.trip,
    )


def save_labels(labels: TTLLabels, path: str) -> None:
    """Write *labels* to *path* in format v2, validating every field fits
    its on-disk width (u32 counts/order, i64 tuple fields)."""
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(_U32.pack(_check_u32(labels.num_stops, "num_stops")))
        flags = _FLAG_HAS_DUMMIES if labels._has_dummies else 0
        handle.write(_U8.pack(flags))
        for position, vertex in enumerate(labels.order):
            handle.write(
                _U32.pack(_check_u32(vertex, f"vertex order entry {position}"))
            )
        for side_name, side in (("lout", labels.lout), ("lin", labels.lin)):
            for vertex, tuples in enumerate(side):
                where = f"{side_name}({vertex})"
                handle.write(
                    _U32.pack(_check_u32(len(tuples), f"{where} tuple count"))
                )
                for t in tuples:
                    handle.write(_TUPLE.pack(*_check_tuple(t, where)))


# ---------------------------------------------------------------------------
# Loading (length-checked)
# ---------------------------------------------------------------------------
def _read_exact(handle, n: int, what: str) -> bytes:
    offset = handle.tell()
    data = handle.read(n)
    if len(data) != n:
        raise LabelingError(
            f"truncated label file: wanted {n} byte(s) for {what} at byte "
            f"offset {offset}, got {len(data)}"
        )
    return data


def load_labels(path: str) -> TTLLabels:
    """Read a label file (format v2, or legacy v1), rejecting truncation,
    short reads and trailing garbage with a :class:`LabelingError`."""
    with open(path, "rb") as handle:
        magic = handle.read(4)
        if magic == _MAGIC:
            legacy = False
        elif magic == _MAGIC_V1:
            legacy = True
        else:
            raise LabelingError(f"{path} is not a TTL label file")
        (num_stops,) = _U32.unpack(_read_exact(handle, 4, "num_stops"))
        if legacy:
            flags = 0
        else:
            (flags,) = _U8.unpack(_read_exact(handle, 1, "header flags"))
            if flags & ~_FLAG_HAS_DUMMIES:
                raise LabelingError(
                    f"{path}: unknown header flag bits 0x{flags:02x}"
                )
        order_bytes = _read_exact(
            handle, 4 * num_stops, f"vertex order ({num_stops} stops)"
        )
        order = [
            _U32.unpack_from(order_bytes, 4 * i)[0] for i in range(num_stops)
        ]
        labels = TTLLabels(num_stops, order)
        for side_name, side in (("lout", labels.lout), ("lin", labels.lin)):
            for vertex in range(num_stops):
                (count,) = _U32.unpack(
                    _read_exact(handle, 4, f"{side_name}({vertex}) count")
                )
                data = _read_exact(
                    handle,
                    _TUPLE.size * count,
                    f"{side_name}({vertex}) tuples ({count} records)",
                )
                tuples = []
                for i in range(count):
                    hub, td, ta, pivot, trip = _TUPLE.unpack_from(
                        data, _TUPLE.size * i
                    )
                    tuples.append(
                        LabelTuple(
                            hub=hub,
                            td=td,
                            ta=ta,
                            pivot=None if pivot == -1 else pivot,
                            trip=None if trip == -1 else trip,
                        )
                    )
                side[vertex] = tuples
        trailing = handle.read(1)
        if trailing:
            raise LabelingError(
                f"trailing garbage after the last tuple list at byte offset "
                f"{handle.tell() - 1}"
            )
        if legacy:
            # v1 files carry no flag; probing misclassifies an empty
            # labeling saved after add_dummy_tuples() — v2 fixes this.
            labels._has_dummies = labels.dummy_count() > 0
        else:
            labels._has_dummies = bool(flags & _FLAG_HAS_DUMMIES)
        return labels


# ---------------------------------------------------------------------------
# Dataset-hash-keyed label cache
# ---------------------------------------------------------------------------
#: Bumped whenever the label file format or the build pipeline changes in a
#: way that invalidates previously cached files.
CACHE_FORMAT = "ttl-cache-v2"


def timetable_digest(
    timetable: Timetable,
    ordering: str = "event_degree",
    order: list[int] | None = None,
    add_dummies: bool = True,
) -> str:
    """SHA-256 over the exact preprocessing inputs.

    Two calls agree iff preprocessing would produce byte-identical label
    files: same connection multiset (the timetable keeps connections in
    canonical sorted order), same vertex-order recipe (strategy name, or
    the explicit order itself) and same dummy handling.
    """
    h = hashlib.sha256()
    h.update(CACHE_FORMAT.encode())
    h.update(struct.pack("<IQ?", timetable.num_stops,
                         timetable.num_connections, add_dummies))
    if order is not None:
        h.update(b"order:" + b",".join(str(v).encode() for v in order))
    else:
        h.update(b"ordering:" + ordering.encode())
    pack = struct.Struct("<qqqqq").pack
    for c in timetable.connections:
        h.update(pack(c.dep, c.arr, c.u, c.v, c.trip))
    return h.hexdigest()


def cached_label_path(cache_dir: str, digest: str) -> str:
    return os.path.join(cache_dir, f"{digest}.ttl")


def load_or_build(
    timetable: Timetable,
    cache_dir: str | None = None,
    ordering: str = "event_degree",
    order: list[int] | None = None,
    add_dummies: bool = True,
    workers: int = 1,
):
    """Return ``(labels, report, cache_hit)``, building at most once.

    With a *cache_dir*, a previously saved label file whose digest matches
    the preprocessing inputs is loaded instead of rebuilding; after a
    build, the labels (plus a ``.json`` sidecar holding the build report)
    are written back atomically so concurrent builders never observe a
    half-written file. Without a *cache_dir* this is a plain build.
    """
    from repro.labeling.ttl import BuildReport, build_labels

    if cache_dir is None:
        labels, report = build_labels(
            timetable, order=order, ordering=ordering,
            add_dummies=add_dummies, workers=workers,
        )
        return labels, report, False

    digest = timetable_digest(
        timetable, ordering=ordering, order=order, add_dummies=add_dummies
    )
    path = cached_label_path(cache_dir, digest)
    sidecar = path + ".json"
    if os.path.exists(path):
        labels = load_labels(path)
        report = None
        if os.path.exists(sidecar):
            try:
                with open(sidecar, encoding="utf-8") as handle:
                    saved = json.load(handle)
                report = BuildReport(
                    seconds=saved["seconds"],
                    candidate_tuples=saved["candidate_tuples"],
                    pruned_tuples=saved["pruned_tuples"],
                    kept_tuples=saved["kept_tuples"],
                )
            except (OSError, ValueError, KeyError):
                report = None
        if report is None:
            report = BuildReport(
                seconds=0.0,
                candidate_tuples=0,
                pruned_tuples=0,
                kept_tuples=0,
            )
        return labels, report, True

    labels, report = build_labels(
        timetable, order=order, ordering=ordering,
        add_dummies=add_dummies, workers=workers,
    )
    os.makedirs(cache_dir, exist_ok=True)
    tmp = path + f".tmp.{os.getpid()}"
    try:
        save_labels(labels, tmp)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    with open(sidecar + f".tmp.{os.getpid()}", "w", encoding="utf-8") as handle:
        json.dump(
            {
                "seconds": report.seconds,
                "candidate_tuples": report.candidate_tuples,
                "pruned_tuples": report.pruned_tuples,
                "kept_tuples": report.kept_tuples,
                "digest": digest,
            },
            handle,
        )
    os.replace(sidecar + f".tmp.{os.getpid()}", sidecar)
    return labels, report, False
