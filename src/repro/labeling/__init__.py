"""Timetable Labeling (TTL): construction, in-memory queries, persistence."""

from repro.labeling.io import load_labels, save_labels
from repro.labeling.labels import LabelTuple, TTLLabels
from repro.labeling.ordering import ORDERINGS, make_order
from repro.labeling.query import (
    TTLQueryEngine,
    journey_is_feasible,
    reconstruct_journey,
)
from repro.labeling.ttl import BuildReport, build_labels, preprocess

__all__ = [
    "LabelTuple",
    "TTLLabels",
    "ORDERINGS",
    "make_order",
    "TTLQueryEngine",
    "journey_is_feasible",
    "reconstruct_journey",
    "BuildReport",
    "build_labels",
    "preprocess",
    "save_labels",
    "load_labels",
]
