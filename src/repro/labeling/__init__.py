"""Timetable Labeling (TTL): construction, in-memory queries, persistence."""

from repro.labeling.io import (
    load_labels,
    load_or_build,
    save_labels,
    timetable_digest,
)
from repro.labeling.labels import LabelTuple, TTLLabels
from repro.labeling.ordering import ORDERINGS, make_order
from repro.labeling.parallel import (
    ConnectionColumns,
    ParallelBuildReport,
    build_labels_parallel,
    profile_scan,
)
from repro.labeling.query import (
    TTLQueryEngine,
    journey_is_feasible,
    reconstruct_journey,
)
from repro.labeling.ttl import BuildReport, build_labels, preprocess

__all__ = [
    "LabelTuple",
    "TTLLabels",
    "ORDERINGS",
    "make_order",
    "TTLQueryEngine",
    "journey_is_feasible",
    "reconstruct_journey",
    "BuildReport",
    "ParallelBuildReport",
    "ConnectionColumns",
    "build_labels",
    "build_labels_parallel",
    "profile_scan",
    "preprocess",
    "save_labels",
    "load_labels",
    "load_or_build",
    "timetable_digest",
]
