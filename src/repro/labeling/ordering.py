"""Vertex-ordering strategies for TTL preprocessing.

TTL assumes a strict vertex order expressing importance (paper §2.2). The
original authors ship precomputed ordering files; offline we compute orders
ourselves. Degree-style orders work well on transit networks because
interchange stations dominate journeys, the same intuition as Pruned
Landmark Labeling's degree order.
"""

from __future__ import annotations

import random

from repro.errors import LabelingError
from repro.timetable.model import Timetable


def event_degree_order(timetable: Timetable) -> list[int]:
    """Stops by number of incident connections (the Table 7 'degree'),
    busiest first. The default order used throughout the reproduction."""
    degree = [0] * timetable.num_stops
    for c in timetable.connections:
        degree[c.u] += 1
        degree[c.v] += 1
    return sorted(range(timetable.num_stops), key=lambda v: (-degree[v], v))


def neighbor_degree_order(timetable: Timetable) -> list[int]:
    """Stops by number of distinct neighbors, busiest first."""
    neighbors: list[set[int]] = [set() for _ in range(timetable.num_stops)]
    for c in timetable.connections:
        neighbors[c.u].add(c.v)
        neighbors[c.v].add(c.u)
    return sorted(
        range(timetable.num_stops), key=lambda v: (-len(neighbors[v]), v)
    )


def hub_sample_order(timetable: Timetable, samples: int = 32, seed: int = 7) -> list[int]:
    """Stops by how often they appear as transfer points in sampled optimal
    journeys — a cheap betweenness estimate.

    Runs earliest-arrival scans from *samples* random (stop, time) states and
    counts, for every stop, how many other stops' optimal arrival was relayed
    through it (i.e. it was the arrival stop of a connection that improved
    someone downstream within the same scan).
    """
    from repro.baselines.csa import INF

    rng = random.Random(seed)
    score = [0.0] * timetable.num_stops
    low, high = timetable.time_range()
    for _ in range(samples):
        source = rng.randrange(timetable.num_stops)
        depart_at = rng.randrange(low, max(low + 1, high))
        ea = [INF] * timetable.num_stops
        ea[source] = depart_at
        parent = [-1] * timetable.num_stops
        boarded: dict[int, bool] = {}
        for c in timetable.connections:
            if c.dep < depart_at:
                continue
            if boarded.get(c.trip) or ea[c.u] <= c.dep:
                boarded[c.trip] = True
                if c.arr < ea[c.v]:
                    ea[c.v] = c.arr
                    parent[c.v] = c.u
        for v in range(timetable.num_stops):
            stop = parent[v]
            hops = 0
            while stop not in (-1, source) and hops < timetable.num_stops:
                score[stop] += 1.0
                stop = parent[stop]
                hops += 1
    return sorted(range(timetable.num_stops), key=lambda v: (-score[v], v))


def random_order(timetable: Timetable, seed: int = 0) -> list[int]:
    """A random permutation — the ablation's worst-case order."""
    order = list(range(timetable.num_stops))
    random.Random(seed).shuffle(order)
    return order


ORDERINGS = {
    "event_degree": event_degree_order,
    "neighbor_degree": neighbor_degree_order,
    "hub_sample": hub_sample_order,
    "random": random_order,
}


def make_order(timetable: Timetable, strategy: str = "event_degree") -> list[int]:
    try:
        fn = ORDERINGS[strategy]
    except KeyError:
        raise LabelingError(
            f"unknown ordering {strategy!r}; choose from {sorted(ORDERINGS)}"
        ) from None
    return fn(timetable)
